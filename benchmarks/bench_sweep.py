"""A/B benchmark of cross-replication environment reuse (DESIGN.md §9).

A multi-seed fig3-style sweep replays the same few environments dozens of
times: every α point, every policy, and every seed repeat re-derives the
identical workload stream and re-solves Oracle problems that earlier legs
already solved.  This benchmark times that sweep end-to-end under two arms:

- **baseline** — the pre-§9 behaviour: no shared window cache, no on-disk
  Oracle memo (the in-memory solver cache still works within the arm, as
  it always has);
- **reuse** — the §9 machinery: the process-wide window cache shares each
  environment's precomputed windows across α points and policies, and the
  Oracle's solver memos persist in an on-disk cache directory.  Reported
  twice: with a *cold* disk (first session ever) and a *warm* disk (every
  later session), each starting from fresh in-memory caches.

Both arms must produce bit-identical per-run trajectories — the benchmark
aborts otherwise — so the headline (baseline vs warm reuse, gate ≥2x) is a
pure reordering of identical work.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py                # full A/B
    PYTHONPATH=src python benchmarks/bench_sweep.py --smoke        # CI smoke
    PYTHONPATH=src python benchmarks/bench_sweep.py --require-speedup
    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py      # equivalence

Results land in ``BENCH_sweep.json`` (see ``--output``).  Arms run serially
(workers=None) so the comparison times compute, not pool scheduling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.env.window_cache import reset_shared_window_cache, shared_window_cache
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs.manifest import build_manifest
from repro.solvers.cache import reset_shared_cache, shared_cache

#: α fractions of capacity swept per seed (fig3's five points).
ALPHA_FRACTIONS = (0.65, 0.70, 0.75, 0.80, 0.85)
#: Policies per sweep point: the solver-heavy Oracle plus the learner.
POLICIES = ("Oracle", "LFSC")


def sweep_configs(
    base: ExperimentConfig, seeds: list[int]
) -> list[ExperimentConfig]:
    """The multi-seed fig3-style sweep: every (seed, α) pair."""
    alphas = [round(f * base.capacity, 3) for f in ALPHA_FRACTIONS]
    return [
        base.with_overrides(seed=seed, alpha=alpha)
        for seed in seeds
        for alpha in alphas
    ]


def _reset_process_caches() -> None:
    reset_shared_cache()
    reset_shared_window_cache()


def _run_sweep(
    configs: list[ExperimentConfig],
    *,
    shared_window: bool,
    cache_dir: str | None,
) -> tuple[float, dict[str, bytes]]:
    """Run the whole sweep serially; returns (seconds, trajectory digest)."""
    _reset_process_caches()
    digests: dict[str, bytes] = {}
    t0 = time.perf_counter()
    for cfg in configs:
        run_cfg = cfg.with_overrides(
            shared_window=shared_window, cache_dir=cache_dir
        )
        results = run_experiment(run_cfg, POLICIES, workers=None)
        for name, res in results.items():
            digests[f"seed{cfg.seed}-a{cfg.alpha:g}-{name}"] = res.reward.tobytes()
    return time.perf_counter() - t0, digests


def ab_sweep(base: ExperimentConfig, seeds: list[int]) -> dict:
    """Baseline vs reuse (cold and warm disk), equivalence-gated."""
    configs = sweep_configs(base, seeds)
    baseline_s, baseline_digest = _run_sweep(
        configs, shared_window=False, cache_dir=None
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as disk:
        cold_s, cold_digest = _run_sweep(
            configs, shared_window=True, cache_dir=disk
        )
        window_stats = shared_window_cache().stats()
        oracle_stats = shared_cache().stats()
        warm_s, warm_digest = _run_sweep(
            configs, shared_window=True, cache_dir=disk
        )
    for name, digest in (("cold reuse", cold_digest), ("warm reuse", warm_digest)):
        if digest != baseline_digest:
            raise AssertionError(
                f"{name} arm diverged from baseline — benchmark would be invalid"
            )
    _reset_process_caches()
    return {
        "runs": len(configs),
        "seeds": seeds,
        "alphas": sorted({cfg.alpha for cfg in configs}),
        "policies": list(POLICIES),
        "baseline_s": baseline_s,
        "reuse_cold_disk_s": cold_s,
        "reuse_warm_disk_s": warm_s,
        "speedup_cold": baseline_s / cold_s,
        "speedup_warm": baseline_s / warm_s,
        "bit_identical": True,
        "window_cache": window_stats,
        "oracle_cache": oracle_stats,
    }


def check_equivalence(base: ExperimentConfig, seeds: list[int]) -> None:
    """Smoke-scale assertion that both reuse arms match the baseline."""
    ab_sweep(base, seeds)  # raises on divergence


def run_benchmark(base: ExperimentConfig, seeds: list[int]) -> dict:
    report: dict = {
        "schema": "bench_sweep/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", config=base),
        "config": {
            "num_scns": base.num_scns,
            "capacity": base.capacity,
            "beta": base.beta,
            "coverage_range": [base.k_min, base.k_max],
            "horizon": base.horizon,
        },
        "sweep": ab_sweep(base, seeds),
    }
    report["headline"] = {
        "sweep_speedup_warm_disk": report["sweep"]["speedup_warm"],
        "sweep_speedup_cold_disk": report["sweep"]["speedup_cold"],
    }
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    sweep = report["sweep"]
    print(
        f"environment-reuse sweep A/B — M={cfg['num_scns']} c={cfg['capacity']} "
        f"K∈{cfg['coverage_range']} horizon={cfg['horizon']}, "
        f"{len(sweep['seeds'])} seeds x {len(sweep['alphas'])} alphas x "
        f"{len(sweep['policies'])} policies = {sweep['runs']} runs/arm"
    )
    print(
        f"\n  baseline (no reuse)    {sweep['baseline_s']:.2f}s"
        f"\n  reuse, cold disk       {sweep['reuse_cold_disk_s']:.2f}s  "
        f"({sweep['speedup_cold']:.2f}x)"
        f"\n  reuse, warm disk       {sweep['reuse_warm_disk_s']:.2f}s  "
        f"({sweep['speedup_warm']:.2f}x)"
        f"\n  bit-identical: {sweep['bit_identical']}"
    )
    wc = sweep["window_cache"]
    print(
        f"window cache: {wc['hits']} hits / {wc['hits'] + wc['misses']} lookups, "
        f"{wc['slots_cached']} slots held"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        help="base problem size (default: REPRO_BENCH_SCALE or paper)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots per run (default: REPRO_BENCH_HORIZON, else 40 paper / 120 small)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="number of replication seeds in the sweep (default 3)",
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="exit non-zero unless the warm-disk speedup meets --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="speedup gate for --require-speedup (default 2.0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, equivalence-gated, "
        "no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon, n_seeds = "small", args.horizon or 30, min(args.seeds, 2)
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 40 if scale == "paper" else 120
        n_seeds = args.seeds

    base = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    base = base.with_overrides(horizon=horizon)
    seeds = list(range(n_seeds))

    report = run_benchmark(base, seeds)
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if args.require_speedup:
        gated = report["headline"]["sweep_speedup_warm_disk"]
        if gated < args.threshold:
            print(
                f"FAIL: warm-disk sweep speedup {gated:.2f}x < {args.threshold}x",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print(f"OK: warm-disk sweep speedup {gated:.2f}x >= {args.threshold}x")


# -- pytest entry points (equivalence only, smoke scale) ----------------------

def test_reuse_arms_bit_identical_to_baseline():
    base = ExperimentConfig.small().with_overrides(horizon=25)
    check_equivalence(base, seeds=[0, 1])


if __name__ == "__main__":
    main()
