"""Parallel vs. serial replication — wall-clock A/B with a determinism gate.

Times an N-replication LFSC sweep twice through
:func:`repro.experiments.replication.run_replications` — once serial
(``workers=1``) and once process-parallel (``workers=0``, one process per
core) — and verifies the two produce **bit-identical** per-seed results
before reporting the speedup.  A benchmark that silently compared diverging
runs would be meaningless, so equivalence is asserted, not assumed.

Usage::

    PYTHONPATH=src python benchmarks/bench_replication_parallel.py             # full
    PYTHONPATH=src python benchmarks/bench_replication_parallel.py --smoke     # CI smoke
    PYTHONPATH=src python benchmarks/bench_replication_parallel.py --require-speedup 2.0

Results land in ``BENCH_replication.json`` (see ``--output``): serial and
parallel wall-clock for the sweep, the resolved worker count, the host's CPU
count, and the derived speedup.  On a single-core host ``workers=0`` falls
back to serial by design, so the speedup reads ~1.0 there and the JSON says
so explicitly (``parallel.serial_fallback``); regenerate on a multi-core
runner (CI does) for the real figure.  ``--require-speedup X`` turns the
speedup into a hard exit-code gate for multi-core CI runners.

Scale knobs follow ``benchmarks/conftest.py``: ``REPRO_BENCH_SCALE``
(``paper``/``small``) and ``REPRO_BENCH_HORIZON``, overridable via CLI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.replication import run_replications
from repro.experiments.runner import ExperimentConfig
from repro.obs.manifest import build_manifest
from repro.utils.parallel import resolve_workers

POLICIES = ("LFSC",)

#: Series compared bit-for-bit between the serial and parallel sweeps.
_SERIES = ("reward", "expected_reward", "violation_qos", "violation_resource")


def _config(scale: str, horizon: int | None) -> ExperimentConfig:
    cfg = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    if horizon is not None:
        cfg = cfg.with_overrides(horizon=horizon)
    return cfg


def _timed_sweep(cfg: ExperimentConfig, replications: int, workers: int) -> tuple[float, list]:
    t0 = time.perf_counter()
    runs = run_replications(cfg, POLICIES, seeds=replications, workers=workers)
    return time.perf_counter() - t0, runs


def check_equivalence(serial_runs: list, parallel_runs: list) -> None:
    """Assert the two sweeps produced identical per-seed trajectories."""
    assert len(serial_runs) == len(parallel_runs)
    for a, b in zip(serial_runs, parallel_runs):
        if a.seed != b.seed:
            raise AssertionError(f"seed order diverged: {a.seed} vs {b.seed}")
        for name in POLICIES:
            for series in _SERIES:
                if not np.array_equal(
                    getattr(a.results[name], series), getattr(b.results[name], series)
                ):
                    raise AssertionError(
                        f"{name}.{series} diverged at seed {a.seed} — "
                        "parallel != serial, benchmark would be invalid"
                    )


def run_benchmark(cfg: ExperimentConfig, replications: int) -> dict:
    resolved = resolve_workers(0, replications)

    serial_s, serial_runs = _timed_sweep(cfg, replications, workers=1)
    parallel_s, parallel_runs = _timed_sweep(cfg, replications, workers=0)
    check_equivalence(serial_runs, parallel_runs)

    return {
        "schema": "bench_replication/v2",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(
            kind="bench",
            config=cfg,
            seeds=[r.seed for r in serial_runs],
            policies=list(POLICIES),
            engine=cfg.lfsc_config().engine,
        ),
        "config": {
            "num_scns": cfg.num_scns,
            "capacity": cfg.capacity,
            "horizon": cfg.horizon,
            "base_seed": cfg.seed,
            "replications": replications,
            "policies": list(POLICIES),
        },
        "serial": {"workers": 1, "wall_s": serial_s},
        "parallel": {
            "workers_requested": 0,
            "workers_resolved": resolved,
            "serial_fallback": resolved == 1,
            "wall_s": parallel_s,
        },
        "speedup": serial_s / parallel_s,
        "bit_identical": True,
        "note": (
            "single-core host: workers=0 fell back to serial, speedup ~1.0 by design; "
            "regenerate on a multi-core runner for the parallel figure"
            if resolved == 1
            else f"parallel sweep used {resolved} worker processes"
        ),
    }


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(
        f"replication sweep A/B — M={cfg['num_scns']} c={cfg['capacity']} "
        f"T={cfg['horizon']} x {cfg['replications']} replications "
        f"({report['manifest']['host']['cpu_count']} CPUs)"
    )
    print(f"  serial   (workers=1): {report['serial']['wall_s']:8.2f} s")
    print(
        f"  parallel (workers=0): {report['parallel']['wall_s']:8.2f} s "
        f"[{report['parallel']['workers_resolved']} processes]"
    )
    print(f"  speedup:  {report['speedup']:.2f}x   per-seed results bit-identical: yes")
    print(f"  note: {report['note']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "small"),
        help="problem size (default: REPRO_BENCH_SCALE or small)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots per replication (default: REPRO_BENCH_HORIZON, else 600 small / 1000 paper)",
    )
    parser.add_argument(
        "--replications", type=int, default=8, help="sweep size (default: 8)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: short horizon, no JSON unless --output given",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="exit non-zero unless speedup >= X (use on multi-core runners)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_replication.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 150
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 1000 if scale == "paper" else 600

    cfg = _config(scale, horizon)
    report = run_benchmark(cfg, args.replications)
    report["config"]["scale"] = scale
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_replication.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if args.require_speedup is not None and report["speedup"] < args.require_speedup:
        print(
            f"FAIL: speedup {report['speedup']:.2f}x < required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


# -- pytest entry point (determinism smoke, no timing assertions) -------------


def test_parallel_replication_matches_serial_smoke():
    cfg = _config("small", 40)
    serial_s, serial_runs = _timed_sweep(cfg, 3, workers=1)
    parallel_s, parallel_runs = _timed_sweep(cfg, 3, workers=0)
    check_equivalence(serial_runs, parallel_runs)


if __name__ == "__main__":
    raise SystemExit(main())
