"""A2 — empirical check of Theorem 1: sub-linear regret and violations.

Fits the growth exponent θ of the cumulative regret R(t) ≈ C·t^θ (and of
the cumulative violations) over the tail of a run.  Theorem 1 predicts
θ < 1 for LFSC; the Random baseline's regret is linear (θ ≈ 1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import run_experiment
from repro.metrics.regret import regret_series, sublinearity_exponent
from repro.metrics.violations import violation_series

_CACHE: dict = {}


def _results(cfg):
    if "res" not in _CACHE:
        _CACHE["res"] = run_experiment(
            cfg, ("Oracle", "LFSC", "Random"), workers=0
        )
    return _CACHE["res"]


def test_lfsc_regret_sublinear(benchmark, cfg):
    results = benchmark.pedantic(lambda: _results(cfg), rounds=1, iterations=1)
    lfsc = regret_series(results["LFSC"], results["Oracle"])
    random_ = regret_series(results["Random"], results["Oracle"])
    theta_lfsc = sublinearity_exponent(lfsc) if lfsc[-1] > 0 else 0.0
    theta_rand = sublinearity_exponent(random_)
    print(
        f"\n[A2] regret growth exponents: LFSC θ={theta_lfsc:.2f}, "
        f"Random θ={theta_rand:.2f} (θ<1 ⇒ sub-linear)"
    )
    assert theta_lfsc < 1.0
    assert theta_lfsc < theta_rand


def test_lfsc_average_regret_decreasing(cfg):
    results = _results(cfg)
    series = regret_series(results["LFSC"], results["Oracle"])
    avg = series / np.arange(1, len(series) + 1)
    q = len(avg) // 5
    print(f"[A2] LFSC avg regret: t={q}: {avg[q]:.3f} -> t=T: {avg[-1]:.3f}")
    assert avg[-1] < avg[q]


def test_lfsc_excess_violation_growth_slower_than_random(cfg):
    """LFSC's violations above the Oracle floor grow sub-linearly vs Random."""
    results = _results(cfg)
    oracle = violation_series(results["Oracle"])
    lfsc_excess = violation_series(results["LFSC"]) - oracle
    rand_excess = violation_series(results["Random"]) - oracle
    theta_lfsc = sublinearity_exponent(np.maximum(lfsc_excess, 1e-9))
    theta_rand = sublinearity_exponent(np.maximum(rand_excess, 1e-9))
    print(f"[A2] excess-violation exponents: LFSC {theta_lfsc:.2f}, Random {theta_rand:.2f}")
    assert theta_lfsc < theta_rand + 0.05
