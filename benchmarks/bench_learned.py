"""Learned-tier benchmark: throughput and quality of the contextual scorers.

Times the learned policies (``linucb``, ``linthompson``, ``dqn``) against
LFSC's windowed path at paper dimensions (M=30, c=20, |D| ∈ [35,100]) on a
reduced horizon, and compares reward quality across the evaluation worlds
(stationary paper workload, both non-stationary truths, vehicular mobility)
on the small scale.

Before timing anything the script asserts the correctness gates the learned
tier promises (the full matrices live in ``tests/learned/``; the bench
re-checks a prefix so a broken build cannot publish numbers):

- windowed ≡ per-slot bit-identical trajectories per learner;
- a default replay over a recorded stream ≡ the live run, bit for bit.

The acceptance criterion — each learned policy's slot throughput stays
within 2× of LFSC's windowed path — is recorded per policy in the report's
``throughput.<spec>.within_2x_of_lfsc``.

Usage::

    PYTHONPATH=src python benchmarks/bench_learned.py            # full
    PYTHONPATH=src python benchmarks/bench_learned.py --smoke    # CI smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_learned.py  # pytest-benchmark

Results land in ``BENCH_learned.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import api
from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.learned import record_stream, replay
from repro.obs.manifest import build_manifest

BASELINE = "LFSC"
LEARNED = ("linucb", "linthompson", "dqn")
SCENARIOS = ("nonstationary_drift", "nonstationary_regime", "vehicular")


# -- correctness gates --------------------------------------------------------


def check_window_equivalence(spec: str, horizon: int = 16) -> None:
    cfg = ExperimentConfig.tiny(horizon=horizon)
    sim = build_simulation(cfg)
    per_slot = sim.run(make_policy(spec, cfg, sim.truth), horizon, window=0)
    sim2 = build_simulation(cfg)
    windowed = sim2.run(make_policy(spec, cfg, sim2.truth), horizon, window=8)
    for field in ("reward", "accepted", "violation_qos"):
        if not np.array_equal(getattr(per_slot, field), getattr(windowed, field)):
            raise AssertionError(
                f"{spec!r}: windowed run diverged from per-slot on {field!r}"
            )


def check_replay_equivalence(spec: str, horizon: int = 16) -> None:
    cfg = ExperimentConfig.tiny(horizon=horizon)
    sim = build_simulation(cfg)
    live = sim.run(make_policy(spec, cfg, sim.truth), horizon)
    replayed = replay(record_stream(cfg), spec)
    if not np.array_equal(live.reward, replayed.reward):
        raise AssertionError(f"{spec!r}: replay diverged from the live run")


def run_gates() -> dict:
    for spec in LEARNED:
        check_window_equivalence(spec)
        check_replay_equivalence(spec)
    return {"windowed_equals_per_slot": True, "replay_equals_live": True}


# -- timed section ------------------------------------------------------------


def time_policy(cfg: ExperimentConfig, spec: str, repeats: int) -> dict:
    times = []
    for _ in range(repeats):
        sim = build_simulation(cfg)
        policy = make_policy(spec, cfg, sim.truth)
        t0 = time.perf_counter()
        out = sim.run(policy, cfg.horizon)
        times.append(time.perf_counter() - t0)
    best = min(times)
    return {
        "horizon": cfg.horizon,
        "slots_per_sec": cfg.horizon / best,
        "wall_s_best": best,
        "total_reward": float(out.total_reward),
    }


def bench_throughput(horizon: int, repeats: int) -> dict:
    """Paper dimensions (M=30, c=20), reduced horizon, LFSC vs the learners."""
    cfg = ExperimentConfig.paper().with_overrides(horizon=horizon)
    entries = {BASELINE: time_policy(cfg, BASELINE, repeats)}
    for spec in LEARNED:
        entry = time_policy(cfg, spec, repeats)
        ratio = entries[BASELINE]["slots_per_sec"] / entry["slots_per_sec"]
        entry["slowdown_vs_lfsc"] = ratio
        entry["within_2x_of_lfsc"] = bool(ratio <= 2.0)
        entries[spec] = entry
    return entries


def bench_quality(horizon: int) -> dict:
    """Reward comparison across worlds (small scale, shared randomness)."""
    line_up = (BASELINE, *LEARNED)
    worlds: dict[str, dict] = {}
    stationary = api.run(scale="small", horizon=horizon, policies=line_up, workers=1)
    worlds["stationary"] = {
        spec: float(stationary[spec].total_reward) for spec in line_up
    }
    for scenario in SCENARIOS:
        out = api.run(scenario=scenario, horizon=horizon, policies=line_up, workers=1)
        worlds[scenario] = {spec: float(out[spec].total_reward) for spec in line_up}
    return worlds


def run_benchmark(horizon: int, repeats: int, quality_horizon: int) -> dict:
    gates = run_gates()
    throughput = bench_throughput(horizon, repeats)
    quality = bench_quality(quality_horizon)
    return {
        "schema": "bench-learned/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", policies=list((BASELINE, *LEARNED))),
        "horizon": horizon,
        "quality_horizon": quality_horizon,
        "gates": gates,
        "throughput": throughput,
        "quality": quality,
        "headline": {
            spec: {
                "slots_per_sec": round(entry["slots_per_sec"], 1),
                **(
                    {"slowdown_vs_lfsc": round(entry["slowdown_vs_lfsc"], 2)}
                    if spec != BASELINE
                    else {}
                ),
            }
            for spec, entry in throughput.items()
        },
    }


def print_report(report: dict) -> None:
    print(
        f"learned tier — paper dims, horizon={report['horizon']}; "
        f"quality horizon={report['quality_horizon']}"
    )
    for spec, entry in report["throughput"].items():
        extra = (
            f"   {entry['slowdown_vs_lfsc']:.2f}x vs LFSC"
            f" ({'ok' if entry['within_2x_of_lfsc'] else 'OVER 2x'})"
            if spec != BASELINE
            else ""
        )
        print(f"  {spec:<12}: {entry['slots_per_sec']:8.1f} slots/s{extra}")
    print("  reward by world (small scale):")
    for world, rewards in report["quality"].items():
        cells = "  ".join(f"{spec}={val:.0f}" for spec, val in rewards.items())
        print(f"    {world:<22} {cells}")
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="throughput slots at paper dims (default: REPRO_BENCH_HORIZON, else 200)",
    )
    parser.add_argument(
        "--quality-horizon",
        type=int,
        default=None,
        help="slots per world for the reward comparison (default: horizon)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default 3)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: short horizon, single repeat, no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_learned.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        horizon, repeats = args.horizon or 30, 1
    else:
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else 200)
        repeats = args.repeats
    quality_horizon = args.quality_horizon or horizon

    report = run_benchmark(horizon, repeats, quality_horizon)
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_learned.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")


# -- pytest-benchmark entry points (smoke coverage in CI) ---------------------


def test_learned_gates(benchmark):
    result = benchmark.pedantic(run_gates, rounds=1, iterations=1)
    assert result["windowed_equals_per_slot"] and result["replay_equals_live"]


def test_linucb_throughput(benchmark):
    cfg = ExperimentConfig.small(horizon=60)
    result = benchmark.pedantic(
        lambda: time_policy(cfg, "linucb", repeats=1), rounds=1, iterations=1
    )
    print(f"\n[learned] linucb {result['slots_per_sec']:.1f} slots/s (small scale)")
    assert result["slots_per_sec"] > 0


if __name__ == "__main__":
    main()
