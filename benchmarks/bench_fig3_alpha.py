"""E4/E5 — Fig. 3: total reward and QoS violation vs the threshold α.

The paper sweeps α ∈ {13, 14, 15, 16, 17} (with c = 20).  We sweep the same
*fractions of capacity* so the bench works at any scale: α/c ∈
{0.65, 0.70, 0.75, 0.80, 0.85}.  Expected shape: LFSC's reward decreases
with α yet stays closest to the Oracle's; vUCB/FML rewards are flat; every
algorithm's V1 grows with α, LFSC's most slowly among the learners.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig3_alpha_sweep
from repro.experiments.runner import DEFAULT_POLICIES

_CACHE: dict = {}

ALPHA_FRACTIONS = (0.65, 0.70, 0.75, 0.80, 0.85)


def _sweep(cfg):
    if "out" not in _CACHE:
        alphas = tuple(round(f * cfg.capacity, 2) for f in ALPHA_FRACTIONS)
        _CACHE["out"] = fig3_alpha_sweep(cfg, alphas=alphas, workers=0)
    return _CACHE["out"]


def test_fig3_alpha_sweep(benchmark, cfg):
    out = benchmark.pedantic(lambda: _sweep(cfg), rounds=1, iterations=1)
    print("\n[Fig 3] reward and QoS violation vs alpha\n" + out.table())

    # vUCB / FML rewards are flat in alpha (alpha never enters their policy).
    for name in ("vUCB", "FML"):
        rewards = out.series[f"{name}/reward"]
        assert np.ptp(rewards) < 0.05 * rewards.mean()

    # Violations increase with alpha for every algorithm.
    for name in DEFAULT_POLICIES:
        v = out.series[f"{name}/violation_qos"]
        assert v[-1] > v[0]


def test_fig3_lfsc_closest_to_oracle(cfg):
    """LFSC tracks the Oracle across alpha.

    At the paper scale LFSC has the smallest |reward − Oracle| gap outright
    (see EXPERIMENTS.md); at the scaled-down bench horizon it is still
    converging, so we assert the robust version: far closer than Random and
    within 1.5x of the best constraint-blind learner's gap.
    """
    out = _sweep(cfg)
    oracle = out.series["Oracle/reward"]
    gaps = {
        name: np.abs(out.series[f"{name}/reward"] - oracle).mean()
        for name in ("LFSC", "vUCB", "FML", "Random")
    }
    print("\n[Fig 3] mean |reward - Oracle| per algorithm:", {k: round(v, 1) for k, v in gaps.items()})
    assert gaps["LFSC"] < 0.5 * gaps["Random"]
    assert gaps["LFSC"] < 1.5 * min(gaps["vUCB"], gaps["FML"])


def test_fig3_lfsc_violation_slope_smallest_among_learners(cfg):
    out = _sweep(cfg)
    x = out.series["x"]

    def slope(name):
        return np.polyfit(x, out.series[f"{name}/violation_qos"], 1)[0]

    lfsc = slope("LFSC")
    print(
        "\n[Fig 3] V1-vs-alpha slopes:",
        {n: round(slope(n), 1) for n in ("Oracle", "LFSC", "vUCB", "FML", "Random")},
    )
    assert lfsc <= slope("Random") + 1e-9
