"""Overhead benchmark for the observability subsystem (DESIGN.md §7).

Times the identical simulation in three states:

- ``off`` — no obs context installed (the default fast path);
- ``metrics`` — a context with a live registry but no trace recorder
  ("tracing disabled": spans feed histograms, nothing is written);
- ``trace`` — full JSONL slot tracing, ``sample_every=1``.

Before timing, the script asserts all three states produce bit-identical
reward trajectories for both slot engines — a benchmark of diverging runs
would be meaningless, and divergence means instrumentation perturbed an
RNG.  The headline number is the *disabled* overhead — ``metrics`` vs
``off`` — which the observability contract bounds at <5%: the subsystem
must be free when nobody is looking.  Timings use min-of-N repeats (least
noisy estimator on a busy host).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py              # paper scale
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke      # CI smoke
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --require-overhead-below 5

Results land in ``BENCH_obs.json`` with the run manifest embedded.  The
``--require-overhead-below PCT`` gate is opt-in (like the speedup gate of
``bench_replication_parallel.py``) so CI smoke runs on noisy shared hosts
don't flake; the committed paper-scale report is the honest record.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.lfsc import LFSCPolicy
from repro.experiments.runner import ExperimentConfig, build_simulation
from repro.obs import MetricsRegistry, build_manifest, observe

ENGINES = ("reference", "batched")
STATES = ("off", "metrics", "trace")


def _config(scale: str, horizon: int | None) -> ExperimentConfig:
    cfg = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    if horizon is not None:
        cfg = cfg.with_overrides(horizon=horizon)
    return cfg


def _run_state(cfg: ExperimentConfig, engine: str, state: str, horizon: int, trace_dir: Path):
    """One simulation under the given obs state; returns (result, seconds)."""
    sim = build_simulation(cfg)
    policy = LFSCPolicy(cfg.lfsc_config().with_overrides(engine=engine))
    if state == "off":
        t0 = time.perf_counter()
        result = sim.run(policy, horizon)
        return result, time.perf_counter() - t0
    trace_path = trace_dir / f"{engine}-{state}.jsonl" if state == "trace" else None
    with observe(trace_path=trace_path, registry=MetricsRegistry()):
        t0 = time.perf_counter()
        result = sim.run(policy, horizon)
        return result, time.perf_counter() - t0


def check_equivalence(cfg: ExperimentConfig, horizon: int, trace_dir: Path) -> None:
    """All three obs states must yield bit-identical trajectories."""
    short = cfg.with_overrides(horizon=min(horizon, 25))
    for engine in ENGINES:
        rewards = {}
        for state in STATES:
            result, _ = _run_state(short, engine, state, short.horizon, trace_dir)
            rewards[state] = result.reward
        for state in ("metrics", "trace"):
            if not np.array_equal(rewards["off"], rewards[state]):
                raise AssertionError(
                    f"{engine} engine diverged with obs state {state!r} — "
                    "instrumentation perturbed the run; benchmark invalid"
                )


def run_benchmark(cfg: ExperimentConfig, horizon: int, repeats: int) -> dict:
    report: dict = {
        "schema": "bench_obs/v1",
        "manifest": build_manifest(
            kind="bench",
            config=cfg,
            engine=",".join(ENGINES),
            extra={"repeats": repeats, "states": list(STATES)},
        ),
        "config": {"horizon": horizon, "seed": cfg.seed, "repeats": repeats},
        "engines": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp)
        check_equivalence(cfg, horizon, trace_dir)
        for engine in ENGINES:
            times = {state: [] for state in STATES}
            for _ in range(repeats):
                for state in STATES:
                    _, seconds = _run_state(cfg, engine, state, horizon, trace_dir)
                    times[state].append(seconds)
            best = {state: min(ts) for state, ts in times.items()}
            entry = {
                f"{state}_ms_per_slot": 1e3 * best[state] / horizon for state in STATES
            }
            entry["disabled_overhead_pct"] = 100.0 * (best["metrics"] / best["off"] - 1.0)
            entry["trace_overhead_pct"] = 100.0 * (best["trace"] / best["off"] - 1.0)
            report["engines"][engine] = entry
    report["headline"] = {
        "disabled_overhead_pct_max": max(
            e["disabled_overhead_pct"] for e in report["engines"].values()
        ),
        "trace_overhead_pct_max": max(
            e["trace_overhead_pct"] for e in report["engines"].values()
        ),
    }
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(f"obs overhead — horizon={cfg['horizon']} repeats={cfg['repeats']} (min-of-N)")
    header = f"{'engine':<12} {'off':>10} {'metrics':>10} {'trace':>10} {'disabled':>10} {'tracing':>10}"
    print(header)
    print("-" * len(header))
    for engine, e in report["engines"].items():
        print(
            f"{engine:<12} {e['off_ms_per_slot']:>9.3f}m {e['metrics_ms_per_slot']:>9.3f}m "
            f"{e['trace_ms_per_slot']:>9.3f}m {e['disabled_overhead_pct']:>+9.2f}% "
            f"{e['trace_overhead_pct']:>+9.2f}%"
        )
    print(
        f"\nheadline: disabled overhead max {report['headline']['disabled_overhead_pct_max']:+.2f}% "
        f"(budget <5%), tracing {report['headline']['trace_overhead_pct_max']:+.2f}%"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
    )
    parser.add_argument("--horizon", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3, help="min-of-N repeats")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, no JSON unless --output given",
    )
    parser.add_argument(
        "--require-overhead-below",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero when disabled overhead exceeds PCT percent "
        "(opt-in gate; timing asserts flake on shared hosts)",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 60
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 300 if scale == "paper" else 400

    cfg = _config(scale, horizon)
    report = run_benchmark(cfg, horizon, args.repeats)
    report["config"]["scale"] = scale
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if args.require_overhead_below is not None:
        worst = report["headline"]["disabled_overhead_pct_max"]
        if worst >= args.require_overhead_below:
            raise SystemExit(
                f"disabled obs overhead {worst:+.2f}% >= "
                f"{args.require_overhead_below}% budget"
            )
        print(f"overhead gate passed: {worst:+.2f}% < {args.require_overhead_below}%")


# -- pytest-benchmark entry points (smoke coverage in CI) ---------------------


def _smoke_cfg() -> tuple[ExperimentConfig, int]:
    horizon = int(os.environ.get("REPRO_BENCH_HORIZON", "60"))
    return _config("small", horizon), horizon


def test_obs_states_equivalent_before_timing(tmp_path):
    cfg, horizon = _smoke_cfg()
    check_equivalence(cfg, horizon, tmp_path)


def test_batched_engine_with_metrics_context(benchmark):
    cfg, horizon = _smoke_cfg()
    sim = build_simulation(cfg)
    policy = LFSCPolicy(cfg.lfsc_config())

    def run():
        with observe(registry=MetricsRegistry()):
            return sim.run(policy, horizon)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.reward.shape == (horizon,)


if __name__ == "__main__":
    main()
