"""End-to-end A/B benchmark of the two LFSC slot engines.

Runs the identical simulation twice per assignment mode — once with
``LFSCConfig.engine = "reference"`` (the paper-shaped per-SCN loop) and once
with ``"batched"`` (the flat edge-list engine) — and reports per-slot
wall-clock for the policy hot path (``select`` + ``update``) and for the
full simulation loop.  Because the engines are bit-equivalent given the same
seed (``tests/core/test_lfsc_engine_equivalence.py``), both runs traverse
the same weight/assignment trajectory, so the comparison is apples to
apples; the script asserts that equivalence on a short prefix before timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_slot_engine.py            # paper scale
    PYTHONPATH=src python benchmarks/bench_slot_engine.py --smoke    # CI smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_slot_engine.py  # pytest-benchmark

Results land in ``BENCH_slot_engine.json`` (see ``--output``): per-slot
milliseconds for both engines in both assignment modes, plus the derived
speedups.  The headline number is the policy-engine speedup — the ratio of
reference to batched (select + update) time — since that is exactly the
code the two engines implement differently; the end-to-end ratio also
includes the engine-independent environment work (workload generation,
feedback realization, expected-violation recording) and is therefore lower.

Scale knobs follow ``benchmarks/conftest.py``: ``REPRO_BENCH_SCALE``
(``paper``/``small``) and ``REPRO_BENCH_HORIZON``, overridable via CLI.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.lfsc import LFSCPolicy
from repro.experiments.runner import ExperimentConfig, build_simulation
from repro.obs.manifest import build_manifest

MODES = ("deterministic", "depround")
ENGINES = ("reference", "batched")


def _config(scale: str, horizon: int | None) -> ExperimentConfig:
    cfg = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    if horizon is not None:
        cfg = cfg.with_overrides(horizon=horizon)
    return cfg


def _policy(cfg: ExperimentConfig, mode: str, engine: str) -> LFSCPolicy:
    lfsc = cfg.lfsc_config().with_overrides(assignment_mode=mode, engine=engine)
    return LFSCPolicy(lfsc)


def timed_run(cfg: ExperimentConfig, mode: str, engine: str, horizon: int) -> dict:
    """Per-slot wall-clock (ms) of one simulation: select, update, end-to-end."""
    sim = build_simulation(cfg)
    policy = _policy(cfg, mode, engine)
    select_s = [0.0]
    update_s = [0.0]

    orig_select = policy.select
    orig_update = policy._update

    def select(slot):
        t0 = time.perf_counter()
        result = orig_select(slot)
        select_s[0] += time.perf_counter() - t0
        return result

    def update(slot, feedback):
        t0 = time.perf_counter()
        orig_update(slot, feedback)
        update_s[0] += time.perf_counter() - t0

    policy.select = select
    policy._update = update

    # window=0 pins the per-slot driver: this benchmark isolates the two
    # engines' slot kernels; the windowed pipeline is A/B'd separately in
    # benchmarks/bench_window.py.
    t0 = time.perf_counter()
    result = sim.run(policy, horizon, window=0)
    total_s = time.perf_counter() - t0

    scale = 1e3 / horizon
    return {
        "select_ms_per_slot": select_s[0] * scale,
        "update_ms_per_slot": update_s[0] * scale,
        "policy_ms_per_slot": (select_s[0] + update_s[0]) * scale,
        "e2e_ms_per_slot": total_s * scale,
        "total_reward": float(result.reward.sum()),
    }


def check_equivalence(cfg: ExperimentConfig, mode: str, horizon: int = 25) -> None:
    """Assert both engines produce the identical trajectory (same seed)."""
    short = cfg.with_overrides(horizon=horizon)
    rewards = {}
    for engine in ENGINES:
        sim = build_simulation(short)
        result = sim.run(_policy(short, mode, engine), horizon, window=0)
        rewards[engine] = result.reward
    if not np.array_equal(rewards["reference"], rewards["batched"]):
        raise AssertionError(f"engines diverged in {mode} mode — benchmark would be invalid")


def run_benchmark(cfg: ExperimentConfig, horizon: int) -> dict:
    report: dict = {
        "schema": "bench_slot_engine/v2",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(
            kind="bench", config=cfg, engine=",".join(ENGINES)
        ),
        "config": {
            "num_scns": cfg.num_scns,
            "capacity": cfg.capacity,
            "coverage_range": [cfg.k_min, cfg.k_max],
            "horizon": horizon,
            "seed": cfg.seed,
        },
        "modes": {},
    }
    for mode in MODES:
        check_equivalence(cfg, mode)
        entry: dict = {}
        for engine in ENGINES:
            entry[engine] = timed_run(cfg, mode, engine, horizon)
        ref, bat = entry["reference"], entry["batched"]
        entry["policy_speedup"] = ref["policy_ms_per_slot"] / bat["policy_ms_per_slot"]
        entry["e2e_speedup"] = ref["e2e_ms_per_slot"] / bat["e2e_ms_per_slot"]
        report["modes"][mode] = entry
    report["headline"] = {
        "policy_speedup_deterministic": report["modes"]["deterministic"]["policy_speedup"],
        "policy_speedup_depround": report["modes"]["depround"]["policy_speedup"],
        "e2e_speedup_deterministic": report["modes"]["deterministic"]["e2e_speedup"],
        "e2e_speedup_depround": report["modes"]["depround"]["e2e_speedup"],
    }
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(
        f"slot engine A/B — M={cfg['num_scns']} c={cfg['capacity']} "
        f"K∈{cfg['coverage_range']} horizon={cfg['horizon']}"
    )
    header = f"{'mode':<14} {'engine':<10} {'select':>8} {'update':>8} {'policy':>8} {'e2e':>8}"
    print(header)
    print("-" * len(header))
    for mode, entry in report["modes"].items():
        for engine in ENGINES:
            row = entry[engine]
            print(
                f"{mode:<14} {engine:<10} "
                f"{row['select_ms_per_slot']:>7.3f}m {row['update_ms_per_slot']:>7.3f}m "
                f"{row['policy_ms_per_slot']:>7.3f}m {row['e2e_ms_per_slot']:>7.3f}m"
            )
        print(
            f"{mode:<14} {'speedup':<10} {'':>8} {'':>8} "
            f"{entry['policy_speedup']:>7.2f}x {entry['e2e_speedup']:>7.2f}x"
        )
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        help="problem size (default: REPRO_BENCH_SCALE or paper)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots to simulate (default: REPRO_BENCH_HORIZON, else 300 paper / 400 small)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_slot_engine.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 60
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 300 if scale == "paper" else 400

    cfg = _config(scale, horizon)
    report = run_benchmark(cfg, horizon)
    report["config"]["scale"] = scale
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_slot_engine.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")


# -- pytest-benchmark entry points (smoke coverage in CI) ---------------------


def _smoke_cfg() -> tuple[ExperimentConfig, int]:
    horizon = int(os.environ.get("REPRO_BENCH_HORIZON", "60"))
    return _config("small", horizon), horizon


def test_slot_engine_equivalent_before_timing():
    cfg, _ = _smoke_cfg()
    for mode in MODES:
        check_equivalence(cfg, mode)


def test_batched_engine_small_scale(benchmark):
    cfg, horizon = _smoke_cfg()
    sim = build_simulation(cfg)
    policy = _policy(cfg, "depround", "batched")
    result = benchmark.pedantic(
        lambda: sim.run(policy, horizon, window=0), rounds=3, iterations=1
    )
    assert result.reward.shape == (horizon,)


def test_reference_engine_small_scale(benchmark):
    cfg, horizon = _smoke_cfg()
    sim = build_simulation(cfg)
    policy = _policy(cfg, "depround", "reference")
    result = benchmark.pedantic(
        lambda: sim.run(policy, horizon, window=0), rounds=3, iterations=1
    )
    assert result.reward.shape == (horizon,)


if __name__ == "__main__":
    main()
