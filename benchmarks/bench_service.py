"""Service benchmark: decision throughput/latency and checkpoint costs.

Measures the online service (DESIGN.md §10) on three axes:

- **in-process**: per-slot ``decide()`` latency (p50/p99 ms) and full-slot
  decisions/sec of a bare :class:`OnlineSession` — the policy server's
  intrinsic speed, no transport;
- **daemon**: the same decisions through the TCP line-JSON protocol —
  what a colocated client actually observes round-trip;
- **checkpoint**: ``save``/``from_checkpoint`` wall-clock and the snapshot
  file size at the benchmark horizon.

Before timing anything the script asserts the correctness gates: the
session's trajectory equals the batch simulator's per-slot run bit for bit,
and a mid-run checkpoint/restore continues bit-identically (the full matrix
lives in ``tests/service/``; the bench re-checks a prefix so a broken build
cannot publish numbers).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # paper scale
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_service.py  # pytest-benchmark

Results land in ``BENCH_service.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.metrics.latency import latency_summary, percentile
from repro.obs.manifest import build_manifest
from repro.service import OnlineSession, PolicyDaemon, ServiceClient


def _config(scale: str, horizon: int) -> ExperimentConfig:
    base = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    return base.with_overrides(horizon=horizon)


def _latency_stats(samples: list[float]) -> dict:
    stats = latency_summary(samples).as_dict(unit="ms")
    return {"p50_ms": stats["p50_ms"], "p99_ms": stats["p99_ms"], "mean_ms": stats["mean_ms"]}


# -- correctness gates -------------------------------------------------------


def check_session_equals_simulator(cfg: ExperimentConfig, horizon: int = 25) -> None:
    short = cfg.with_overrides(horizon=horizon)
    sim = build_simulation(short)
    ref = sim.run(make_policy("LFSC", short, sim.truth), horizon, window=0)
    res = OnlineSession(short).run().result()
    for name in ("reward", "accepted", "violation_qos", "violation_resource"):
        if not np.array_equal(getattr(ref, name), getattr(res, name)):
            raise AssertionError(f"session diverged from the simulator on {name!r}")


def check_resume_equivalence(cfg: ExperimentConfig, tmp: Path, horizon: int = 25) -> None:
    short = cfg.with_overrides(horizon=horizon)
    baseline = OnlineSession(short).run().result()
    first = OnlineSession(short)
    first.run(horizon // 2)
    resumed = OnlineSession.from_checkpoint(first.save(tmp / "gate.ckpt")).run().result()
    for name in ("reward", "accepted", "violation_qos"):
        if not np.array_equal(getattr(baseline, name), getattr(resumed, name)):
            raise AssertionError(f"resume diverged from the uninterrupted run on {name!r}")


# -- timed sections ----------------------------------------------------------


def bench_in_process(cfg: ExperimentConfig, horizon: int) -> tuple[dict, OnlineSession]:
    session = OnlineSession(cfg)
    decide_s: list[float] = []
    t_start = time.perf_counter()
    for _ in range(horizon):
        t0 = time.perf_counter()
        session.decide()
        decide_s.append(time.perf_counter() - t0)
        session.feedback()
    total_s = time.perf_counter() - t_start
    return {
        "decisions": horizon,
        "decisions_per_sec": horizon / total_s,
        "slot_ms_mean": 1e3 * total_s / horizon,
        "decide_latency": _latency_stats(decide_s),
    }, session


def bench_daemon(cfg: ExperimentConfig, horizon: int) -> dict:
    daemon = PolicyDaemon(OnlineSession(cfg))
    host, port = daemon.start()
    rtt_s: list[float] = []
    try:
        with ServiceClient(host, port) as client:
            t_start = time.perf_counter()
            for _ in range(horizon):
                t0 = time.perf_counter()
                reply = client.request({"op": "decide"})
                rtt_s.append(time.perf_counter() - t0)
                if not reply.get("ok"):
                    raise AssertionError(f"daemon decide failed: {reply}")
            total_s = time.perf_counter() - t_start
            status = client.request({"op": "status"})
    finally:
        daemon.close()
    return {
        "decisions": horizon,
        "decisions_per_sec": horizon / total_s,
        "round_trip_latency": _latency_stats(rtt_s),
        "server_side": {
            "p50_ms": status["latency_p50_ms"],
            "p99_ms": status["latency_p99_ms"],
        },
    }


def bench_checkpoint(session: OnlineSession, tmp: Path, repeats: int = 5) -> dict:
    path = tmp / "bench.ckpt"
    save_s: list[float] = []
    load_s: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        session.save(path)
        save_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        OnlineSession.from_checkpoint(path)
        load_s.append(time.perf_counter() - t0)
    return {
        "at_slot": session.t,
        "file_bytes": path.stat().st_size,
        "save_ms": 1e3 * percentile(save_s, 0.50),
        "restore_ms": 1e3 * percentile(load_s, 0.50),
    }


def run_benchmark(cfg: ExperimentConfig, horizon: int, tmp: Path) -> dict:
    check_session_equals_simulator(cfg)
    check_resume_equivalence(cfg, tmp)
    in_process, session = bench_in_process(cfg, horizon)
    report = {
        "schema": "bench-service/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", config=cfg, policies=["LFSC"]),
        "config": {
            "num_scns": cfg.num_scns,
            "capacity": cfg.capacity,
            "coverage_range": [cfg.k_min, cfg.k_max],
            "horizon": horizon,
            "seed": cfg.seed,
        },
        "gates": {"session_equals_simulator": True, "resume_bit_identical": True},
        "in_process": in_process,
        "daemon": bench_daemon(cfg, horizon),
        "checkpoint": bench_checkpoint(session, tmp),
    }
    report["headline"] = {
        "decisions_per_sec": in_process["decisions_per_sec"],
        "decide_p50_ms": in_process["decide_latency"]["p50_ms"],
        "decide_p99_ms": in_process["decide_latency"]["p99_ms"],
        "daemon_rtt_p50_ms": report["daemon"]["round_trip_latency"]["p50_ms"],
        "checkpoint_save_ms": report["checkpoint"]["save_ms"],
    }
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(
        f"online service — M={cfg['num_scns']} c={cfg['capacity']} "
        f"K∈{cfg['coverage_range']} horizon={cfg['horizon']}"
    )
    ip = report["in_process"]
    print(
        f"  in-process : {ip['decisions_per_sec']:8.1f} decisions/s   "
        f"decide p50 {ip['decide_latency']['p50_ms']:.3f} ms   "
        f"p99 {ip['decide_latency']['p99_ms']:.3f} ms"
    )
    dm = report["daemon"]
    print(
        f"  daemon     : {dm['decisions_per_sec']:8.1f} decisions/s   "
        f"rtt p50 {dm['round_trip_latency']['p50_ms']:.3f} ms   "
        f"p99 {dm['round_trip_latency']['p99_ms']:.3f} ms"
    )
    ck = report["checkpoint"]
    print(
        f"  checkpoint : save {ck['save_ms']:.2f} ms   restore {ck['restore_ms']:.2f} ms   "
        f"{ck['file_bytes'] / 1024:.1f} KiB at slot {ck['at_slot']}"
    )
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        help="problem size (default: REPRO_BENCH_SCALE or paper)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots to serve (default: REPRO_BENCH_HORIZON, else 300 paper / 400 small)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 60
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 300 if scale == "paper" else 400

    import tempfile

    cfg = _config(scale, horizon)
    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        report = run_benchmark(cfg, horizon, Path(tmp))
    report["config"]["scale"] = scale
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")


# -- pytest-benchmark entry points (smoke coverage in CI) ---------------------


def test_service_throughput(benchmark, tmp_path):
    cfg = _config("small", 40)
    check_session_equals_simulator(cfg, horizon=20)
    result = benchmark.pedantic(
        lambda: bench_in_process(cfg, 40)[0], rounds=1, iterations=1
    )
    print(
        f"\n[service] {result['decisions_per_sec']:.1f} decisions/s, "
        f"p99 {result['decide_latency']['p99_ms']:.3f} ms"
    )
    assert result["decisions_per_sec"] > 0


def test_service_checkpoint_cost(benchmark, tmp_path):
    cfg = _config("small", 40)
    session = OnlineSession(cfg)
    session.run(20)
    result = benchmark.pedantic(
        lambda: bench_checkpoint(session, tmp_path, repeats=2), rounds=1, iterations=1
    )
    print(
        f"\n[service] checkpoint save {result['save_ms']:.2f} ms, "
        f"restore {result['restore_ms']:.2f} ms, {result['file_bytes']} bytes"
    )
    assert result["file_bytes"] > 0


if __name__ == "__main__":
    main()
