"""E1/E2 — Fig. 2(a)/(b): cumulative and per-slot compound reward.

Regenerates the series of paper Fig. 2: cumulative compound reward of
Oracle / LFSC / vUCB / FML / Random on the same workload, plus the smoothed
per-slot reward.  Prints the summary rows and asserts the qualitative shape
(LFSC near Oracle; constraint-blind learners above; Random lowest).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import fig2a_cumulative_reward, fig2b_per_slot_reward
from repro.experiments.runner import DEFAULT_POLICIES, run_experiment

_CACHE: dict = {}


def _results(cfg):
    if "res" not in _CACHE:
        _CACHE["res"] = run_experiment(cfg, DEFAULT_POLICIES, workers=0)
    return _CACHE["res"]


def test_fig2a_cumulative_reward(benchmark, cfg):
    results = benchmark.pedantic(
        lambda: _results(cfg), rounds=1, iterations=1
    )
    out = fig2a_cumulative_reward(cfg, results=results)
    print("\n[Fig 2a] cumulative compound reward\n" + out.table())

    reward = {n: r.total_reward for n, r in results.items()}
    assert reward["LFSC"] > 0.8 * reward["Oracle"]
    assert reward["vUCB"] > reward["Oracle"]
    assert reward["FML"] > reward["Oracle"]
    assert min(reward, key=reward.get) == "Random"


def test_fig2b_per_slot_reward(benchmark, cfg):
    results = _results(cfg)
    out = benchmark.pedantic(
        lambda: fig2b_per_slot_reward(cfg, results=results, window=50),
        rounds=1,
        iterations=1,
    )
    print("\n[Fig 2b] per-slot compound reward (smoothed)\n" + out.table())

    # Late-horizon per-slot reward: LFSC converges toward the Oracle.
    lfsc_late = out.series["LFSC"][-100:].mean()
    oracle_late = out.series["Oracle"][-100:].mean()
    assert lfsc_late > 0.8 * oracle_late


@pytest.mark.parametrize("policy", DEFAULT_POLICIES)
def test_reward_series_finite(cfg, policy):
    results = _results(cfg)
    assert results[policy].reward.min() >= 0.0
