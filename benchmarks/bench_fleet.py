"""Fleet benchmark: sharded metro-scale throughput and latency percentiles.

Measures the sharded fleet driver (DESIGN.md §12) on the axes the paper's
"heavy traffic" claim needs at metro scale:

- **scaling curve**: decisions/min for fleets from hundreds to ~1k SCNs at
  shard counts 1/2/4, each row carrying per-shard decision-latency
  p50/p90/p99 from :class:`repro.metrics.latency.LatencyRecorder`;
- **equivalence gates**: before timing anything, sharded runs must match
  the unsharded reference bit for bit across shard counts {1, 2, 4}, both
  slot engines (batched/reference), windowed and per-slot streaming, and
  the process transport; the sampler-coverage independence fast path must
  collapse to a single round with zero migrants.  A broken build cannot
  publish numbers.

The throughput target (1M+ decisions/min) is only meaningful with real
cores; ``--require-throughput`` enforces it but is waived with a printed
note when ``os.cpu_count() < 2``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # metro scale
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke    # CI smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py  # pytest-benchmark

Results land in ``BENCH_fleet.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.fleet import FleetConfig, fleet_series_equal, run_fleet
from repro.obs.manifest import build_manifest


def _gate_config(**overrides) -> FleetConfig:
    base = dict(
        tiles_x=2,
        tiles_y=2,
        scns_per_tile=3,
        wds_per_tile=12,
        horizon=16,
        exchange_every=4,
        seed=0,
        truth_seed=7,
    )
    base.update(overrides)
    return FleetConfig(**base)


# -- correctness gates ---------------------------------------------------------


def check_equivalence() -> dict:
    """Sharded ≡ unsharded across engines, windows, transports — or die."""
    checks: dict[str, bool] = {}
    for engine in ("batched", "reference"):
        # engine="reference" forces per-slot streaming, so only the batched
        # engine exercises both window settings.
        for window in ((None, 0) if engine == "batched" else (None,)):
            cfg = _gate_config(engine=engine, window=window)
            ref = run_fleet(cfg, shards=1, mode="serial")
            for shards in (2, 4):
                res = run_fleet(cfg, shards=shards, mode="serial")
                if not fleet_series_equal(res, ref):
                    raise AssertionError(
                        f"sharded run diverged: engine={engine} "
                        f"window={window} shards={shards}"
                    )
            label = "default" if window is None else str(window)
            checks[f"{engine}/window={label}"] = True

    cfg = _gate_config()
    ref = run_fleet(cfg, shards=1, mode="serial")
    res = run_fleet(cfg, shards=2, mode="process")
    if not fleet_series_equal(res, ref):
        raise AssertionError("process-transport run diverged from the serial reference")
    if res.migrants == 0:
        raise AssertionError("mobility gate saw no border migrants — exchange untested")
    checks["process_transport"] = True

    cfg = _gate_config(coverage="sampler")
    ref = run_fleet(cfg, shards=1, mode="serial")
    res = run_fleet(cfg, shards=2, mode="serial")
    if not fleet_series_equal(res, ref):
        raise AssertionError("sampler-coverage sharded run diverged")
    if res.rounds != 1 or res.migrants != 0:
        raise AssertionError(
            f"independence fast path not taken: rounds={res.rounds} "
            f"migrants={res.migrants}"
        )
    checks["sampler_fast_path"] = True
    return checks


# -- timed sections ------------------------------------------------------------


def bench_scaling(
    sizes: list[tuple[str, FleetConfig]], shard_counts: tuple[int, ...], mode: str
) -> list[dict]:
    """Decisions/min per (fleet size × shard count), equivalence-gated."""
    rows: list[dict] = []
    for label, cfg in sizes:
        reference = None
        for shards in shard_counts:
            result = run_fleet(cfg, shards=shards, mode=mode if shards > 1 else "serial")
            if reference is None:
                reference = result
            elif not fleet_series_equal(result, reference):
                raise AssertionError(f"{label}: shards={shards} diverged mid-bench")
            rows.append(
                {
                    "fleet": label,
                    "num_scns": cfg.num_scns,
                    "num_tiles": cfg.num_tiles,
                    "wds": cfg.num_tiles * cfg.wds_per_tile,
                    "horizon": cfg.horizon,
                    "shards": result.shards,
                    "mode": result.mode,
                    "rounds": result.rounds,
                    "migrants": result.migrants,
                    "decisions": result.decisions,
                    "wall_s": result.wall_s,
                    "decisions_per_min": result.decisions_per_min,
                    "equivalent_to_unsharded": True,
                    "shard_latency": result.latency_rows(),
                }
            )
            print(
                f"  {label:>10} M={cfg.num_scns:<5} shards={result.shards} "
                f"[{result.mode:>7}]  {result.decisions_per_min:12,.0f} decisions/min  "
                f"p99 {max(r['p99_ms'] for r in result.latency_rows()):.3f} ms"
            )
    return rows


def _fleet_sizes(smoke: bool) -> list[tuple[str, FleetConfig]]:
    if smoke:
        return [
            (
                "smoke-12",
                _gate_config(wds_per_tile=24, horizon=24, exchange_every=8),
            )
        ]
    return [
        (
            "metro-128",
            FleetConfig(
                tiles_x=4, tiles_y=4, scns_per_tile=8, wds_per_tile=120, horizon=60
            ),
        ),
        (
            "metro-512",
            FleetConfig(
                tiles_x=8, tiles_y=8, scns_per_tile=8, wds_per_tile=120, horizon=20
            ),
        ),
        (
            "metro-1k",
            FleetConfig(
                tiles_x=16,
                tiles_y=8,
                scns_per_tile=8,
                wds_per_tile=60,
                horizon=8,
                exchange_every=8,
            ),
        ),
    ]


def run_benchmark(smoke: bool, mode: str) -> dict:
    print("equivalence gates ...")
    gates = check_equivalence()
    print(f"  {len(gates)} gates passed: {', '.join(sorted(gates))}")
    sizes = _fleet_sizes(smoke)
    shard_counts = (1, 2) if smoke else (1, 2, 4)
    print("scaling curve ...")
    rows = bench_scaling(sizes, shard_counts, mode)
    best = max(rows, key=lambda r: r["decisions_per_min"])
    return {
        "schema": "bench-fleet/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(
            kind="bench",
            config=sizes[-1][1],
            policies=["LFSC"],
            extra={"cpu_count": os.cpu_count(), "mode": mode, "smoke": smoke},
        ),
        "gates": gates,
        "scaling": rows,
        "headline": {
            "fleet": best["fleet"],
            "num_scns": best["num_scns"],
            "shards": best["shards"],
            "decisions_per_min": best["decisions_per_min"],
            "decide_p99_ms": max(r["p99_ms"] for r in best["shard_latency"]),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: tiny fleet, shards {1,2}, no JSON unless --output given",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "serial", "process"),
        default="auto",
        help="execution mode for sharded runs (default: auto)",
    )
    parser.add_argument(
        "--require-throughput",
        type=float,
        default=None,
        metavar="DPM",
        help="fail unless headline decisions/min reaches DPM "
        "(waived with a note on single-core hosts)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_fleet.json)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, args.mode)
    head = report["headline"]
    print(
        f"headline: {head['fleet']} (M={head['num_scns']}, shards={head['shards']}) "
        f"— {head['decisions_per_min']:,.0f} decisions/min, "
        f"decide p99 {head['decide_p99_ms']:.3f} ms"
    )

    if args.require_throughput is not None:
        cores = os.cpu_count() or 1
        if cores < 2:
            print(
                f"note: throughput gate ({args.require_throughput:,.0f}/min) waived "
                f"— host has {cores} core(s); shard workers cannot run in parallel"
            )
        elif head["decisions_per_min"] < args.require_throughput:
            raise SystemExit(
                f"throughput gate failed: {head['decisions_per_min']:,.0f}/min "
                f"< required {args.require_throughput:,.0f}/min"
            )
        else:
            print(f"throughput gate passed (>= {args.require_throughput:,.0f}/min)")

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")


# -- pytest-benchmark entry points (smoke coverage in CI) -----------------------


def test_fleet_sharded_equivalence(benchmark):
    gates = benchmark.pedantic(check_equivalence, rounds=1, iterations=1)
    assert gates and all(gates.values())


def test_fleet_throughput(benchmark):
    cfg = _gate_config(wds_per_tile=24, horizon=24, exchange_every=8)
    result = benchmark.pedantic(
        lambda: run_fleet(cfg, shards=2, mode="serial"), rounds=1, iterations=1
    )
    print(f"\n[fleet] {result.decisions_per_min:,.0f} decisions/min (serial, 2 shards)")
    assert result.decisions > 0 and len(result.latency_rows()) == 2


if __name__ == "__main__":
    main()
