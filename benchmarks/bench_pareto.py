"""LFSC's reward-violation operating curve vs the baselines (extension).

Sweeps the dual cap λ_max to trace LFSC's trade-off frontier and checks that
(a) larger caps cut violations, and (b) some LFSC operating point weakly
dominates Random in the (reward, violations) plane.
"""

from __future__ import annotations

from repro.experiments.pareto import dominates, lfsc_operating_curve

_CACHE: dict = {}


def _curve(cfg):
    if "out" not in _CACHE:
        small = cfg.with_overrides(horizon=max(300, cfg.horizon // 2))
        _CACHE["out"] = lfsc_operating_curve(
            small, lambda_caps=(0.5, 5.0, 20.0), baselines=("Oracle", "vUCB", "Random"), workers=0
        )
    return _CACHE["out"]


def test_operating_curve(benchmark, cfg):
    out = benchmark.pedantic(lambda: _curve(cfg), rounds=1, iterations=1)
    print("\n[pareto] LFSC operating curve vs baselines\n" + out.table())

    viol = out.series["curve_violations"]
    # More dual pressure -> fewer violations (monotone within noise).
    assert viol[-1] < viol[0] * 1.05

    random_pt = next(
        (float(r["total_reward"]), float(r["total_violations"]))
        for r in out.rows
        if r["policy"] == "Random"
    )
    lfsc_pts = [
        (float(r["total_reward"]), float(r["total_violations"]))
        for r in out.rows
        if str(r["policy"]).startswith("LFSC")
    ]
    assert any(dominates(p, random_pt) for p in lfsc_pts)
