"""E6 — Fig. 4: performance under different link-reliability environments.

Sweeps the completion-likelihood range V ~ Uniform[v_lo, 1] for
v_lo ∈ {0, 0.25, 0.5, 0.75}: larger v_lo models more reliable mmWave links
(less blockage).  Expected shape: every algorithm earns more and violates
less as reliability grows; LFSC keeps the best reward/violation balance.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig4_likelihood_sweep

_CACHE: dict = {}

V_LOWS = (0.0, 0.25, 0.5, 0.75)


def _sweep(cfg):
    if "out" not in _CACHE:
        _CACHE["out"] = fig4_likelihood_sweep(cfg, v_lows=V_LOWS, workers=0)
    return _CACHE["out"]


def test_fig4_likelihood_sweep(benchmark, cfg):
    out = benchmark.pedantic(lambda: _sweep(cfg), rounds=1, iterations=1)
    print("\n[Fig 4] performance vs link reliability\n" + out.table())

    # Reward increases and violations decrease with reliability.
    for name in ("Oracle", "LFSC", "vUCB", "FML", "Random"):
        reward = out.series[f"{name}/reward"]
        viol = out.series[f"{name}/violations"]
        assert reward[-1] > reward[0]
        assert viol[-1] < viol[0]


def test_fig4_lfsc_best_tradeoff_in_every_environment(cfg):
    out = _sweep(cfg)
    ratios = {
        name: out.series[f"{name}/performance_ratio"]
        for name in ("LFSC", "vUCB", "FML", "Random")
    }
    print(
        "\n[Fig 4] performance ratios per v_lo:",
        {k: np.round(v, 2).tolist() for k, v in ratios.items()},
    )
    # LFSC dominates Random everywhere and stays within 10% of the best
    # learner in every environment (it typically leads outright once the
    # horizon is long enough for the duals to settle).
    for i in range(len(V_LOWS)):
        assert ratios["LFSC"][i] > ratios["Random"][i]
        best = max(ratios[n][i] for n in ("vUCB", "FML"))
        assert ratios["LFSC"][i] > 0.9 * best
