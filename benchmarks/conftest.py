"""Shared benchmark configuration.

Benchmarks default to the proportionally scaled ``small`` instance so the
whole suite runs in minutes.  Set ``REPRO_BENCH_SCALE=paper`` to run the
published evaluation scale (M=30, c=20, T=10,000 — minutes *per policy*),
and ``REPRO_BENCH_HORIZON`` to override the horizon directly.

Each benchmark prints the rows/series the corresponding paper artifact
reports (run pytest with ``-s`` to see them) and records the wall-clock of
the underlying simulation through pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentConfig


def bench_config(**overrides) -> ExperimentConfig:
    """The benchmark experiment config honouring the env-var scale knobs."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale == "paper":
        cfg = ExperimentConfig.paper()
    else:
        cfg = ExperimentConfig.small(horizon=1200)
    horizon = os.environ.get("REPRO_BENCH_HORIZON")
    if horizon:
        cfg = cfg.with_overrides(horizon=int(horizon))
    return cfg.with_overrides(**overrides)


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    return bench_config()
