"""E7 — the performance-ratio metric (paper §5).

ratio = cumulative reward / (1 + cumulative violations).  The paper uses it
to show LFSC achieves the best reward-per-violation balance.
"""

from __future__ import annotations

from repro.experiments.figures import performance_ratio_table
from repro.experiments.runner import DEFAULT_POLICIES, run_experiment
from repro.metrics.ratio import performance_ratio

_CACHE: dict = {}


def _results(cfg):
    if "res" not in _CACHE:
        _CACHE["res"] = run_experiment(cfg, DEFAULT_POLICIES, workers=0)
    return _CACHE["res"]


def test_performance_ratio_table(benchmark, cfg):
    results = benchmark.pedantic(lambda: _results(cfg), rounds=1, iterations=1)
    out = performance_ratio_table(cfg, results=results)
    print("\n[E7] performance ratio (reward / (1 + violations))\n" + out.table())

    ratios = {n: performance_ratio(r) for n, r in results.items()}
    assert ratios["LFSC"] > ratios["Random"]
    # LFSC matches or beats the constraint-blind learners on balance.
    assert ratios["LFSC"] > 0.9 * max(ratios["vUCB"], ratios["FML"])


def test_ratio_series_improves_for_lfsc(cfg):
    from repro.metrics.ratio import performance_ratio_series

    results = _results(cfg)
    series = performance_ratio_series(results["LFSC"])
    q = len(series) // 4
    print(f"\n[E7] LFSC ratio: early {series[q]:.3f} -> final {series[-1]:.3f}")
    assert series[-1] > series[q]
