"""E3/E8 — cumulative violations and the early-stage violation ratios.

Regenerates the violation curves of Fig. 2 and the §5 headline numbers:
"the total violations of LFSC are only 30%, 32% and 20% of the vUCB, FML
and random algorithm" in the early exploration stage, decreasing over time.
Absolute percentages depend on how much of the violation floor is inherent
(even the Oracle violates when a slot is infeasible); the asserted shape is
LFSC < each baseline, with the LFSC/baseline ratio shrinking over time.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig2_violations
from repro.experiments.runner import DEFAULT_POLICIES, run_experiment
from repro.metrics.violations import per_slot_violation_rate, violation_series

_CACHE: dict = {}


def _results(cfg):
    if "res" not in _CACHE:
        _CACHE["res"] = run_experiment(cfg, DEFAULT_POLICIES, workers=0)
    return _CACHE["res"]


def test_fig2_violation_curves(benchmark, cfg):
    results = benchmark.pedantic(lambda: _results(cfg), rounds=1, iterations=1)
    out = fig2_violations(cfg, results=results)
    print("\n[Fig 2 violations] totals and early ratios\n" + out.table())

    total = {n: r.total_violations for n, r in results.items()}
    for name in ("vUCB", "FML", "Random"):
        assert total["LFSC"] < total[name]
    assert total["Oracle"] <= total["LFSC"]


def test_lfsc_violation_share_decreases_over_time(cfg):
    """The LFSC/baseline violation ratio shrinks as LFSC learns (E8)."""
    results = _results(cfg)
    lfsc = violation_series(results["LFSC"])
    t_early = max(1, results["LFSC"].horizon // 10)
    for name in ("vUCB", "Random"):
        base = violation_series(results[name])
        early_ratio = lfsc[t_early - 1] / base[t_early - 1]
        final_ratio = lfsc[-1] / base[-1]
        assert final_ratio < early_ratio + 0.05

    print("\n[E8] early vs final violation ratios")
    for name in ("vUCB", "FML", "Random"):
        base = violation_series(results[name])
        print(
            f"  LFSC/{name}: early {lfsc[t_early-1]/base[t_early-1]:.2f}"
            f" -> final {lfsc[-1]/base[-1]:.2f}"
        )


def test_lfsc_per_slot_violation_rate_decreasing(cfg):
    results = _results(cfg)
    rate = per_slot_violation_rate(results["LFSC"], window=100)
    early = rate[: len(rate) // 4].mean()
    late = rate[-len(rate) // 4 :].mean()
    print(f"\n[E3] LFSC per-slot violation rate: early {early:.2f} -> late {late:.2f}")
    assert late < early


def test_violations_nonnegative_and_monotone(cfg):
    results = _results(cfg)
    for r in results.values():
        series = violation_series(r)
        assert (np.diff(series) >= -1e-9).all()
