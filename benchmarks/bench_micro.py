"""Micro-benchmarks of LFSC's per-slot hot paths.

These time the three inner kernels (Alg. 2 probabilities, DepRound, Alg. 4
greedy) at paper-scale sizes (K = 100 covered tasks, M = 30 SCNs), plus one
full simulation slot.  Useful for catching performance regressions; the
per-slot budget at paper scale is a few milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.depround import depround
from repro.core.greedy import greedy_select
from repro.core.probability import capped_probabilities
from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy

RNG = np.random.default_rng(0)


def test_capped_probabilities_k100(benchmark):
    w = RNG.random(100) * 10 + 0.01
    result = benchmark(capped_probabilities, w, 20, 0.05)
    assert result.p.sum() == pytest.approx(20.0, rel=1e-6)


def test_capped_probabilities_with_capping(benchmark):
    w = np.concatenate([np.full(5, 1e6), RNG.random(95) + 0.01])
    result = benchmark(capped_probabilities, w, 20, 0.05)
    assert result.capped.sum() >= 5


def test_depround_k100(benchmark):
    p = RNG.random(100)
    p = np.clip(p / p.sum() * 20.0, 0, 1)

    def run():
        return depround(p, RNG)

    mask = benchmark(run)
    assert mask.dtype == bool


def test_greedy_select_paper_scale(benchmark):
    M, n, c = 30, 1000, 20
    coverage = [np.sort(RNG.choice(n, 70, replace=False)) for _ in range(M)]
    weights = [RNG.random(70) for _ in range(M)]
    a = benchmark(greedy_select, coverage, weights, c, n)
    assert len(a) > 0


def test_lfsc_full_slot_small_scale(benchmark):
    cfg = ExperimentConfig.small(horizon=10)
    sim = build_simulation(cfg)
    policy = make_policy("LFSC", cfg, sim.truth)

    def one_run():
        return sim.run(policy, 10)

    res = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert res.horizon == 10
