"""A1 — ablations of LFSC's design choices (DESIGN.md §1 extensions).

Three studies:
- Lagrangian on/off: without the duals LFSC degenerates to constraint-blind
  Exp3.M + greedy, so its violations should rise toward vUCB levels.
- DepRound sampling vs paper-literal deterministic greedy edge weights.
- Hypercube granularity h_T ∈ {1, 2, 3, 5}: h=1 cannot distinguish contexts.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    ablation_adaptive_partition,
    ablation_assignment_mode,
    ablation_lagrangian,
    ablation_partition_granularity,
)

_CACHE: dict = {}


def test_ablation_lagrangian(benchmark, cfg):
    out = benchmark.pedantic(
        lambda: _CACHE.setdefault("lag", ablation_lagrangian(cfg, workers=0)),
        rounds=1,
        iterations=1,
    )
    print("\n[A1] Lagrangian ablation\n" + out.table())
    with_lag = out.results["LFSC"]
    without = out.results["LFSC-noLagrangian"]
    # The duals exist to curb violations.
    assert with_lag.total_violations < without.total_violations


def test_ablation_assignment_mode(benchmark, cfg):
    out = benchmark.pedantic(
        lambda: _CACHE.setdefault("mode", ablation_assignment_mode(cfg, workers=0)),
        rounds=1,
        iterations=1,
    )
    print("\n[A1] assignment-mode ablation\n" + out.table())
    # Both modes must be functional; DepRound keeps exploration sound, so its
    # reward should be at least comparable (within 20%).
    dep = out.results["LFSC-depround"].total_reward
    det = out.results["LFSC-deterministic"].total_reward
    assert dep > 0 and det > 0
    assert dep > 0.8 * det


def test_ablation_partition_granularity(benchmark, cfg):
    out = benchmark.pedantic(
        lambda: _CACHE.setdefault(
            "parts", ablation_partition_granularity(cfg, parts_values=(1, 2, 3), workers=0)
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[A1] hypercube granularity ablation\n" + out.table())
    # The context-blind partition (h=1) cannot beat the context-aware ones
    # on the reward/violation balance.
    from repro.metrics.ratio import performance_ratio

    ratios = {k: performance_ratio(r) for k, r in out.results.items()}
    print("  performance ratios:", {k: round(v, 3) for k, v in ratios.items()})
    assert max(ratios["LFSC-h2"], ratios["LFSC-h3"]) >= ratios["LFSC-h1"] * 0.95


def test_ablation_adaptive_partition(benchmark, cfg):
    out = benchmark.pedantic(
        lambda: _CACHE.setdefault(
            "adaptive", ablation_adaptive_partition(cfg, split_bases=(50.0,), workers=0)
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[A1] fixed vs adaptive partition\n" + out.table())
    fixed = out.results["LFSC-fixed"]
    for label, res in out.results.items():
        if label == "LFSC-fixed":
            continue
        # The adaptive variant must stay competitive with the tuned fixed
        # grid (it starts coarser, so small horizons favour the fixed one).
        assert res.total_reward > 0.75 * fixed.total_reward
