"""Scenario benchmark: slots/sec of every registered scenario family.

Runs each scenario in the registry (DESIGN.md §11) through ``repro.api.run``
with the standard LFSC policy and reports per-scenario throughput — how much
a scenario's environment machinery (trajectory mobility, blockage channels,
activation layers, feedback censoring) costs relative to the plain paper
workload.

Before timing anything the script asserts the correctness gate the scenario
subsystem promises: a short windowed run equals the per-slot run bit for bit
for every scenario (the full matrix lives in ``tests/scenarios/``; the bench
re-checks a prefix so a broken build cannot publish numbers).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py            # full
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke    # CI smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py  # pytest-benchmark

Results land in ``BENCH_scenarios.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import api, scenarios
from repro.obs.manifest import build_manifest

POLICY = "LFSC"


# -- correctness gate ---------------------------------------------------------


def check_window_equivalence(name: str, horizon: int = 16) -> None:
    windowed = api.run(scenario=name, policies=(POLICY,), horizon=horizon, window=8, workers=1)
    per_slot = api.run(scenario=name, policies=(POLICY,), horizon=horizon, window=0, workers=1)
    for field in ("reward", "accepted", "violation_qos"):
        if not np.array_equal(
            getattr(windowed[POLICY], field), getattr(per_slot[POLICY], field)
        ):
            raise AssertionError(
                f"scenario {name!r}: windowed run diverged from per-slot on {field!r}"
            )


# -- timed section ------------------------------------------------------------


def bench_scenario(name: str, horizon: int, repeats: int) -> dict:
    check_window_equivalence(name)
    info = scenarios.describe(name)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = api.run(scenario=name, policies=(POLICY,), horizon=horizon, workers=1)
        times.append(time.perf_counter() - t0)
    best = min(times)
    entry = {
        "hash": info["hash"],
        "tags": info["tags"],
        "horizon": horizon,
        "slots_per_sec": horizon / best,
        "wall_s_best": best,
        "total_reward": float(out[POLICY].total_reward),
    }
    summary = out[POLICY].summary()
    if "energy_per_decision" in summary:
        entry["energy_per_decision"] = summary["energy_per_decision"]
    return entry


def run_benchmark(horizon: int, repeats: int) -> dict:
    per_scenario = {}
    for name in scenarios.names():
        per_scenario[name] = bench_scenario(name, horizon, repeats)
    return {
        "schema": "bench-scenarios/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", policies=[POLICY]),
        "policy": POLICY,
        "horizon": horizon,
        "gates": {"windowed_equals_per_slot": True},
        "scenarios": per_scenario,
        "headline": {
            name: round(entry["slots_per_sec"], 1)
            for name, entry in per_scenario.items()
        },
    }


def print_report(report: dict) -> None:
    print(f"scenario registry — {POLICY}, horizon={report['horizon']} per scenario")
    width = max(len(n) for n in report["scenarios"])
    for name, entry in report["scenarios"].items():
        extra = (
            f"   energy/decision {entry['energy_per_decision']:.3f}"
            if "energy_per_decision" in entry
            else ""
        )
        print(
            f"  {name:<{width}} : {entry['slots_per_sec']:8.1f} slots/s   "
            f"hash {entry['hash'][:12]}{extra}"
        )
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots per scenario (default: REPRO_BENCH_HORIZON, else 200)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default 3)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: short horizon, single repeat, no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_scenarios.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        horizon, repeats = args.horizon or 30, 1
    else:
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else 200)
        repeats = args.repeats

    report = run_benchmark(horizon, repeats)
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")


# -- pytest-benchmark entry points (smoke coverage in CI) ---------------------


def test_scenario_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: bench_scenario("vehicular", horizon=24, repeats=1),
        rounds=1,
        iterations=1,
    )
    print(f"\n[scenarios] vehicular {result['slots_per_sec']:.1f} slots/s")
    assert result["slots_per_sec"] > 0


def test_sleep_mode_energy_reported(benchmark):
    result = benchmark.pedantic(
        lambda: bench_scenario("sleep_mode", horizon=24, repeats=1),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[scenarios] sleep_mode {result['slots_per_sec']:.1f} slots/s, "
        f"energy/decision {result['energy_per_decision']:.3f}"
    )
    assert result["energy_per_decision"] > 0


if __name__ == "__main__":
    main()
