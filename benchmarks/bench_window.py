"""End-to-end A/B benchmark of the windowed slot-streaming pipeline.

Runs the identical simulation twice per assignment mode — once with
``window=0`` (the per-slot driver) and once with the windowed driver
(``window=W``, default :data:`repro.env.simulator.DEFAULT_WINDOW`) — and
reports end-to-end per-slot wall-clock for both.  The windowed path is
bit-identical to the per-slot path by construction (the precompute consumes
the RNG streams in exactly the per-slot order; see
``tests/env/test_window.py``), and the script asserts that equivalence on a
short prefix before timing, so the comparison times the same trajectory.

Two scales run by default: the paper scale (M=30, c=20, K∈[35,100]) and a
4x instance (M=60, c=40, K∈[70,200]) showing how the amortization behaves
as the edge count grows.  A secondary section A/Bs the parallel result
transport (``shm`` vs ``pickle``) on a short replication sweep and checks
the per-seed results are bit-identical across transports.

Usage::

    PYTHONPATH=src python benchmarks/bench_window.py              # both scales
    PYTHONPATH=src python benchmarks/bench_window.py --smoke      # CI smoke
    PYTHONPATH=src python benchmarks/bench_window.py --require-speedup
    PYTHONPATH=src python -m pytest benchmarks/bench_window.py    # pytest-benchmark

Results land in ``BENCH_window.json`` (see ``--output``).  The headline is
the end-to-end speedup of windowed over per-slot at paper scale.
``--require-speedup`` turns the headline into a gate (exit non-zero below
the threshold); it is meant for multi-core CI runners — on a busy or
single-core host the interleaved timings are noisy and the transport
section degrades to measuring pool overhead, so treat numbers from such
hosts as indicative only.

Timing methodology: per-slot and windowed runs are interleaved
``--repeats`` times and the minimum per-arm wall-clock is compared (the
minimum is the least noise-contaminated estimate of the true cost; means
mix in scheduler preemption).

Scale knobs follow ``benchmarks/conftest.py``: ``REPRO_BENCH_SCALE``
(``paper``/``small``) and ``REPRO_BENCH_HORIZON``, overridable via CLI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import native
from repro.core.lfsc import LFSCPolicy
from repro.env.simulator import DEFAULT_WINDOW
from repro.experiments.runner import ExperimentConfig, build_simulation
from repro.obs.manifest import build_manifest

MODES = ("deterministic", "depround")
#: ``LFSCConfig``'s default assignment mode — the configuration the speedup
#: gate judges.  Deterministic mode has no DepRound walk, so the windowed
#: gains there are precompute amortization only (reported, not gated).
DEFAULT_MODE = "depround"
#: Window sizes checked for bit-equivalence before any timing.
EQUIV_WINDOWS = (1, 7, DEFAULT_WINDOW, 64)


def _paper4x(horizon: int) -> ExperimentConfig:
    """A 4x-edge-count instance (M and K doubled, constraints rescaled)."""
    return ExperimentConfig.paper(
        num_scns=60,
        capacity=40,
        alpha=30.0,
        beta=54.0,
        k_min=70,
        k_max=200,
        horizon=horizon,
    )


def _policy(cfg: ExperimentConfig, mode: str) -> LFSCPolicy:
    lfsc = cfg.lfsc_config().with_overrides(assignment_mode=mode, engine="batched")
    return LFSCPolicy(lfsc)


def check_equivalence(cfg: ExperimentConfig, mode: str, horizon: int = 25) -> None:
    """Assert every window size walks the identical trajectory (same seed)."""
    short = cfg.with_overrides(horizon=horizon)
    sim = build_simulation(short)
    baseline = sim.run(_policy(short, mode), horizon, window=0).reward
    for w in EQUIV_WINDOWS:
        sim = build_simulation(short)
        reward = sim.run(_policy(short, mode), horizon, window=w).reward
        if not np.array_equal(baseline, reward):
            raise AssertionError(
                f"window={w} diverged from per-slot in {mode} mode — "
                "benchmark would be invalid"
            )


def timed_run(cfg: ExperimentConfig, mode: str, window: int, horizon: int) -> float:
    """End-to-end wall-clock seconds of one simulation at this window."""
    sim = build_simulation(cfg)
    policy = _policy(cfg, mode)
    t0 = time.perf_counter()
    sim.run(policy, horizon, window=window)
    return time.perf_counter() - t0


def ab_windowed(
    cfg: ExperimentConfig, mode: str, horizon: int, window: int, repeats: int
) -> dict:
    """Interleaved per-slot vs windowed timings; min-of-repeats comparison."""
    per_slot: list[float] = []
    windowed: list[float] = []
    for _ in range(repeats):
        per_slot.append(timed_run(cfg, mode, 0, horizon))
        windowed.append(timed_run(cfg, mode, window, horizon))
    scale = 1e3 / horizon
    t0, tw = min(per_slot), min(windowed)
    return {
        "window": window,
        "repeats": repeats,
        "per_slot_ms_per_slot": t0 * scale,
        "windowed_ms_per_slot": tw * scale,
        "per_slot_ms_per_slot_median": sorted(per_slot)[len(per_slot) // 2] * scale,
        "windowed_ms_per_slot_median": sorted(windowed)[len(windowed) // 2] * scale,
        "e2e_speedup": t0 / tw,
    }


# -- transport A/B ------------------------------------------------------------


def ab_transport(cfg: ExperimentConfig, horizon: int, seeds: int = 3) -> dict:
    """Time a short replication sweep with shm vs pickle result transport.

    Uses an explicit 2-process pool so the parallel path is exercised even
    on a single-core host (where the timing measures pool overhead, not
    transport gains — see the module docstring).  Also asserts the per-seed
    results are bit-identical across transports.
    """
    from repro.experiments.replication import run_replications
    from repro.utils.parallel import default_workers
    from repro.utils.shm import shm_supported

    short = cfg.with_overrides(horizon=horizon)
    out: dict = {
        "seeds": seeds,
        "workers": 2,
        "host_cpus": default_workers(),
        "shm_supported": shm_supported(),
    }
    if not out["shm_supported"]:
        out["note"] = "shared memory unavailable: shm transport degrades to pickle"
    timings: dict[str, float] = {}
    rewards: dict[str, list[np.ndarray]] = {}
    for transport in ("shm", "pickle"):
        t0 = time.perf_counter()
        runs = run_replications(
            short, ("LFSC",), seeds=seeds, workers=2, transport=transport
        )
        timings[transport] = time.perf_counter() - t0
        rewards[transport] = [run.results["LFSC"].reward for run in runs]
    for a, b in zip(rewards["shm"], rewards["pickle"]):
        if not np.array_equal(a, b):
            raise AssertionError("shm and pickle transports returned different results")
    out["shm_s"] = timings["shm"]
    out["pickle_s"] = timings["pickle"]
    out["speedup"] = timings["pickle"] / timings["shm"]
    out["bit_identical"] = True
    return out


# -- report -------------------------------------------------------------------


def run_benchmark(
    scales: dict[str, tuple[ExperimentConfig, int]], window: int, repeats: int
) -> dict:
    first_cfg = next(iter(scales.values()))[0]
    report: dict = {
        "schema": "bench_window/v2",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", config=first_cfg, engine="batched"),
        "native_kernels": native.available(),
        "default_window": DEFAULT_WINDOW,
        "equivalence_windows": list(EQUIV_WINDOWS),
        "scales": {},
    }
    for scale_name, (cfg, horizon) in scales.items():
        entry: dict = {
            "config": {
                "num_scns": cfg.num_scns,
                "capacity": cfg.capacity,
                "coverage_range": [cfg.k_min, cfg.k_max],
                "horizon": horizon,
                "seed": cfg.seed,
            },
            "modes": {},
        }
        for mode in MODES:
            check_equivalence(cfg, mode)
            entry["modes"][mode] = ab_windowed(cfg, mode, horizon, window, repeats)
        report["scales"][scale_name] = entry
    headline_scale = "paper" if "paper" in report["scales"] else next(iter(report["scales"]))
    report["headline"] = {
        f"e2e_speedup_{mode}": report["scales"][headline_scale]["modes"][mode]["e2e_speedup"]
        for mode in MODES
    }
    report["headline"]["scale"] = headline_scale
    return report


def print_report(report: dict) -> None:
    native_note = "native kernels" if report["native_kernels"] else "pure python (no native kernels)"
    print(f"windowed pipeline A/B — window={report['default_window']}, {native_note}")
    for scale_name, entry in report["scales"].items():
        cfg = entry["config"]
        print(
            f"\n[{scale_name}] M={cfg['num_scns']} c={cfg['capacity']} "
            f"K∈{cfg['coverage_range']} horizon={cfg['horizon']}"
        )
        header = f"{'mode':<14} {'per-slot':>10} {'windowed':>10} {'speedup':>9}"
        print(header)
        print("-" * len(header))
        for mode, row in entry["modes"].items():
            print(
                f"{mode:<14} {row['per_slot_ms_per_slot']:>8.3f}ms "
                f"{row['windowed_ms_per_slot']:>8.3f}ms {row['e2e_speedup']:>8.2f}x"
            )
    if "transport" in report:
        tr = report["transport"]
        print(
            f"\ntransport A/B ({tr['seeds']} seeds, {tr['workers']} workers, "
            f"{tr['host_cpus']} host cpus): "
            f"shm {tr['shm_s']:.2f}s vs pickle {tr['pickle_s']:.2f}s "
            f"({tr['speedup']:.2f}x), bit-identical: {tr['bit_identical']}"
        )
        if tr["host_cpus"] < 2:
            print(
                "  note: single-core host — the pool runs serially interleaved; "
                "transport timing here measures overhead, not throughput"
            )
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        help="base problem size (default: REPRO_BENCH_SCALE or paper)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots to simulate (default: REPRO_BENCH_HORIZON, else 300 paper / 400 small)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"window size W to A/B against per-slot (default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved repeats per arm; minimum is compared (default 3)",
    )
    parser.add_argument(
        "--no-4x", action="store_true", help="skip the 4x-scale instance"
    )
    parser.add_argument(
        "--no-transport", action="store_true", help="skip the shm-vs-pickle section"
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="exit non-zero unless the default-mode (depround) e2e speedup "
        "meets --threshold (intended for multi-core CI runners)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="speedup gate for --require-speedup (default 1.5)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, no 4x, no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_window.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 60
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 300 if scale == "paper" else 400

    base = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    base = base.with_overrides(horizon=horizon)
    scales: dict[str, tuple[ExperimentConfig, int]] = {scale: (base, horizon)}
    if scale == "paper" and not args.no_4x and not args.smoke:
        h4 = max(horizon // 2, 50)
        scales["paper4x"] = (_paper4x(h4), h4)

    report = run_benchmark(scales, args.window, args.repeats)
    if not args.no_transport:
        report["transport"] = ab_transport(base, min(horizon, 100))
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_window.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if args.require_speedup:
        gated = report["headline"][f"e2e_speedup_{DEFAULT_MODE}"]
        if gated < args.threshold:
            print(
                f"FAIL: {DEFAULT_MODE} e2e speedup {gated:.2f}x below the "
                f"{args.threshold:.2f}x gate",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print(f"speedup gate met ({DEFAULT_MODE}): {gated:.2f}x >= {args.threshold:.2f}x")


# -- pytest entry points (equivalence + smoke coverage in CI) -----------------


def _smoke_cfg() -> tuple[ExperimentConfig, int]:
    horizon = int(os.environ.get("REPRO_BENCH_HORIZON", "60"))
    return ExperimentConfig.small(horizon=horizon), horizon


def test_windowed_equivalent_before_timing():
    cfg, _ = _smoke_cfg()
    for mode in MODES:
        check_equivalence(cfg, mode)


def test_transport_bit_identical():
    cfg, _ = _smoke_cfg()
    out = ab_transport(cfg, horizon=25, seeds=2)
    assert out["bit_identical"]


def test_windowed_small_scale(benchmark):
    cfg, horizon = _smoke_cfg()
    sim = build_simulation(cfg)
    policy = _policy(cfg, "depround")
    result = benchmark.pedantic(
        lambda: sim.run(policy, horizon, window=DEFAULT_WINDOW), rounds=3, iterations=1
    )
    assert result.reward.shape == (horizon,)


def test_per_slot_small_scale(benchmark):
    cfg, horizon = _smoke_cfg()
    sim = build_simulation(cfg)
    policy = _policy(cfg, "depround")
    result = benchmark.pedantic(
        lambda: sim.run(policy, horizon, window=0), rounds=3, iterations=1
    )
    assert result.reward.shape == (horizon,)


if __name__ == "__main__":
    main()
