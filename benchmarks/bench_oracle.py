"""A/B benchmark of the Oracle solver cache & warm-start layer (DESIGN.md §8).

The Oracle re-solves one LP (pre-pass + main) per slot, which makes it the
slowest leg of the evaluation suite: ``fig2a``, ``fig3`` (an α sweep whose
middle point *is* the base config), and ``ratio`` together run the identical
paper-scale Oracle workload seven times.  The
:class:`~repro.solvers.cache.SlotProblemCache` is content-addressed on the
assembled slot problem, so everything that repeats across those runs —
the α-independent achievable-completion pre-pass, and on exact repeats the
entire per-slot assignment — is solved once.

This benchmark times that **evaluation session** end-to-end: the Oracle legs
of fig2a + the five-point fig3 α sweep + ratio (seven paper-scale runs),
cold (``oracle_cache=False``) vs warm (the shared cache), and asserts the
per-slot trajectories of every run are bit-identical before reporting.  The
cache is keyed on problem content, never provenance, so "warm" is a pure
reordering of identical solver work — the headline gate is ≥2x.

Secondary sections report the single-run speedup (direct-HiGHS + edge-reuse
savings only, no cross-run sharing), the exact-repeat speedup (full
assignment replay), and warm-vs-cold equivalence for the non-LP Oracle
modes (``greedy``/``dual``).

Usage::

    PYTHONPATH=src python benchmarks/bench_oracle.py               # full A/B
    PYTHONPATH=src python benchmarks/bench_oracle.py --smoke       # CI smoke
    PYTHONPATH=src python benchmarks/bench_oracle.py --require-speedup
    PYTHONPATH=src python -m pytest benchmarks/bench_oracle.py     # equivalence

Results land in ``BENCH_oracle.json`` (see ``--output``).  Timing follows
``bench_window.py``: cold and warm arms are interleaved ``--repeats`` times
and the per-arm minima are compared; the warm arm resets the shared cache
before each repeat, so no repeat borrows state from a previous one.
``--require-speedup`` gates the session headline — meant for dedicated
hosts; CI smoke runs check equivalence only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.env.simulator import SimulationResult
from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.obs.manifest import build_manifest
from repro.solvers.cache import reset_shared_cache, shared_cache
from repro.solvers.highs import HAVE_DIRECT_HIGHS

#: The fig3 CLI's default α fractions of capacity (→ 13..17 at paper scale).
ALPHA_FRACTIONS = (0.65, 0.70, 0.75, 0.80, 0.85)
#: Oracle modes checked for warm-vs-cold bit-equivalence at smoke scale.
EQUIV_MODES = ("lp", "greedy", "dual")
#: Window sizes the equivalence check runs under (per-slot and windowed).
EQUIV_WINDOWS = (1, 32)


def session_configs(base: ExperimentConfig) -> list[ExperimentConfig]:
    """The Oracle legs of one evaluation session: fig2a + fig3 sweep + ratio."""
    alphas = [round(f * base.capacity, 3) for f in ALPHA_FRACTIONS]
    return [base] + [base.with_overrides(alpha=a) for a in alphas] + [base]


def run_oracle(cfg: ExperimentConfig) -> SimulationResult:
    """One Oracle-only simulation under this config's cache setting."""
    sim = build_simulation(cfg)
    policy = make_policy("Oracle", cfg, sim.truth)
    return sim.run(policy, cfg.horizon, window=cfg.window)


def _same_trajectory(a: SimulationResult, b: SimulationResult) -> bool:
    return bool(
        np.array_equal(a.reward, b.reward) and np.array_equal(a.accepted, b.accepted)
    )


def check_equivalence(cfg: ExperimentConfig, horizon: int = 40) -> None:
    """Assert warm==cold bit-identity across modes and window sizes."""
    short = cfg.with_overrides(horizon=horizon)
    for mode in EQUIV_MODES:
        cold = run_oracle(short.with_overrides(oracle_mode=mode, oracle_cache=False))
        for window in EQUIV_WINDOWS:
            reset_shared_cache()
            warm = run_oracle(
                short.with_overrides(oracle_mode=mode, oracle_cache=True, window=window)
            )
            if not _same_trajectory(cold, warm):
                raise AssertionError(
                    f"cached Oracle diverged from cold (mode={mode}, window={window})"
                    " — benchmark would be invalid"
                )
    reset_shared_cache()


def _timed_session(configs: list[ExperimentConfig], *, cached: bool) -> tuple[float, list]:
    total = 0.0
    results = []
    for cfg in configs:
        run_cfg = cfg.with_overrides(oracle_cache=cached)
        t0 = time.perf_counter()
        results.append(run_oracle(run_cfg))
        total += time.perf_counter() - t0
    return total, results


def ab_session(base: ExperimentConfig, repeats: int) -> dict:
    """Interleaved cold-vs-warm timing of the full evaluation session."""
    configs = session_configs(base)
    cold_t: list[float] = []
    warm_t: list[float] = []
    cold_runs = warm_runs = None
    stats: dict = {}
    for _ in range(repeats):
        t, cold_runs = _timed_session(configs, cached=False)
        cold_t.append(t)
        reset_shared_cache()
        t, warm_runs = _timed_session(configs, cached=True)
        warm_t.append(t)
        stats = shared_cache().stats()
    for c, w in zip(cold_runs, warm_runs):
        if not _same_trajectory(c, w):
            raise AssertionError("warm session diverged from cold — invalid benchmark")
    t0, tw = min(cold_t), min(warm_t)
    return {
        "runs": len(configs),
        "repeats": repeats,
        "alphas": [cfg.alpha for cfg in configs],
        "cold_s": t0,
        "warm_s": tw,
        "cold_s_median": sorted(cold_t)[len(cold_t) // 2],
        "warm_s_median": sorted(warm_t)[len(warm_t) // 2],
        "speedup": t0 / tw,
        "bit_identical": True,
        "cache_stats": stats,
    }


def ab_single(base: ExperimentConfig, repeats: int) -> dict:
    """Cold vs warm-from-empty single run (no cross-run sharing)."""
    cold_t: list[float] = []
    warm_t: list[float] = []
    for _ in range(repeats):
        t, _ = _timed_session([base], cached=False)
        cold_t.append(t)
        reset_shared_cache()
        t, _ = _timed_session([base], cached=True)
        warm_t.append(t)
    t0, tw = min(cold_t), min(warm_t)
    return {"cold_s": t0, "warm_s": tw, "speedup": t0 / tw, "repeats": repeats}


def ab_repeat(base: ExperimentConfig) -> dict:
    """Exact-repeat run against a populated cache (full assignment replay)."""
    reset_shared_cache()
    first, _ = _timed_session([base], cached=True)
    replay, _ = _timed_session([base], cached=True)
    reset_shared_cache()
    return {"first_s": first, "replay_s": replay, "speedup": first / max(replay, 1e-9)}


def run_benchmark(base: ExperimentConfig, repeats: int, *, equiv_horizon: int) -> dict:
    check_equivalence(base, horizon=equiv_horizon)
    report: dict = {
        "schema": "bench_oracle/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "manifest": build_manifest(kind="bench", config=base),
        "direct_highs": HAVE_DIRECT_HIGHS,
        "config": {
            "num_scns": base.num_scns,
            "capacity": base.capacity,
            "alpha": base.alpha,
            "beta": base.beta,
            "coverage_range": [base.k_min, base.k_max],
            "horizon": base.horizon,
            "seed": base.seed,
        },
        "equivalence": {"modes": list(EQUIV_MODES), "windows": list(EQUIV_WINDOWS)},
        "session": ab_session(base, repeats),
        "single_run": ab_single(base, repeats),
        "repeat_run": ab_repeat(base),
    }
    report["headline"] = {
        "session_speedup": report["session"]["speedup"],
        "single_run_speedup": report["single_run"]["speedup"],
        "repeat_run_speedup": report["repeat_run"]["speedup"],
    }
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    direct = "direct HiGHS" if report["direct_highs"] else "linprog fallback (no _highspy)"
    print(
        f"oracle cache A/B — M={cfg['num_scns']} c={cfg['capacity']} "
        f"K∈{cfg['coverage_range']} horizon={cfg['horizon']}, {direct}"
    )
    ses = report["session"]
    print(
        f"\nevaluation session ({ses['runs']} Oracle runs: fig2a + fig3 sweep + ratio):"
        f"\n  cold {ses['cold_s']:.2f}s  warm {ses['warm_s']:.2f}s  "
        f"speedup {ses['speedup']:.2f}x  bit-identical: {ses['bit_identical']}"
    )
    single = report["single_run"]
    print(
        f"single run: cold {single['cold_s']:.2f}s  warm {single['warm_s']:.2f}s  "
        f"speedup {single['speedup']:.2f}x"
    )
    rep = report["repeat_run"]
    print(
        f"exact repeat: first {rep['first_s']:.2f}s  replay {rep['replay_s']:.3f}s  "
        f"speedup {rep['speedup']:.1f}x"
    )
    stats = ses.get("cache_stats", {})
    if stats:
        parts = ", ".join(
            f"{name} {entry['hits']}/{entry['hits'] + entry['misses']}"
            for name, entry in stats.items()
        )
        print(f"cache hits: {parts}")
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        help="base problem size (default: REPRO_BENCH_SCALE or paper)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="slots per run (default: REPRO_BENCH_HORIZON, else 60 paper / 200 small)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="interleaved repeats per arm; minimum is compared (default 2)",
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="exit non-zero unless the session speedup meets --threshold "
        "(intended for dedicated hosts, not CI smoke)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="speedup gate for --require-speedup (default 2.0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small scale, short horizon, equivalence-gated, "
        "no JSON unless --output given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo-root BENCH_oracle.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, horizon = "small", args.horizon or 60
    else:
        scale = args.scale
        env_horizon = os.environ.get("REPRO_BENCH_HORIZON")
        horizon = args.horizon or (int(env_horizon) if env_horizon else None)
        if horizon is None:
            horizon = 60 if scale == "paper" else 200

    base = ExperimentConfig.paper() if scale == "paper" else ExperimentConfig.small()
    base = base.with_overrides(horizon=horizon)

    report = run_benchmark(
        base, args.repeats, equiv_horizon=min(horizon, 40 if scale == "paper" else 60)
    )
    print_report(report)

    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parents[1] / "BENCH_oracle.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if args.require_speedup:
        gated = report["headline"]["session_speedup"]
        if gated < args.threshold:
            print(
                f"FAIL: session speedup {gated:.2f}x below the "
                f"{args.threshold:.2f}x gate",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print(f"speedup gate met: {gated:.2f}x >= {args.threshold:.2f}x")


# -- pytest entry points (equivalence coverage in CI) -------------------------


def _smoke_cfg() -> ExperimentConfig:
    horizon = int(os.environ.get("REPRO_BENCH_HORIZON", "60"))
    return ExperimentConfig.small(horizon=horizon)


def test_warm_cold_equivalence():
    check_equivalence(_smoke_cfg())


def test_session_bit_identical_smoke():
    out = ab_session(_smoke_cfg().with_overrides(horizon=30), repeats=1)
    assert out["bit_identical"]
    assert out["runs"] == 7


def test_repeat_run_replays():
    out = ab_repeat(_smoke_cfg().with_overrides(horizon=30))
    assert out["replay_s"] >= 0.0


if __name__ == "__main__":
    main()
