"""Statistical robustness: the paper's orderings across independent seeds.

Replicates the E1 comparison over several seeds and asserts that the key
orderings (LFSC < vUCB violations, LFSC reward ≈ Oracle, Random worst) hold
with a margin on the aggregated means — i.e. the reproduction's conclusions
are not one lucky seed.
"""

from __future__ import annotations

from repro.experiments.replication import replicate, replication_rows
from repro.metrics.summary import format_table

_CACHE: dict = {}

POLICIES = ("Oracle", "LFSC", "vUCB", "Random")


def _agg(cfg):
    if "agg" not in _CACHE:
        small = cfg.with_overrides(horizon=max(300, cfg.horizon // 4))
        _CACHE["agg"] = replicate(small, POLICIES, seeds=3, workers=0)
    return _CACHE["agg"]


def test_replicated_orderings(benchmark, cfg):
    agg = benchmark.pedantic(lambda: _agg(cfg), rounds=1, iterations=1)
    print("\n[replication] mean ± 95% CI over 3 seeds\n")
    print(format_table(replication_rows(agg), precision=1))

    reward = {p: agg[p]["total_reward"].mean for p in POLICIES}
    viol = {p: agg[p]["total_violations"].mean for p in POLICIES}
    assert reward["LFSC"] > 0.75 * reward["Oracle"]
    assert viol["LFSC"] < viol["vUCB"]
    assert viol["LFSC"] < viol["Random"]
    assert reward["Random"] == min(reward.values())


def test_replication_variance_reported(cfg):
    agg = _agg(cfg)
    for policy in POLICIES:
        s = agg[policy]["total_reward"]
        assert s.n == 3
        assert s.ci_high >= s.ci_low
