"""Dependency-free terminal charts for result series.

Matplotlib is deliberately not a dependency of this reproduction; the
figures' *data* come from :mod:`repro.experiments.figures`, and these
helpers render quick looks directly in the terminal — enough to eyeball the
Fig. 2 shapes (who is above whom, where curves bend).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "ascii_plot"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline of ``values``, resampled to ``width``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Block-mean resample to the target width.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * arr.size
    levels = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[k] for k in levels)


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 16,
    title: str = "",
) -> str:
    """Multi-series ASCII line chart.

    Each series gets a marker letter (a, b, c, ...); overlapping points show
    the later series' marker.  Y-axis is shared and annotated with min/max.

    Parameters
    ----------
    series:
        label -> 1-D values.  Series of different lengths share the x-axis
        by fraction of their own length.
    """
    labeled = [(label, np.asarray(list(v), dtype=float)) for label, v in series.items()]
    labeled = [(l, v) for l, v in labeled if v.size > 0]
    if not labeled:
        return "(no data)"
    lo = min(float(v.min()) for _, v in labeled)
    hi = max(float(v.max()) for _, v in labeled)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    for k, (_, values) in enumerate(labeled):
        marker = markers[k % len(markers)]
        xs = np.linspace(0, values.size - 1, width).astype(int)
        for col, xi in enumerate(xs):
            frac = (values[xi] - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:12.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{lo:12.2f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{markers[k % len(markers)]}={label}" for k, (label, _) in enumerate(labeled)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)
