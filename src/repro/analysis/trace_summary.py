"""Summarize a slot-level JSONL trace (``repro trace <file>``).

Turns a trace written by :class:`repro.obs.trace.TraceRecorder` into the
aggregate view an operator wants first: how many slots were recorded, where
the wall-time went per span, how far realized compound reward tracked its
expectation, assignment occupancy, and how the Lagrange multipliers moved.
Works on any record set satisfying ``repro.obs.trace.TRACE_SCHEMA`` —
including partial traces from a crashed run, which is precisely when the
summary matters most.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.trace import iter_trace

__all__ = ["format_trace_summary", "summarize_trace", "summarize_trace_file"]


def summarize_trace(records: Iterable[Mapping]) -> dict:
    """Aggregate statistics over trace records (streaming, O(1) memory)."""
    n = 0
    t_min = t_max = None
    policies: set[str] = set()
    reward_sum = 0.0
    expected_sum = 0.0
    expected_n = 0
    assigned_sum = 0
    viol_qos_sum = 0.0
    viol_res_sum = 0.0
    span_totals: dict[str, float] = {}
    span_counts: dict[str, int] = {}
    mult_qos_last: list[float] | None = None
    mult_res_last: list[float] | None = None

    for rec in records:
        n += 1
        t = rec["t"]
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
        policies.add(rec["policy"])
        reward_sum += rec["reward"]
        if rec.get("expected_reward") is not None:
            expected_sum += rec["expected_reward"]
            expected_n += 1
        assigned_sum += rec["assigned"]
        viol_qos_sum += rec["violation_qos"]
        viol_res_sum += rec["violation_resource"]
        for name, seconds in rec.get("spans", {}).items():
            span_totals[name] = span_totals.get(name, 0.0) + seconds
            span_counts[name] = span_counts.get(name, 0) + 1
        if rec.get("multipliers_qos") is not None:
            mult_qos_last = rec["multipliers_qos"]
        if rec.get("multipliers_resource") is not None:
            mult_res_last = rec["multipliers_resource"]

    spans = {
        name: {
            "total_s": total,
            "mean_us": 1e6 * total / span_counts[name],
            "count": span_counts[name],
        }
        for name, total in span_totals.items()
    }
    return {
        "records": n,
        "t_range": [t_min, t_max] if n else None,
        "policies": sorted(policies),
        "reward_sum": reward_sum,
        "expected_reward_sum": expected_sum if expected_n else None,
        "reward_vs_expected_gap": (reward_sum - expected_sum) if expected_n else None,
        "mean_assigned": assigned_sum / n if n else 0.0,
        "violation_qos_sum": viol_qos_sum,
        "violation_resource_sum": viol_res_sum,
        "spans": spans,
        "multipliers_qos_last": mult_qos_last,
        "multipliers_resource_last": mult_res_last,
    }


def summarize_trace_file(path: str | Path) -> dict:
    """Summarize a JSONL trace file without loading it whole into memory."""
    return summarize_trace(iter_trace(path))


def format_trace_summary(summary: Mapping) -> str:
    """Render a summary dict as the terminal report ``repro trace`` prints."""
    lines = []
    if not summary["records"]:
        return "empty trace (0 records)"
    lo, hi = summary["t_range"]
    lines.append(
        f"trace: {summary['records']} records over slots [{lo}, {hi}] "
        f"policies={','.join(summary['policies'])}"
    )
    lines.append(
        f"reward: realized {summary['reward_sum']:.2f}"
        + (
            f"  expected {summary['expected_reward_sum']:.2f}"
            f"  gap {summary['reward_vs_expected_gap']:+.2f}"
            if summary["expected_reward_sum"] is not None
            else "  (no expected series)"
        )
    )
    lines.append(
        f"violations: qos {summary['violation_qos_sum']:.2f}  "
        f"resource {summary['violation_resource_sum']:.2f}  "
        f"mean assigned/slot {summary['mean_assigned']:.1f}"
    )
    if summary["multipliers_qos_last"] is not None:
        mq = summary["multipliers_qos_last"]
        mr = summary["multipliers_resource_last"] or []
        lines.append(
            f"multipliers (final slot): qos mean {sum(mq) / len(mq):.4f}  "
            + (f"resource mean {sum(mr) / len(mr):.4f}" if mr else "")
        )
    if summary["spans"]:
        lines.append(f"{'span':<22} {'total':>10} {'mean':>10} {'count':>8}")
        for name in sorted(
            summary["spans"], key=lambda k: summary["spans"][k]["total_s"], reverse=True
        ):
            s = summary["spans"][name]
            lines.append(
                f"{name:<22} {s['total_s']:>9.3f}s {s['mean_us']:>8.1f}µs {s['count']:>8d}"
            )
    return "\n".join(lines)
