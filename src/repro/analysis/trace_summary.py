"""Summarize and diff slot-level JSONL traces (``repro trace``).

Turns a trace written by :class:`repro.obs.trace.TraceRecorder` into the
aggregate view an operator wants first: how many slots were recorded, where
the wall-time went per span, how far realized compound reward tracked its
expectation, assignment occupancy, and how the Lagrange multipliers moved.
Works on any record set satisfying ``repro.obs.trace.TRACE_SCHEMA`` —
including partial traces from a crashed run, which is precisely when the
summary matters most.

``repro trace --diff A B`` (:func:`diff_traces` / :func:`format_trace_diff`)
compares two traces slot by slot — the tool for hunting down where two runs
that should be bit-identical (different window sizes, engines, worker
counts, transports) first part ways.  Records are aligned on ``t``;
non-timing fields are compared exactly (span timings are wall-clock noise
and never compared), and the report leads with the first divergent slot and
its field-level deltas.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.trace import iter_trace

__all__ = [
    "diff_trace_files",
    "diff_traces",
    "format_trace_diff",
    "format_trace_summary",
    "summarize_trace",
    "summarize_trace_file",
]

#: Trace fields compared by :func:`diff_traces` — every schema field except
#: ``t`` (the alignment key) and ``spans`` (nondeterministic wall-clock).
DIFF_FIELDS = (
    "policy",
    "assigned",
    "per_scn_assigned",
    "reward",
    "expected_reward",
    "violation_qos",
    "violation_resource",
    "multipliers_qos",
    "multipliers_resource",
)


def summarize_trace(records: Iterable[Mapping]) -> dict:
    """Aggregate statistics over trace records (streaming, O(1) memory)."""
    n = 0
    t_min = t_max = None
    policies: set[str] = set()
    reward_sum = 0.0
    expected_sum = 0.0
    expected_n = 0
    assigned_sum = 0
    viol_qos_sum = 0.0
    viol_res_sum = 0.0
    span_totals: dict[str, float] = {}
    span_counts: dict[str, int] = {}
    mult_qos_last: list[float] | None = None
    mult_res_last: list[float] | None = None

    for rec in records:
        n += 1
        t = rec["t"]
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
        policies.add(rec["policy"])
        reward_sum += rec["reward"]
        if rec.get("expected_reward") is not None:
            expected_sum += rec["expected_reward"]
            expected_n += 1
        assigned_sum += rec["assigned"]
        viol_qos_sum += rec["violation_qos"]
        viol_res_sum += rec["violation_resource"]
        for name, seconds in rec.get("spans", {}).items():
            span_totals[name] = span_totals.get(name, 0.0) + seconds
            span_counts[name] = span_counts.get(name, 0) + 1
        if rec.get("multipliers_qos") is not None:
            mult_qos_last = rec["multipliers_qos"]
        if rec.get("multipliers_resource") is not None:
            mult_res_last = rec["multipliers_resource"]

    spans = {
        name: {
            "total_s": total,
            "mean_us": 1e6 * total / span_counts[name],
            "count": span_counts[name],
        }
        for name, total in span_totals.items()
    }
    return {
        "records": n,
        "t_range": [t_min, t_max] if n else None,
        "policies": sorted(policies),
        "reward_sum": reward_sum,
        "expected_reward_sum": expected_sum if expected_n else None,
        "reward_vs_expected_gap": (reward_sum - expected_sum) if expected_n else None,
        "mean_assigned": assigned_sum / n if n else 0.0,
        "violation_qos_sum": viol_qos_sum,
        "violation_resource_sum": viol_res_sum,
        "spans": spans,
        "multipliers_qos_last": mult_qos_last,
        "multipliers_resource_last": mult_res_last,
    }


def summarize_trace_file(path: str | Path) -> dict:
    """Summarize a JSONL trace file without loading it whole into memory."""
    return summarize_trace(iter_trace(path))


def _values_equal(a, b) -> bool:
    """Exact equality with NaN == NaN (bit-identical trajectories may
    legitimately carry NaN, e.g. an unrecorded expected reward)."""
    if isinstance(a, float) and isinstance(b, float) and a != a and b != b:
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    return a == b


def diff_traces(a_records: Iterable[Mapping], b_records: Iterable[Mapping]) -> dict:
    """Compare two traces slot by slot (aligned on ``t``).

    Returns a JSON-friendly report: slot counts, slots present in only one
    trace, the first divergent slot with its field deltas, and per-field
    counts of differing slots.  ``identical`` is True only when both traces
    cover the same slots and every compared field matches exactly
    (:data:`DIFF_FIELDS`; span timings are never compared).
    """
    a_by_t = {rec["t"]: rec for rec in a_records}
    b_by_t = {rec["t"]: rec for rec in b_records}
    common = sorted(a_by_t.keys() & b_by_t.keys())
    only_a = sorted(a_by_t.keys() - b_by_t.keys())
    only_b = sorted(b_by_t.keys() - a_by_t.keys())

    field_diff_slots: dict[str, int] = {}
    first_divergent_t: int | None = None
    first_deltas: dict[str, dict] | None = None
    for t in common:
        ra, rb = a_by_t[t], b_by_t[t]
        deltas: dict[str, dict] = {}
        for field in DIFF_FIELDS:
            va, vb = ra.get(field), rb.get(field)
            if _values_equal(va, vb):
                continue
            field_diff_slots[field] = field_diff_slots.get(field, 0) + 1
            entry: dict = {"a": va, "b": vb}
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                entry["delta"] = vb - va
            deltas[field] = entry
        if deltas and first_divergent_t is None:
            first_divergent_t = t
            first_deltas = deltas

    return {
        "slots_a": len(a_by_t),
        "slots_b": len(b_by_t),
        "slots_common": len(common),
        "only_in_a": only_a,
        "only_in_b": only_b,
        "first_divergent_t": first_divergent_t,
        "first_divergence": first_deltas,
        "field_diff_slots": field_diff_slots,
        "identical": not (only_a or only_b or field_diff_slots),
    }


def diff_trace_files(path_a: str | Path, path_b: str | Path) -> dict:
    """Diff two JSONL trace files (see :func:`diff_traces`)."""
    return diff_traces(iter_trace(path_a), iter_trace(path_b))


def _short(value, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def format_trace_diff(diff: Mapping, name_a: str = "A", name_b: str = "B") -> str:
    """Render a :func:`diff_traces` report as the terminal output."""
    lines = [
        f"trace diff: {name_a} ({diff['slots_a']} slots) vs "
        f"{name_b} ({diff['slots_b']} slots), {diff['slots_common']} common"
    ]
    for label, slots in (
        (f"only in {name_a}", diff["only_in_a"]),
        (f"only in {name_b}", diff["only_in_b"]),
    ):
        if slots:
            head = ", ".join(str(t) for t in slots[:8])
            more = f", ... (+{len(slots) - 8})" if len(slots) > 8 else ""
            lines.append(f"{label}: {len(slots)} slots [{head}{more}]")
    if diff["identical"]:
        lines.append("traces are identical on every compared field")
        return "\n".join(lines)
    if diff["first_divergent_t"] is not None:
        lines.append(f"first divergent slot: t={diff['first_divergent_t']}")
        for field, entry in diff["first_divergence"].items():
            delta = f"  (delta {entry['delta']:+g})" if "delta" in entry else ""
            lines.append(
                f"  {field}: {_short(entry['a'])} -> {_short(entry['b'])}{delta}"
            )
    if diff["field_diff_slots"]:
        lines.append(f"{'field':<22} {'differing slots':>16}")
        for field, count in sorted(
            diff["field_diff_slots"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"{field:<22} {count:>16d}")
    return "\n".join(lines)


def format_trace_summary(summary: Mapping) -> str:
    """Render a summary dict as the terminal report ``repro trace`` prints."""
    lines = []
    if not summary["records"]:
        return "empty trace (0 records)"
    lo, hi = summary["t_range"]
    lines.append(
        f"trace: {summary['records']} records over slots [{lo}, {hi}] "
        f"policies={','.join(summary['policies'])}"
    )
    lines.append(
        f"reward: realized {summary['reward_sum']:.2f}"
        + (
            f"  expected {summary['expected_reward_sum']:.2f}"
            f"  gap {summary['reward_vs_expected_gap']:+.2f}"
            if summary["expected_reward_sum"] is not None
            else "  (no expected series)"
        )
    )
    lines.append(
        f"violations: qos {summary['violation_qos_sum']:.2f}  "
        f"resource {summary['violation_resource_sum']:.2f}  "
        f"mean assigned/slot {summary['mean_assigned']:.1f}"
    )
    if summary["multipliers_qos_last"] is not None:
        mq = summary["multipliers_qos_last"]
        mr = summary["multipliers_resource_last"] or []
        lines.append(
            f"multipliers (final slot): qos mean {sum(mq) / len(mq):.4f}  "
            + (f"resource mean {sum(mr) / len(mr):.4f}" if mr else "")
        )
    if summary["spans"]:
        lines.append(f"{'span':<22} {'total':>10} {'mean':>10} {'count':>8}")
        for name in sorted(
            summary["spans"], key=lambda k: summary["spans"][k]["total_s"], reverse=True
        ):
            s = summary["spans"][name]
            lines.append(
                f"{name:<22} {s['total_s']:>9.3f}s {s['mean_us']:>8.1f}µs {s['count']:>8d}"
            )
    return "\n".join(lines)
