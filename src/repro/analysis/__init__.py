"""Run diagnostics and terminal-friendly visualization.

- :mod:`repro.analysis.convergence` — weight-concentration and multiplier
  diagnostics for LFSC runs (has the learner settled? on what?);
- :mod:`repro.analysis.ascii_plot` — dependency-free line/sparkline charts
  so examples and benches can *show* the Fig. 2 curves in a terminal;
- :mod:`repro.analysis.trace_summary` — aggregate view of a slot-level
  JSONL trace recorded by :mod:`repro.obs` (``repro trace <file>``).
"""

from repro.analysis.ascii_plot import ascii_plot, sparkline
from repro.analysis.convergence import (
    multiplier_summary,
    weight_concentration,
    weight_entropy,
)
from repro.analysis.trace_summary import (
    format_trace_summary,
    summarize_trace,
    summarize_trace_file,
)

__all__ = [
    "ascii_plot",
    "sparkline",
    "multiplier_summary",
    "weight_concentration",
    "weight_entropy",
    "format_trace_summary",
    "summarize_trace",
    "summarize_trace_file",
]
