"""Convergence diagnostics for LFSC runs.

LFSC has converged when (i) each SCN's hypercube weights concentrate on a
small stable set and (ii) the Lagrange multipliers settle near their
equilibria.  These helpers quantify both from a finished policy object.
"""

from __future__ import annotations

import numpy as np

from repro.core.lfsc import LFSCPolicy
from repro.utils.validation import require

__all__ = ["weight_entropy", "weight_concentration", "multiplier_summary"]


def weight_entropy(policy: LFSCPolicy, *, normalized: bool = True) -> np.ndarray:
    """Shannon entropy of each SCN's weight distribution over cubes.

    Uniform weights give entropy ln(F) (or 1.0 when ``normalized``); a fully
    converged SCN that always prefers one cube approaches 0.
    """
    shares = policy.weights_snapshot()
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(shares > 0, shares * np.log(shares), 0.0)
    entropy = -terms.sum(axis=1)
    if normalized:
        entropy = entropy / np.log(shares.shape[1])
    return entropy


def weight_concentration(policy: LFSCPolicy, *, top_k: int = 1) -> np.ndarray:
    """Per-SCN probability mass on its ``top_k`` heaviest cubes."""
    require(top_k >= 1, f"top_k must be >= 1, got {top_k}")
    shares = policy.weights_snapshot()
    k = min(top_k, shares.shape[1])
    top = np.sort(shares, axis=1)[:, -k:]
    return top.sum(axis=1)


def multiplier_summary(policy: LFSCPolicy, *, tail_fraction: float = 0.25) -> dict[str, float]:
    """Late-run statistics of the dual variables.

    Reports the tail means and the tail drift (late mean minus the mean of
    the preceding window) of λ₁ and λ₂ averaged over SCNs; drift near zero
    indicates the duals have settled.
    """
    require(0.0 < tail_fraction <= 0.5, "tail_fraction must be in (0, 0.5]")
    hist_q = policy.multiplier_history_qos
    hist_r = policy.multiplier_history_resource
    if hist_q is None or policy.t == 0:
        raise RuntimeError("policy has no recorded multiplier history")
    T = policy.t
    tail = max(1, int(T * tail_fraction))
    q_tail = hist_q[T - tail : T].mean()
    r_tail = hist_r[T - tail : T].mean()
    prev_lo = max(0, T - 2 * tail)
    q_prev = hist_q[prev_lo : T - tail].mean() if T - tail > prev_lo else q_tail
    r_prev = hist_r[prev_lo : T - tail].mean() if T - tail > prev_lo else r_tail
    return {
        "lambda_qos_tail_mean": float(q_tail),
        "lambda_resource_tail_mean": float(r_tail),
        "lambda_qos_drift": float(q_tail - q_prev),
        "lambda_resource_drift": float(r_tail - r_prev),
    }
