"""SCN sleep-mode: combinatorial top-m activation over the base policy.

Following the sleep-mode load-balancing line of work (see PAPERS.md,
arXiv 2602.04808), each slot only ``active_scns`` of the M SCNs are powered
on; the rest sleep and accept no tasks.  The activation layer is a CUCB-style
combinatorial bandit over SCN indices: each SCN's activation index is its
empirical per-slot reward plus an exploration bonus, the top-m are woken,
and the wrapped policy (LFSC or a baseline) then solves the offloading
problem *inside* the active set — it simply sees a slot whose sleeping SCNs
have empty coverage.

The wrapper is deterministic (no RNG draws — ties break by SCN index), so
the frozen stream contract is untouched, and it hands the base policy a
*plain* :class:`~repro.env.workload.SlotWorkload` (windowed ``edges`` /
``truth_cells`` extras stripped): the base policy's bit-identical fallback
paths make windowed and per-slot sleep-mode trajectories trivially equal.

Energy accounting: every slot costs ``active·active_power +
(M−active)·sleep_power``; the per-slot series is exported through
``result_extras()`` into ``SimulationResult.extras["energy"]`` and summarized
by :mod:`repro.metrics.energy` as energy-per-decision.
"""

from __future__ import annotations

import numpy as np

from repro.env.workload import SlotWorkload
from repro.scenarios.wrappers import PolicyWrapper

__all__ = ["SleepModePolicy"]

_EMPTY = np.empty(0, dtype=np.int64)


class SleepModePolicy(PolicyWrapper):
    """Top-m SCN activation layer with per-slot energy accounting.

    Parameters
    ----------
    base:
        The offloading policy deciding assignments within the active set.
    active_scns:
        m — how many SCNs are powered on per slot (clamped to M at reset).
    explore:
        CUCB exploration weight: index = mean + sqrt(explore·ln t / plays).
    active_power / sleep_power:
        Per-slot energy cost of an awake / sleeping SCN (arbitrary units).
    """

    def __init__(
        self,
        base,
        *,
        active_scns: int,
        explore: float = 1.5,
        active_power: float = 1.0,
        sleep_power: float = 0.1,
    ) -> None:
        super().__init__(base)
        if active_scns < 1:
            raise ValueError(f"active_scns must be >= 1, got {active_scns}")
        self.active_scns = int(active_scns)
        self.explore = float(explore)
        self.active_power = float(active_power)
        self.sleep_power = float(sleep_power)
        self._plays = np.empty(0)
        self._reward_sum = np.empty(0)
        self._energy = np.empty(0)
        self._active_mask: np.ndarray | None = None
        self._censored: SlotWorkload | None = None

    def reset(self, network, horizon, rng) -> None:
        super().reset(network, horizon, rng)
        M = network.num_scns
        self._m = min(self.active_scns, M)
        self._plays = np.zeros(M)
        self._reward_sum = np.zeros(M)
        self._energy = np.zeros(int(horizon))
        self._active_mask = None
        self._censored = None

    def _activation(self, M: int) -> np.ndarray:
        """Boolean active mask: CUCB top-m, unplayed SCNs first, ties by index."""
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = self._reward_sum / self._plays
            bonus = np.sqrt(self.explore * np.log(max(self.base.t + 1, 2)) / self._plays)
        index = np.where(self._plays > 0, mean + bonus, np.inf)
        # Stable argsort on the negated index: ties (and the +inf block of
        # never-played SCNs) resolve to the lowest SCN id — deterministic,
        # no RNG consumed.
        order = np.argsort(-index, kind="stable")
        mask = np.zeros(M, dtype=bool)
        mask[order[: self._m]] = True
        return mask

    def select(self, slot):
        M = slot.num_scns
        mask = self._activation(M)
        censored = SlotWorkload(
            t=slot.t,
            tasks=slot.tasks,
            coverage=[
                np.asarray(cov, dtype=np.int64) if mask[m] else _EMPTY
                for m, cov in enumerate(slot.coverage)
            ],
        )
        self._active_mask = mask
        self._censored = censored
        t = self.base.t
        if t < self._energy.shape[0]:
            active = int(mask.sum())
            self._energy[t] = active * self.active_power + (M - active) * self.sleep_power
        return self.base.select(censored)

    def update(self, slot, feedback) -> None:
        # The base policy learns from the slot it actually saw.
        censored = self._censored if self._censored is not None else slot
        mask = self._active_mask
        self.base.update(censored, feedback)
        if mask is not None:
            per_scn = feedback.per_scn_reward(mask.shape[0])
            self._plays[mask] += 1.0
            self._reward_sum[mask] += per_scn[mask]
        self._censored = None
        self._active_mask = None

    # -- energy export (picked up by Simulation.run / OnlineSession) --------

    def result_extras(self) -> dict[str, np.ndarray]:
        return {"energy": self._energy.copy()}

    # -- checkpoint/restore --------------------------------------------------

    def checkpoint_state(self) -> dict:
        state = dict(self.base.checkpoint_state())
        state["sleep_plays"] = self._plays.copy()
        state["sleep_reward_sum"] = self._reward_sum.copy()
        state["sleep_energy"] = self._energy.copy()
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        state = dict(state)
        self._plays = np.asarray(state.pop("sleep_plays"), dtype=float).copy()
        self._reward_sum = np.asarray(state.pop("sleep_reward_sum"), dtype=float).copy()
        self._energy = np.asarray(state.pop("sleep_energy"), dtype=float).copy()
        self.base.restore_checkpoint_state(state)
