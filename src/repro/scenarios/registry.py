"""The scenario registry: declarative workloads behind ``repro.api``.

A :class:`Scenario` packages everything one evaluation regime needs —

- a base :class:`~repro.experiments.runner.ExperimentConfig` builder,
- optional environment overrides (workload / truth / channel), and
- an optional policy wrapper (information censoring, activation layers),

keyed by name with a description, tags, and typed parameter defaults.
Runs are then *declared* (``repro run --scenario vehicular``, a TOML file,
``api.run(scenario=...)``) instead of assembled by bespoke scripts, and
every layer of the stack — the windowed driver, obs manifests, checkpoints,
process-parallel replication — sees the same content-addressed coordinate:
``scenario_hash`` digests the resolved ``(name, params)`` document, so a
registry whose defaults drifted since a checkpoint was written is detected
instead of silently rebuilding a different environment (DESIGN.md §11).

Everything here resolves lazily: the built-in entries register on first
use, and worker processes rebuild scenario environments from the spec
embedded in the config — a run stays a pure function of ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.scenarios.spec import ScenarioSpec, content_hash

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the runner cycle
    from repro.env.channel import BlockageChannel
    from repro.env.processes import GroundTruth
    from repro.env.workload import Workload
    from repro.experiments.runner import ExperimentConfig

__all__ = [
    "Scenario",
    "ScenarioEnv",
    "ScenarioError",
    "UnknownScenarioError",
    "build_env",
    "config_for",
    "describe",
    "get",
    "list_scenarios",
    "names",
    "register",
    "resolve_params",
    "scenario_hash",
    "wrap_policy",
]


class ScenarioError(ValueError):
    """A scenario definition, lookup, or parameterization is invalid."""


class UnknownScenarioError(ScenarioError, KeyError):
    """The requested scenario name is not registered."""


@dataclass(frozen=True)
class ScenarioEnv:
    """Environment overrides a scenario contributes to the simulation.

    ``None`` fields fall back to the config-derived default (the paper's
    synthetic workload / stationary truth / no channel), so most scenarios
    override only what they change.
    """

    workload: "Workload | None" = None
    truth: "GroundTruth | None" = None
    channel: "BlockageChannel | None" = None


@dataclass(frozen=True)
class Scenario:
    """One registry entry.

    Parameters
    ----------
    name:
        Registry key (``[a-z0-9_]+`` by convention).
    description:
        One-line human description (``repro scenarios list``).
    defaults:
        Every scenario parameter with its default value — the parameter
        *schema*: explicit overrides must name keys from this mapping and
        match the default's JSON type.
    config:
        ``config(params) -> ExperimentConfig`` — the base experiment
        config for resolved ``params`` (the registry attaches the spec).
    env:
        Optional ``env(cfg, params) -> ScenarioEnv`` building the
        scenario's environment overrides.  ``None`` — all defaults.
    wrap_policy:
        Optional ``wrap_policy(policy, cfg, params) -> policy`` applied to
        every policy the runner instantiates (censoring wrappers,
        activation layers).  Must preserve the policy protocol.
    tags:
        Free-form labels (``repro scenarios list`` filters on them).
    """

    name: str
    description: str
    config: Callable = None
    env: Callable | None = None
    wrap_policy: Callable | None = None
    defaults: Mapping[str, object] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario name must be a non-empty string, got {self.name!r}")
        if not callable(self.config):
            raise ScenarioError(f"scenario {self.name!r} needs a callable config builder")


_REGISTRY: dict[str, Scenario] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Idempotently register the built-in scenario families.

    Deferred to first lookup so importing :mod:`repro.scenarios` (e.g. for
    :class:`ScenarioSpec` inside ``ExperimentConfig``) never circularly
    imports the experiment runner.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from repro.scenarios import builtin

        builtin.register_all()


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry; duplicate names fail unless ``replace``."""
    if not replace and scenario.name in _REGISTRY:
        raise ScenarioError(
            f"scenario {scenario.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    """Look a scenario up by name (built-ins register on first call)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def list_scenarios(*, tag: str | None = None) -> list[Scenario]:
    """All registered scenarios (optionally filtered by tag), sorted by name."""
    _ensure_builtins()
    entries = (_REGISTRY[n] for n in sorted(_REGISTRY))
    return [s for s in entries if tag is None or tag in s.tags]


def _type_compatible(default, value) -> bool:
    """Does an override's JSON type match the default's? (int ≤ float)."""
    if isinstance(default, bool):
        return isinstance(value, bool)
    if isinstance(default, (int, float)):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if isinstance(default, str):
        return isinstance(value, str)
    if isinstance(default, (list, tuple)):
        return isinstance(value, (list, tuple))
    return True


def resolve_params(scenario: Scenario, explicit: Mapping | None = None) -> dict:
    """Defaults overlaid with explicit overrides; unknown keys / types fail."""
    explicit = dict(explicit or {})
    unknown = set(explicit) - set(scenario.defaults)
    if unknown:
        raise ScenarioError(
            f"scenario {scenario.name!r} has no parameter(s) {sorted(unknown)}; "
            f"known: {sorted(scenario.defaults)}"
        )
    resolved = dict(scenario.defaults)
    for key, value in explicit.items():
        default = resolved[key]
        if not _type_compatible(default, value):
            raise ScenarioError(
                f"scenario {scenario.name!r} parameter {key!r} expects "
                f"{type(default).__name__}, got {type(value).__name__} ({value!r})"
            )
        resolved[key] = value
    return resolved


def scenario_hash(spec: ScenarioSpec) -> str:
    """Content hash of the *resolved* scenario document.

    Digests ``{"name", "params": defaults | explicit}``, so the hash moves
    when the registry's defaults change out from under a stored spec — the
    fail-closed signal checkpoints and manifests rely on.
    """
    scenario = get(spec.name)
    resolved = resolve_params(scenario, spec.param_dict())
    return content_hash({"name": spec.name, "params": resolved})


def describe(name: str) -> dict:
    """Everything ``repro scenarios describe`` prints, as a JSON-safe dict."""
    scenario = get(name)
    spec = ScenarioSpec.make(name)
    return {
        "name": scenario.name,
        "description": scenario.description,
        "tags": list(scenario.tags),
        "defaults": dict(scenario.defaults),
        "hash": scenario_hash(spec),
        "env_overrides": scenario.env is not None,
        "policy_wrapper": scenario.wrap_policy is not None,
    }


# ---------------------------------------------------------------------------
# Build hooks the experiment runner calls (spec -> concrete objects).
# ---------------------------------------------------------------------------


def config_for(spec: ScenarioSpec, **overrides) -> "ExperimentConfig":
    """The scenario's base config with the spec attached (plus overrides)."""
    scenario = get(spec.name)
    params = resolve_params(scenario, spec.param_dict())
    cfg = scenario.config(params)
    cfg = cfg.with_overrides(scenario=spec, **overrides)
    return cfg


def build_env(cfg: "ExperimentConfig") -> ScenarioEnv:
    """The environment overrides for a config carrying a scenario spec."""
    spec = cfg.scenario
    if spec is None:
        return ScenarioEnv()
    scenario = get(spec.name)
    if scenario.env is None:
        return ScenarioEnv()
    params = resolve_params(scenario, spec.param_dict())
    env = scenario.env(cfg, params)
    if not isinstance(env, ScenarioEnv):
        raise ScenarioError(
            f"scenario {spec.name!r} env builder must return ScenarioEnv, "
            f"got {type(env).__name__}"
        )
    return env


def wrap_policy(policy, cfg: "ExperimentConfig"):
    """Apply the scenario's policy wrapper (identity without one)."""
    spec = cfg.scenario
    if spec is None:
        return policy
    scenario = get(spec.name)
    if scenario.wrap_policy is None:
        return policy
    params = resolve_params(scenario, spec.param_dict())
    return scenario.wrap_policy(policy, cfg, params)
