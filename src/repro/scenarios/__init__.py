"""Declarative scenario registry (DESIGN.md §11).

Public surface::

    from repro import scenarios

    scenarios.names()                     # registered scenario names
    scenarios.describe("vehicular")       # defaults, tags, content hash
    cfg = scenarios.config_for(ScenarioSpec.make("sleep_mode"), horizon=200)
    loaded = scenarios.resolve_scenario("examples/scenarios/vehicular.toml")

This package imports only the spec / registry / loader layers at module
import time; the built-in scenario families (which need the experiment
runner) register lazily on first lookup, keeping
``repro.experiments.runner -> repro.scenarios.spec`` acyclic.
"""

from repro.scenarios.loader import (
    LoadedScenario,
    ScenarioConfigError,
    load_scenario_file,
    looks_like_path,
    resolve_scenario,
)
from repro.scenarios.registry import (
    Scenario,
    ScenarioEnv,
    ScenarioError,
    UnknownScenarioError,
    build_env,
    config_for,
    describe,
    get,
    list_scenarios,
    names,
    register,
    resolve_params,
    scenario_hash,
    wrap_policy,
)
from repro.scenarios.spec import ScenarioSpec, canonical_json, content_hash

__all__ = [
    "LoadedScenario",
    "Scenario",
    "ScenarioConfigError",
    "ScenarioEnv",
    "ScenarioError",
    "ScenarioSpec",
    "UnknownScenarioError",
    "build_env",
    "canonical_json",
    "config_for",
    "content_hash",
    "describe",
    "get",
    "list_scenarios",
    "load_scenario_file",
    "looks_like_path",
    "names",
    "register",
    "resolve_params",
    "resolve_scenario",
    "scenario_hash",
    "wrap_policy",
]
