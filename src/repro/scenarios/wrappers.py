"""Policy wrappers scenarios apply around the runner's base policies.

A :class:`PolicyWrapper` is transparent to the simulation driver: it keeps
the wrapped policy's ``name`` (so the frozen stream contract derives the
same policy RNG with or without the wrapper) and delegates every attribute
it does not override — ``config``/``engine`` (window eligibility),
``context_partition`` (windowed classification), ``multipliers`` (trace
duals), ``attach_solver_cache``, ``t``, ``checkpoint_state`` — to the base
policy.  Subclasses intercept only the ``select``/``update`` surface.
"""

from __future__ import annotations

import numpy as np

from repro.env.network import NetworkConfig

__all__ = ["PolicyWrapper"]


class PolicyWrapper:
    """Transparent pass-through wrapper around an offloading policy."""

    def __init__(self, base) -> None:
        self.base = base

    @property
    def name(self) -> str:
        # The wrapper is invisible to RNG derivation: rngs.policy(name)
        # must yield the same stream whether or not the wrapper is on.
        return self.base.name

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        self.base.reset(network, horizon, rng)

    def select(self, slot):
        return self.base.select(slot)

    def update(self, slot, feedback) -> None:
        self.base.update(slot, feedback)

    def checkpoint_state(self) -> dict:
        return self.base.checkpoint_state()

    def restore_checkpoint_state(self, state: dict) -> None:
        self.base.restore_checkpoint_state(state)

    def __getattr__(self, item):
        # Fallback for everything the wrapper does not define (config,
        # context_partition, multipliers, attach_solver_cache, t, ...).
        # __getattr__ only fires for *missing* attributes, so the wrapper's
        # own methods and ``base`` itself never recurse through here.
        if item == "base":  # not yet set (e.g. during unpickling)
            raise AttributeError(item)
        return getattr(self.base, item)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.base!r})"
