"""The built-in scenario families.

Each entry here replaces (or generalizes) a bespoke example script: the
environment assembly that used to live in ``examples/*.py`` is now a
registry builder, so the same scenario runs through ``repro.api``, the
windowed driver, manifests, checkpoints, and process-parallel replication.

Loaded lazily by :func:`repro.scenarios.registry._ensure_builtins` — this
module may import the experiment runner, the registry itself must not.
"""

from __future__ import annotations

from repro.env.channel import MarkovBlockage
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import GeometricCoverage, TrajectoryMobility
from repro.env.processes import DriftingTruth, RegimeSwitchTruth
from repro.env.workload import SyntheticWorkload
from repro.scenarios.one_bit import OneBitFeedbackPolicy
from repro.scenarios.registry import Scenario, ScenarioEnv, register
from repro.scenarios.sleep import SleepModePolicy

__all__ = ["register_all"]


def _paper_config(params):
    from repro.experiments.runner import ExperimentConfig

    return ExperimentConfig.paper()


def _small_config(horizon, seed=0, **overrides):
    from repro.experiments.runner import ExperimentConfig

    return ExperimentConfig.small(horizon=horizon, seed=seed, **overrides)


# -- mobility + blockage (ex examples/mobility_blockage.py) ------------------


def _mobility_config(params):
    return _small_config(horizon=800, seed=7, num_scns=int(params["num_scns"]))


def _mobility_env(cfg, params):
    workload = SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=GeometricCoverage(
            num_scns=cfg.num_scns,
            num_wds=int(params["num_wds"]),
            area_km=float(params["area_km"]),
            radius_km=float(params["radius_km"]),
            speed_km=float(params["speed_km"]),
        ),
    )
    channel = MarkovBlockage(
        num_scns=cfg.num_scns,
        p_block=float(params["p_block"]),
        p_recover=float(params["p_recover"]),
    )
    return ScenarioEnv(workload=workload, channel=channel)


# -- VR hotspot (ex examples/vr_offloading.py) -------------------------------


def _vr_config(params):
    cfg = _small_config(horizon=1200)
    return cfg.with_overrides(
        alpha=float(params["alpha_frac"]) * cfg.capacity,
        v_range=(float(params["v_low"]), 1.0),
        u_range=(float(params["u_low"]), 1.0),
    )


# -- non-stationary truths (ex examples/nonstationary.py) --------------------


def _nonstationary_config(params):
    return _small_config(horizon=800, seed=3)


def _drift_env(cfg, params):
    from repro.experiments.runner import default_truth

    return ScenarioEnv(
        truth=DriftingTruth(base=default_truth(cfg), drift=float(params["drift"]))
    )


def _regime_env(cfg, params):
    from repro.experiments.runner import default_truth

    return ScenarioEnv(
        truth=RegimeSwitchTruth(
            regime_a=default_truth(cfg),
            regime_b=default_truth(cfg.with_overrides(truth_seed=cfg.truth_seed + 1)),
            switch_prob=float(params["switch_prob"]),
        )
    )


# -- vehicular trajectories (new) --------------------------------------------


def _vehicular_config(params):
    return _small_config(horizon=800, num_scns=9)


def _vehicular_env(cfg, params):
    workload = SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=TrajectoryMobility(
            num_scns=cfg.num_scns,
            num_vehicles=int(params["num_vehicles"]),
            area_km=float(params["area_km"]),
            radius_km=float(params["radius_km"]),
            roads_per_axis=int(params["roads_per_axis"]),
            speed_min_km=float(params["speed_min_km"]),
            speed_max_km=float(params["speed_max_km"]),
            turn_prob=float(params["turn_prob"]),
        ),
    )
    return ScenarioEnv(workload=workload)


# -- SCN sleep-mode (new) ----------------------------------------------------


def _sleep_config(params):
    return _small_config(horizon=800)


def _sleep_wrap(policy, cfg, params):
    return SleepModePolicy(
        policy,
        active_scns=int(params["active_scns"]),
        explore=float(params["explore"]),
        active_power=float(params["active_power"]),
        sleep_power=float(params["sleep_power"]),
    )


# -- one-bit feedback (new) --------------------------------------------------


def _one_bit_config(params):
    return _small_config(horizon=800)


def _one_bit_wrap(policy, cfg, params):
    return OneBitFeedbackPolicy(policy)


def register_all() -> None:
    """Register every built-in scenario (idempotent: replace=True)."""
    entries = [
        Scenario(
            name="paper",
            description="The paper's §5 evaluation setup (M=30, T=10,000, stationary).",
            config=_paper_config,
            tags=("paper", "stationary"),
        ),
        Scenario(
            name="mobility_blockage",
            description=(
                "Fig. 1 physical picture: grid SCNs, random-waypoint WDs, "
                "Gilbert-Elliott mmWave blockage channel."
            ),
            config=_mobility_config,
            env=_mobility_env,
            defaults={
                "num_scns": 9,
                "num_wds": 160,
                "area_km": 6.0,
                "radius_km": 2.0,
                "speed_km": 0.3,
                "p_block": 0.08,
                "p_recover": 0.4,
            },
            tags=("mobility", "channel"),
        ),
        Scenario(
            name="vr",
            description=(
                "VR/AR hotspot: tighter QoS (alpha = alpha_frac*c), reliable "
                "links V~U[v_low,1], valuable frames U~U[u_low,1]."
            ),
            config=_vr_config,
            defaults={"alpha_frac": 0.8, "v_low": 0.5, "u_low": 0.3},
            tags=("domain",),
        ),
        Scenario(
            name="nonstationary_drift",
            description="Per-cube mean rewards follow a bounded random walk (concept drift).",
            config=_nonstationary_config,
            env=_drift_env,
            defaults={"drift": 0.02},
            tags=("nonstationary",),
        ),
        Scenario(
            name="nonstationary_regime",
            description="Rewards switch abruptly between two regimes (flash crowds).",
            config=_nonstationary_config,
            env=_regime_env,
            defaults={"switch_prob": 0.005},
            tags=("nonstationary",),
        ),
        Scenario(
            name="vehicular",
            description=(
                "Vehicles on a Manhattan road grid sweep through SCN coverage "
                "discs with fast handovers (stresses the context partition)."
            ),
            config=_vehicular_config,
            env=_vehicular_env,
            defaults={
                "num_vehicles": 160,
                "area_km": 6.0,
                "radius_km": 1.5,
                "roads_per_axis": 4,
                "speed_min_km": 0.1,
                "speed_max_km": 0.4,
                "turn_prob": 0.2,
            },
            tags=("mobility", "vehicular"),
        ),
        Scenario(
            name="sleep_mode",
            description=(
                "Per-SCN on/off energy states: a CUCB top-m activation layer "
                "wakes active_scns SCNs per slot; energy-per-decision reported."
            ),
            config=_sleep_config,
            wrap_policy=_sleep_wrap,
            defaults={
                "active_scns": 5,
                "explore": 1.5,
                "active_power": 1.0,
                "sleep_power": 0.1,
            },
            tags=("energy", "combinatorial"),
        ),
        Scenario(
            name="one_bit",
            description=(
                "One-bit feedback: policies observe only success/failure per "
                "pair, never the raw compound reward G = U*V/Q."
            ),
            config=_one_bit_config,
            wrap_policy=_one_bit_wrap,
            tags=("feedback", "censoring"),
        ),
    ]
    for scenario in entries:
        register(scenario, replace=True)
