"""The scenario coordinate an :class:`ExperimentConfig` carries around.

:class:`ScenarioSpec` is deliberately tiny and dependency-free: it names a
registered scenario and pins the *explicit* parameter overrides the user
chose (defaults are resolved through the registry at build time, so the
spec stays meaningful across registry evolution — and the content hash
catches exactly the case where evolution changed what a spec builds).

It lives in its own module so :mod:`repro.experiments.runner` can embed a
spec in ``ExperimentConfig`` without importing the registry (which imports
the runner back); only :mod:`repro.scenarios.registry` resolves specs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ScenarioSpec", "canonical_json", "content_hash"]

#: JSON scalar / list types a scenario parameter may hold.
_LEGAL = (str, int, float, bool, type(None))


def _freeze(value):
    """Canonical immutable form of a parameter value (lists become tuples)."""
    if isinstance(value, _LEGAL):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    raise TypeError(
        f"scenario parameter values must be JSON scalars or lists, got {type(value).__name__}"
    )


def _thaw(value):
    """JSON view of a frozen value (tuples back to lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def canonical_json(doc) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def content_hash(doc) -> str:
    """blake2b-128 hex digest of a JSON document's canonical form."""
    return hashlib.blake2b(canonical_json(doc).encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario name plus the explicit parameter overrides.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so the spec is
    hashable and its repr is a value repr — two specs built from equal
    mappings compare (and cache) equal.  Use :meth:`make` to build one from
    a mapping and :meth:`param_dict` to read the overrides back.
    """

    name: str
    params: tuple = field(default_factory=tuple)

    @staticmethod
    def make(name: str, params: Mapping | None = None) -> "ScenarioSpec":
        items = tuple(
            sorted((str(k), _freeze(v)) for k, v in (params or {}).items())
        )
        return ScenarioSpec(name=str(name), params=items)

    def param_dict(self) -> dict:
        """The explicit overrides as a plain (JSON-safe) dict."""
        return {k: _thaw(v) for k, v in self.params}

    def to_dict(self) -> dict:
        """JSON form for manifests and checkpoint headers."""
        return {"name": self.name, "params": self.param_dict()}

    @staticmethod
    def from_dict(doc: Mapping) -> "ScenarioSpec":
        return ScenarioSpec.make(doc["name"], doc.get("params") or {})
