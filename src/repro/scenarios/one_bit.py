"""One-bit feedback: policies observe success/failure, never G = U·V/Q.

The harder-information regime of the one-bit feedback literature (see
PAPERS.md, arXiv 1806.10547): instead of the realized utility ``u``, the
completion indicator ``v``, the consumption ``q`` and the compound reward
``g`` per assigned pair, the policy observes a single bit — did the
offloaded task yield reward or not.

:func:`censor_feedback` rewrites a :class:`~repro.env.simulator.SlotFeedback`
so that ``u' = v' = g' = 1[g > 0]`` and ``q' = 1`` — the algebraic identity
``g = u·v/q`` still holds on the censored view, so every estimator update
path stays well-defined, but all magnitude information is gone.  The
environment, the recorder, and the regret/violation metrics keep the *true*
realizations; only the policy's ``update`` is censored.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SlotFeedback
from repro.scenarios.wrappers import PolicyWrapper

__all__ = ["OneBitFeedbackPolicy", "censor_feedback"]


def censor_feedback(feedback: SlotFeedback) -> SlotFeedback:
    """The one-bit view of a slot's bandit feedback."""
    success = (np.asarray(feedback.g) > 0.0).astype(np.float64)
    return SlotFeedback(
        assignment=feedback.assignment,
        u=success,
        v=success.copy(),
        q=np.ones_like(success),
        g=success.copy(),
    )


class OneBitFeedbackPolicy(PolicyWrapper):
    """Stateless censoring wrapper: the base policy never sees raw G."""

    def update(self, slot, feedback) -> None:
        self.base.update(slot, censor_feedback(feedback))
