"""Scenario config files: declare a run in TOML or JSON.

A scenario file names a *registered* scenario and optionally overrides its
parameters and the experiment config::

    # examples/scenarios/vehicular.toml
    scenario = "vehicular"

    [params]            # scenario parameters (schema = the registry defaults)
    num_vehicles = 160
    turn_prob = 0.3

    [config]            # ExperimentConfig field overrides
    horizon = 800
    seed = 3

JSON files carry the same three keys.  Keeping files *references into the
registry* (rather than self-contained env descriptions) is what lets worker
processes rebuild the environment from the ``(name, params)`` spec alone,
and what gives every file-declared run the same content hash as the
equivalent ``--scenario name`` run.

Validation is fail-closed: unknown top-level keys, unknown scenario names,
unknown parameters, type mismatches, and unknown config fields all raise
:class:`ScenarioConfigError` with the offending key named.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.scenarios.registry import ScenarioError, get, resolve_params, scenario_hash
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "LoadedScenario",
    "ScenarioConfigError",
    "load_scenario_file",
    "looks_like_path",
    "resolve_scenario",
]

_TOP_LEVEL_KEYS = {"scenario", "params", "config", "description"}


class ScenarioConfigError(ScenarioError):
    """A scenario config file fails to parse or validate."""


@dataclass(frozen=True)
class LoadedScenario:
    """A validated scenario declaration: the spec + config overrides."""

    spec: ScenarioSpec
    config_overrides: Mapping[str, object]
    source: str | None = None

    @property
    def hash(self) -> str:
        return scenario_hash(self.spec)

    def config(self, **overrides):
        """The fully-resolved :class:`ExperimentConfig` for this declaration.

        Keyword ``overrides`` (e.g. a CLI ``--horizon``) apply *after* the
        file's ``[config]`` table.
        """
        from repro.scenarios.registry import config_for

        merged = {**self.config_overrides, **overrides}
        return config_for(self.spec, **merged)


def _parse(path: Path) -> dict:
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioConfigError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix.lower() == ".toml":
        import tomllib

        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioConfigError(f"{path}: invalid TOML: {exc}") from exc
    else:
        raise ScenarioConfigError(
            f"{path}: unsupported scenario file suffix {path.suffix!r} "
            "(expected .toml or .json)"
        )
    if not isinstance(doc, dict):
        raise ScenarioConfigError(f"{path}: top level must be a table/object")
    return doc


def _check_config_overrides(path: Path, overrides: Mapping) -> dict:
    """Validate ``[config]`` keys against the ExperimentConfig schema."""
    from repro.experiments.runner import ExperimentConfig

    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    # The scenario coordinate itself is loader-owned, never file-settable.
    known.discard("scenario")
    out: dict = {}
    for key, value in overrides.items():
        if key not in known:
            raise ScenarioConfigError(
                f"{path}: [config] has unknown ExperimentConfig field {key!r}"
            )
        out[key] = tuple(value) if isinstance(value, list) else value
    return out


def load_scenario_file(path: str | Path) -> LoadedScenario:
    """Parse and validate one scenario declaration file."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioConfigError(f"scenario file not found: {path}")
    doc = _parse(path)
    unknown = set(doc) - _TOP_LEVEL_KEYS
    if unknown:
        raise ScenarioConfigError(
            f"{path}: unknown top-level key(s) {sorted(unknown)}; "
            f"expected {sorted(_TOP_LEVEL_KEYS)}"
        )
    name = doc.get("scenario")
    if not isinstance(name, str) or not name:
        raise ScenarioConfigError(
            f"{path}: 'scenario' must name a registered scenario (a string)"
        )
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ScenarioConfigError(f"{path}: [params] must be a table/object")
    config_overrides = doc.get("config", {})
    if not isinstance(config_overrides, dict):
        raise ScenarioConfigError(f"{path}: [config] must be a table/object")

    scenario = get(name)  # raises UnknownScenarioError with the known list
    resolve_params(scenario, params)  # raises on unknown/ill-typed params
    overrides = _check_config_overrides(path, config_overrides)
    try:
        spec = ScenarioSpec.make(name, params)
    except TypeError as exc:
        raise ScenarioConfigError(f"{path}: {exc}") from exc
    return LoadedScenario(spec=spec, config_overrides=overrides, source=str(path))


def looks_like_path(name_or_path: str) -> bool:
    """Heuristic used by ``--scenario``: file suffix or path separator."""
    s = str(name_or_path)
    return s.endswith((".toml", ".json")) or "/" in s or "\\" in s


def resolve_scenario(name_or_path: str | Path) -> LoadedScenario:
    """A registry name or a scenario file, as one :class:`LoadedScenario`."""
    s = str(name_or_path)
    if looks_like_path(s) or Path(s).is_file():
        return load_scenario_file(s)
    get(s)  # raises UnknownScenarioError with the registered list
    return LoadedScenario(spec=ScenarioSpec.make(s), config_overrides={}, source=None)
