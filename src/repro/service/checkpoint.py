"""The ``repro-checkpoint/v1`` snapshot container (DESIGN.md §10).

One self-contained, pickle-free file holds everything a restored session
needs to continue bit-identically: a canonical-JSON header (config, slot
cursor, RNG stream states, scalar policy/truth state, a ``repro-manifest/v1``
provenance block) followed by the raw bytes of every numpy array (weights,
multipliers, hypercube statistics, recorded series), sealed by a blake2b
digest.  Layout::

    magic   b"repro-checkpoint/v1\\n"                      (20 bytes)
    hlen    header length, big-endian uint64                (8 bytes)
    header  canonical JSON (sorted keys, no whitespace)     (hlen bytes)
    arrays  C-order raw bytes, in the header's order        (Σ nbytes)
    digest  blake2b-256 over every preceding byte           (32 bytes)

Design rules, mirrored from the ``solvers/cache.py`` on-disk discipline:

- **versioned magic** — a foreign or future file fails loudly
  (:class:`CheckpointFormatError`), never half-parses;
- **atomic writes** — serialize to a same-directory temp file and
  ``os.replace`` into place, so readers only ever see complete files;
- **fail closed** — truncation or bit corruption anywhere raises
  :class:`CheckpointIntegrityError` before any value is returned: there is
  no partial restore;
- **canonical bytes** — the header is canonical JSON and arrays are stored
  in sorted-name order, so serialize→deserialize→serialize is byte-stable
  (the property ``tests/service/test_checkpoint_format.py`` enforces);
- **no pickle** — the payload is JSON scalars and raw array bytes only;
  object dtypes are rejected at serialization time.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointIntegrityError",
    "deserialize_checkpoint",
    "read_checkpoint",
    "serialize_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_SCHEMA_VERSION = "repro-checkpoint/v1"
CHECKPOINT_MAGIC = b"repro-checkpoint/v1\n"

_DIGEST_SIZE = 32
_LEN_STRUCT = struct.Struct(">Q")
#: Hard cap on the declared header length: a corrupted length field must not
#: turn into a multi-gigabyte allocation before the digest check can run.
_MAX_HEADER_BYTES = 64 * 1024 * 1024


class CheckpointError(Exception):
    """Base class for every checkpoint read/write failure."""


class CheckpointFormatError(CheckpointError):
    """Not a ``repro-checkpoint/v1`` file, or its contents are malformed."""


class CheckpointIntegrityError(CheckpointError):
    """The file is truncated or its bytes fail the digest check."""


def _canonical_json(doc: object) -> bytes:
    try:
        return json.dumps(
            doc, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CheckpointFormatError(
            f"checkpoint header is not canonical-JSON serializable: {exc}"
        ) from exc


def _check_array(name: str, arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.dtype.hasobject:
        raise CheckpointFormatError(
            f"array {name!r} has object dtype {arr.dtype} — checkpoints are pickle-free"
        )
    # ascontiguousarray would promote 0-d to shape (1,); 0-d is already
    # trivially contiguous.
    return arr if arr.ndim == 0 else np.ascontiguousarray(arr)


def serialize_checkpoint(header: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """The full container bytes for ``header`` + ``arrays``.

    Arrays are laid out in sorted-name order; the header must be JSON-safe
    (ints, floats, strings, bools, lists, dicts — no NaN/Inf).
    """
    names = sorted(arrays)
    checked = {name: _check_array(name, arrays[name]) for name in names}
    doc = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "header": header,
        "arrays": [
            {
                "name": name,
                "dtype": checked[name].dtype.str,
                "shape": list(checked[name].shape),
            }
            for name in names
        ],
    }
    header_bytes = _canonical_json(doc)
    parts = [CHECKPOINT_MAGIC, _LEN_STRUCT.pack(len(header_bytes)), header_bytes]
    parts.extend(checked[name].tobytes(order="C") for name in names)
    body = b"".join(parts)
    digest = hashlib.blake2b(body, digest_size=_DIGEST_SIZE).digest()
    return body + digest


def deserialize_checkpoint(data: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Parse container bytes back into ``(header, arrays)``.

    Raises :class:`CheckpointFormatError` for foreign/malformed files and
    :class:`CheckpointIntegrityError` for truncated or corrupted ones —
    always before returning any value, never a partial result.
    """
    if len(data) < len(CHECKPOINT_MAGIC) or not data.startswith(CHECKPOINT_MAGIC):
        raise CheckpointFormatError(
            f"not a {CHECKPOINT_SCHEMA_VERSION} file (bad magic)"
        )
    offset = len(CHECKPOINT_MAGIC)
    if len(data) < offset + _LEN_STRUCT.size + _DIGEST_SIZE:
        raise CheckpointIntegrityError("checkpoint truncated before the header")
    (hlen,) = _LEN_STRUCT.unpack_from(data, offset)
    if hlen > _MAX_HEADER_BYTES:
        raise CheckpointIntegrityError(
            f"declared header length {hlen} exceeds the {_MAX_HEADER_BYTES}-byte cap"
        )
    offset += _LEN_STRUCT.size
    body_end = len(data) - _DIGEST_SIZE
    if offset + hlen > body_end:
        raise CheckpointIntegrityError("checkpoint truncated inside the header")
    digest = hashlib.blake2b(data[:body_end], digest_size=_DIGEST_SIZE).digest()
    if digest != data[body_end:]:
        raise CheckpointIntegrityError("checkpoint digest mismatch (corrupted file)")

    try:
        doc = json.loads(data[offset : offset + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointFormatError(f"checkpoint header is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointFormatError(
            f"checkpoint schema is {doc.get('schema')!r}, "
            f"expected {CHECKPOINT_SCHEMA_VERSION!r}"
        )
    header = doc.get("header")
    specs = doc.get("arrays")
    if not isinstance(header, dict) or not isinstance(specs, list):
        raise CheckpointFormatError("checkpoint header/arrays sections are malformed")

    offset += hlen
    arrays: dict[str, np.ndarray] = {}
    for spec in specs:
        try:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
        except (TypeError, KeyError, ValueError) as exc:
            raise CheckpointFormatError(f"malformed array spec {spec!r}: {exc}") from exc
        if dtype.hasobject:
            raise CheckpointFormatError(f"array {name!r} declares an object dtype")
        if any(s < 0 for s in shape):
            raise CheckpointFormatError(f"array {name!r} declares a negative dimension")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count < 0:
            raise CheckpointFormatError(f"array {name!r} declares an overflowing shape")
        nbytes = count * dtype.itemsize
        if offset + nbytes > body_end:
            raise CheckpointIntegrityError("checkpoint truncated inside the array payload")
        arr = np.frombuffer(data[offset : offset + nbytes], dtype=dtype, count=count)
        arrays[name] = arr.reshape(shape).copy()
        offset += nbytes
    if offset != body_end:
        raise CheckpointFormatError(
            f"{body_end - offset} unaccounted payload bytes after the declared arrays"
        )
    return header, arrays


def write_checkpoint(
    path: str | Path, header: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write a checkpoint file (temp file + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    data = serialize_checkpoint(header, arrays)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def read_checkpoint(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read and verify a checkpoint file written by :func:`write_checkpoint`."""
    target = Path(path)
    try:
        data = target.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file not found: {target}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    return deserialize_checkpoint(data)
