"""Online offloading service: daemon mode with bit-identical checkpoint/restore.

The batch simulator answers "what would policy π have done over T slots";
this package answers the *online* form of the same question: a long-lived
:class:`~repro.service.session.OnlineSession` advances slot by slot, a
:class:`~repro.service.daemon.PolicyDaemon` answers assignment queries over
a local socket, and a versioned ``repro-checkpoint/v1`` snapshot
(:mod:`repro.service.checkpoint`) lets the process die and resume without
perturbing a single random draw — restored trajectories are bit-identical
to never having stopped (``tests/service/``).

Entry points: ``repro serve`` / ``repro checkpoint`` / ``repro resume`` on
the CLI, and :func:`repro.api.open_session` / :func:`repro.api.resume_session`
/ :func:`repro.api.serve` on the facade.
"""

from repro.service.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    deserialize_checkpoint,
    read_checkpoint,
    serialize_checkpoint,
    write_checkpoint,
)
from repro.service.daemon import PolicyDaemon, ServiceClient
from repro.service.events import Arrival, ArrivalQueue, build_slot
from repro.service.session import (
    OnlineSession,
    config_from_dict,
    config_to_dict,
    describe_checkpoint,
)

__all__ = [
    "Arrival",
    "ArrivalQueue",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointIntegrityError",
    "OnlineSession",
    "PolicyDaemon",
    "ServiceClient",
    "build_slot",
    "config_from_dict",
    "config_to_dict",
    "describe_checkpoint",
    "deserialize_checkpoint",
    "read_checkpoint",
    "serialize_checkpoint",
    "write_checkpoint",
]
