"""The stateful online offloading session behind ``repro serve``.

:class:`OnlineSession` is the per-slot form of
:meth:`repro.env.simulator.Simulation.run`: the same environment objects,
the same frozen RNG streams (stream contract v2), and slot arithmetic
mirrored operation for operation — so a session driven to slot T produces
trajectories bit-identical to the batch simulator's per-slot path (gated by
``tests/service/test_resume_equivalence.py``).  What it adds over the batch
loop is *control*: each slot splits into

- :meth:`decide` — generate (or accept) the slot's arrivals and answer the
  assignment query, and
- :meth:`feedback` — realize the bandit feedback, record the slot's series,
  and let the policy learn,

so a daemon can answer queries with bounded latency, and the session can be
checkpointed at any slot boundary (:meth:`save`) and restored in a fresh
process (:meth:`from_checkpoint`) without perturbing a single draw.

The snapshot captures the five state families an uninterrupted run threads
through time: policy learning state (weights, multipliers, statistics,
adaptive partition), the four live RNG stream positions, the workload's
non-RNG cursor, non-stationary truth state, and the recorded series.
Everything else is rebuilt deterministically from the embedded config.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.adaptive import AdaptivePartition
from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.env.simulator import (
    Assignment,
    PolicyProtocol,
    SimulationResult,
    SlotFeedback,
    SlotObservation,
)
from repro.experiments.runner import (
    ExperimentConfig,
    build_channel,
    build_truth,
    build_workload,
)
from repro.scenarios.spec import ScenarioSpec
from repro.obs import runtime as obs_runtime
from repro.obs.manifest import build_manifest
from repro.service.checkpoint import (
    CheckpointError,
    CheckpointFormatError,
    read_checkpoint,
    write_checkpoint,
)
from repro.utils.rng import RngFactory, generator_state, restore_generator_state

__all__ = [
    "OnlineSession",
    "config_from_dict",
    "config_to_dict",
    "describe_checkpoint",
    "make_session_policy",
]

#: Config fields whose values are tuples (JSON stores them as lists).
_TUPLE_FIELDS = ("u_range", "v_range", "q_range")

#: Series recorded per slot, in the array-payload naming used by snapshots.
_SERIES = (
    "reward",
    "expected_reward",
    "completed",
    "consumption",
    "accepted",
    "violation_qos",
    "violation_resource",
    "violation_qos_realized",
    "violation_resource_realized",
)


# ---------------------------------------------------------------------------
# Config <-> JSON (the checkpoint header embeds the full experiment config).
# ---------------------------------------------------------------------------


def _partition_to_dict(partition) -> dict:
    if isinstance(partition, AdaptivePartition):
        return {
            "kind": "adaptive",
            "dims": partition.dims,
            "max_leaves": partition.max_leaves,
            "split_base": partition.split_base,
            "split_rho": partition.split_rho,
        }
    if isinstance(partition, ContextPartition):
        return {"kind": "grid", "dims": partition.dims, "parts": partition.parts}
    raise CheckpointFormatError(
        f"cannot serialize partition type {type(partition).__name__}"
    )


def _partition_from_dict(spec: Mapping) -> ContextPartition | AdaptivePartition:
    kind = spec.get("kind")
    if kind == "adaptive":
        return AdaptivePartition(
            dims=int(spec["dims"]),
            max_leaves=int(spec["max_leaves"]),
            split_base=float(spec["split_base"]),
            split_rho=float(spec["split_rho"]),
        )
    if kind == "grid":
        return ContextPartition(dims=int(spec["dims"]), parts=int(spec["parts"]))
    raise CheckpointFormatError(f"unknown partition kind {kind!r}")


def config_to_dict(cfg: ExperimentConfig) -> dict:
    """A JSON-safe dict that :func:`config_from_dict` inverts exactly."""
    out: dict = {}
    for f in dataclasses.fields(cfg):
        value = getattr(cfg, f.name)
        if f.name == "lfsc":
            if value is None:
                out[f.name] = None
            else:
                lfsc = {
                    lf.name: getattr(value, lf.name)
                    for lf in dataclasses.fields(value)
                    if lf.name != "partition"
                }
                lfsc["partition"] = _partition_to_dict(value.partition)
                out[f.name] = lfsc
        elif f.name == "scenario":
            out[f.name] = None if value is None else value.to_dict()
        elif isinstance(value, tuple):
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out


def config_from_dict(doc: Mapping) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict` output."""
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    unknown = set(doc) - known
    if unknown:
        raise CheckpointFormatError(
            f"config has unknown fields {sorted(unknown)} — "
            "written by a newer repro version?"
        )
    kwargs: dict = {}
    for name, value in doc.items():
        if name == "lfsc":
            if value is None:
                kwargs[name] = None
            else:
                lfsc = dict(value)
                lfsc["partition"] = _partition_from_dict(lfsc["partition"])
                kwargs[name] = LFSCConfig(**lfsc)
        elif name == "scenario":
            kwargs[name] = None if value is None else ScenarioSpec.from_dict(value)
        elif name in _TUPLE_FIELDS:
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    try:
        return ExperimentConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CheckpointFormatError(f"config does not validate: {exc}") from exc


def make_session_policy(name: str, cfg: ExperimentConfig, truth) -> PolicyProtocol:
    """Thin delegate to the policy registry's factory.

    Kept as a named seam for checkpoint headers: the stored ``policy`` field
    is a registry spec string (``"LFSC-adaptive"``, ``"linucb(alpha=0.5)"``,
    ...) and resolves through :func:`repro.policies.make_policy` — the
    historical special-casing of ``"LFSC-adaptive"`` now lives in the
    registry's builder table.
    """
    from repro import policies as policy_registry

    return policy_registry.make_policy(name, cfg, truth)


def _scenario_header(cfg: ExperimentConfig) -> dict | None:
    """The checkpoint header's scenario block: spec + content hash.

    The hash digests the *resolved* parameter document, so a registry whose
    defaults drifted since the checkpoint was written produces a different
    hash — the fail-closed signal :meth:`OnlineSession.from_checkpoint`
    verifies before rebuilding the environment.
    """
    if cfg.scenario is None:
        return None
    from repro import scenarios

    return {
        "name": cfg.scenario.name,
        "params": cfg.scenario.param_dict(),
        "hash": scenarios.scenario_hash(cfg.scenario),
    }


def _verify_scenario_header(cfg: ExperimentConfig, header: Mapping) -> None:
    """Fail closed when the stored scenario no longer resolves identically."""
    stored = header.get("scenario")
    if cfg.scenario is None and stored is None:
        return
    if (cfg.scenario is None) != (stored is None):
        raise CheckpointFormatError(
            "checkpoint scenario block and config scenario field disagree"
        )
    from repro import scenarios

    try:
        current = scenarios.scenario_hash(cfg.scenario)
    except scenarios.ScenarioError as exc:
        raise CheckpointFormatError(
            f"checkpoint scenario {cfg.scenario.name!r} does not resolve "
            f"against the current registry: {exc}"
        ) from exc
    if current != stored.get("hash"):
        raise CheckpointFormatError(
            f"scenario hash mismatch for {cfg.scenario.name!r}: checkpoint has "
            f"{stored.get('hash')}, current registry resolves to {current} — "
            "the scenario's definition changed since this checkpoint was written"
        )


def _split_state(state: Mapping) -> tuple[dict, dict[str, np.ndarray]]:
    """Route a checkpoint-state dict into (JSON scalars, array payload)."""
    scalars: dict = {}
    arrays: dict[str, np.ndarray] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (np.integer, np.floating, np.bool_)):
            scalars[key] = value.item()
        else:
            scalars[key] = value
    return scalars, arrays


# ---------------------------------------------------------------------------
# The session.
# ---------------------------------------------------------------------------


class OnlineSession:
    """A long-lived, checkpointable slot-by-slot offloading run.

    Parameters
    ----------
    config:
        The experiment spec; environment, streams, and policy all derive
        from it, so ``(config, policy_name)`` fully determines the run.
    policy:
        Policy name (``"LFSC"``, ``"LFSC-adaptive"``, any runner baseline).
    record_expected:
        Record the paper's expected-basis violation series (default True,
        matching :meth:`Simulation.run`).
    validate_assignments:
        Validate every assignment against (1a)/(1b)/coverage (default True).

    Note: when ``config.lfsc`` embeds an :class:`AdaptivePartition`, the
    partition *object* is shared with the session's policy and mutates as
    the tree refines — build one config per concurrent session.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        policy: str = "LFSC",
        *,
        record_expected: bool = True,
        validate_assignments: bool = True,
    ) -> None:
        self.config = config
        self.policy_name = str(policy)
        self.record_expected = bool(record_expected)
        self.validate_assignments = bool(validate_assignments)
        self.horizon = int(config.horizon)

        self.network = config.network()
        self.workload = build_workload(config)
        self.truth = build_truth(config)
        self.channel = build_channel(config)
        # Stream contract v2 — the exact derivations Simulation.run makes,
        # in the same order, so a session and a batch run share randomness.
        self._rngs = RngFactory(config.seed)
        self.workload_rng = self._rngs.env("workload")
        self.realize_rng = self._rngs.env("realizations")
        self.channel_rng = self._rngs.env("channel")
        self.policy = make_session_policy(self.policy_name, config, self.truth)
        policy_rng = self._rngs.policy(self.policy.name)
        self._has_pair_api = hasattr(
            self.truth, "expected_compound_pairs"
        ) and hasattr(self.truth, "means_pairs")

        self.workload.reset()
        if config.oracle_cache:
            attach = getattr(self.policy, "attach_solver_cache", None)
            if callable(attach):
                from repro.solvers.cache import shared_cache

                attach(shared_cache(config.cache_dir))
        self.policy.reset(self.network, self.horizon, policy_rng)

        M = self.network.num_scns
        T = self.horizon
        self.t = 0
        self._pending: tuple[SlotObservation, Assignment] | None = None
        self._series: dict[str, np.ndarray] = {
            "reward": np.zeros(T),
            "expected_reward": np.zeros(T),
            "completed": np.zeros((T, M)),
            "consumption": np.zeros((T, M)),
            "accepted": np.zeros((T, M), dtype=np.int64),
            "violation_qos": np.zeros(T),
            "violation_resource": np.zeros(T),
            "violation_qos_realized": np.zeros(T),
            "violation_resource_realized": np.zeros(T),
        }

    # -- the decide/feedback slot cycle --------------------------------------

    @property
    def pending(self) -> bool:
        """True between a :meth:`decide` and its :meth:`feedback`."""
        return self._pending is not None

    def decide(self, slot: SlotObservation | None = None) -> Assignment:
        """Answer slot ``t``'s assignment query.

        With no argument the session's synthetic workload generates the
        slot's arrivals (consuming the workload stream exactly as the batch
        simulator would).  An explicit ``slot`` — e.g. one built by the
        daemon from externally queued arrivals — is used verbatim and must
        carry the current slot index; external slots leave the workload
        stream untouched, so they are for live serving, not for replaying
        the synthetic trajectory.
        """
        if self._pending is not None:
            raise RuntimeError(
                "decide() called twice for one slot: feedback() must run first"
            )
        if self.t >= self.horizon:
            raise RuntimeError(
                f"session horizon {self.horizon} exhausted (t={self.t}); "
                "start a new session with a longer config.horizon"
            )
        with obs_runtime.span("service.decide"):
            if slot is None:
                slot = self.workload.slot(self.t, self.workload_rng)
            elif slot.t != self.t:
                raise ValueError(
                    f"external slot carries t={slot.t}, session expects t={self.t}"
                )
            assignment = self.policy.select(slot)
            if self.validate_assignments:
                assignment.validate(slot, self.network.capacity)
        self._pending = (slot, assignment)
        return assignment

    def feedback(self) -> SlotFeedback:
        """Realize slot ``t``'s bandit feedback, record it, let the policy learn.

        Every operation mirrors :meth:`Simulation.run`'s per-slot branch —
        same ufuncs, same operand values, same RNG consumption order — which
        is what makes session trajectories (and checkpoints taken between
        slots) bit-identical to the batch simulator's.
        """
        if self._pending is None:
            raise RuntimeError("feedback() called with no pending decision")
        slot, assignment = self._pending
        t = self.t
        M = self.network.num_scns
        alpha, beta = self.network.alpha, self.network.beta
        with obs_runtime.span("service.feedback"):
            if len(assignment) > 0:
                pair_contexts = slot.tasks.contexts[assignment.task]
                u, v, q = self.truth.realize(
                    t, pair_contexts, assignment.scn, self.realize_rng
                )
                if self.channel is not None:
                    v = v * self.channel.link_up(
                        t, assignment.scn, assignment.task, self.channel_rng
                    )
                g = u * v / q
            else:
                u = v = q = g = np.empty(0)

            feedback = SlotFeedback(assignment=assignment, u=u, v=v, q=q, g=g)

            s = self._series
            s["reward"][t] = g.sum()
            comp = feedback.per_scn_completed(M)
            cons = feedback.per_scn_consumption(M)
            s["completed"][t] = comp
            s["consumption"][t] = cons
            s["accepted"][t] = np.bincount(assignment.scn, minlength=M)
            s["violation_qos_realized"][t] = np.maximum(alpha - comp, 0.0).sum()
            s["violation_resource_realized"][t] = np.maximum(cons - beta, 0.0).sum()

            if self.record_expected:
                if len(assignment) > 0:
                    if self._has_pair_api:
                        exp_g = self.truth.expected_compound_pairs(
                            t, pair_contexts, assignment.scn
                        )
                        _, p_v, mu_q = self.truth.means_pairs(
                            t, pair_contexts, assignment.scn
                        )
                    else:
                        rows = np.arange(len(assignment))
                        exp_g = self.truth.expected_compound(t, pair_contexts)[
                            assignment.scn, rows
                        ]
                        p_v_dense, mu_q_dense = self.truth.means(t, pair_contexts)[1:]
                        p_v = p_v_dense[assignment.scn, rows]
                        mu_q = mu_q_dense[assignment.scn, rows]
                    s["expected_reward"][t] = exp_g.sum()
                    exp_comp = np.bincount(assignment.scn, weights=p_v, minlength=M)
                    exp_cons = np.bincount(assignment.scn, weights=mu_q, minlength=M)
                else:
                    exp_comp = np.zeros(M)
                    exp_cons = np.zeros(M)
                s["violation_qos"][t] = np.maximum(alpha - exp_comp, 0.0).sum()
                s["violation_resource"][t] = np.maximum(exp_cons - beta, 0.0).sum()

            self.policy.update(slot, feedback)
            self.truth.advance(t, self.realize_rng)
            if self.channel is not None:
                self.channel.advance(t, self.channel_rng)
        self._pending = None
        self.t += 1
        return feedback

    def step(self) -> SlotFeedback:
        """One full slot: :meth:`decide` then :meth:`feedback`."""
        self.decide()
        return self.feedback()

    def run(self, slots: int | None = None) -> "OnlineSession":
        """Advance ``slots`` full slots (default: to the horizon)."""
        remaining = self.horizon - self.t
        count = remaining if slots is None else int(slots)
        if count < 0 or count > remaining:
            raise ValueError(
                f"cannot run {count} slots from t={self.t} with horizon {self.horizon}"
            )
        for _ in range(count):
            self.step()
        return self

    def result(self) -> SimulationResult:
        """The recorded series so far as a :class:`SimulationResult`.

        Series are truncated to the completed slots, so a session driven to
        the horizon returns arrays directly comparable (``np.array_equal``)
        to a :meth:`Simulation.run` result.
        """
        t = self.t
        s = self._series
        expected = self.record_expected
        return SimulationResult(
            policy_name=self.policy.name,
            horizon=t,
            num_scns=self.network.num_scns,
            reward=s["reward"][:t].copy(),
            expected_reward=s["expected_reward"][:t].copy(),
            completed=s["completed"][:t].copy(),
            consumption=s["consumption"][:t].copy(),
            accepted=s["accepted"][:t].copy(),
            violation_qos=s["violation_qos" if expected else "violation_qos_realized"][:t].copy(),
            violation_resource=s[
                "violation_resource" if expected else "violation_resource_realized"
            ][:t].copy(),
            violation_qos_realized=s["violation_qos_realized"][:t].copy(),
            violation_resource_realized=s["violation_resource_realized"][:t].copy(),
            has_expected=expected,
            extras=self._result_extras(t),
        )

    def _result_extras(self, t: int) -> dict[str, np.ndarray]:
        """Scenario-contributed series (e.g. sleep-mode energy), truncated."""
        extras_fn = getattr(self.policy, "result_extras", None)
        if not callable(extras_fn):
            return {}
        return {k: np.asarray(v)[:t].copy() for k, v in extras_fn().items()}

    # -- checkpoint / restore -------------------------------------------------

    def snapshot(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The session's full state as ``(header, arrays)``.

        Only legal at a slot boundary — a pending decision references the
        live slot object and cannot be serialized faithfully.
        """
        if self._pending is not None:
            raise CheckpointError(
                "cannot checkpoint with a pending decision: feedback() must run first"
            )
        policy_scalars, policy_arrays = _split_state(self.policy.checkpoint_state())
        truth_scalars, truth_arrays = _split_state(self.truth.checkpoint_state())
        workload_state_fn = getattr(self.workload, "checkpoint_state", None)
        workload_scalars: dict | None = None
        workload_arrays: dict[str, np.ndarray] = {}
        if callable(workload_state_fn):
            workload_scalars, workload_arrays = _split_state(workload_state_fn())
        channel_state_fn = getattr(self.channel, "checkpoint_state", None)
        channel_scalars: dict | None = None
        channel_arrays: dict[str, np.ndarray] = {}
        if callable(channel_state_fn):
            channel_scalars, channel_arrays = _split_state(channel_state_fn())
        cursor = getattr(self.workload, "cursor", None)
        engine = getattr(getattr(self.policy, "config", None), "engine", None)
        header = {
            "kind": "session",
            "config": config_to_dict(self.config),
            "policy": self.policy_name,
            "t": int(self.t),
            "horizon": int(self.horizon),
            "record_expected": self.record_expected,
            "validate_assignments": self.validate_assignments,
            "rng": {
                "workload": generator_state(self.workload_rng),
                "realizations": generator_state(self.realize_rng),
                "channel": generator_state(self.channel_rng),
                "policy": generator_state(self.policy.rng),
            },
            "workload_cursor": int(cursor()) if callable(cursor) else None,
            "policy_state": policy_scalars,
            "truth_state": truth_scalars,
            "workload_state": workload_scalars,
            "channel_state": channel_scalars,
            "scenario": _scenario_header(self.config),
            "manifest": build_manifest(
                kind="checkpoint",
                config=self.config,
                policies=[self.policy_name],
                engine=engine,
                extra={"t": int(self.t), "horizon": int(self.horizon)},
            ),
        }
        arrays: dict[str, np.ndarray] = {}
        for name in _SERIES:
            arrays[f"series.{name}"] = self._series[name]
        for key, value in policy_arrays.items():
            arrays[f"policy.{key}"] = value
        for key, value in truth_arrays.items():
            arrays[f"truth.{key}"] = value
        for key, value in workload_arrays.items():
            arrays[f"workload.{key}"] = value
        for key, value in channel_arrays.items():
            arrays[f"channel.{key}"] = value
        return header, arrays

    def save(self, path: str | Path) -> Path:
        """Atomically write a ``repro-checkpoint/v1`` file for this session."""
        header, arrays = self.snapshot()
        return write_checkpoint(path, header, arrays)

    @classmethod
    def from_checkpoint(cls, path: str | Path) -> "OnlineSession":
        """Rebuild a session from a checkpoint, bit-identical to never stopping.

        The constructor re-derives every config-determined object; the
        snapshot then overwrites exactly the state an uninterrupted run
        would have mutated — stream positions are restored *in place* on
        the factory-cached generator objects the components already hold.
        """
        header, arrays = read_checkpoint(path)
        if header.get("kind") != "session":
            raise CheckpointFormatError(
                f"checkpoint kind is {header.get('kind')!r}, expected 'session'"
            )
        cfg = config_from_dict(header["config"])
        # Fail closed before building anything: a scenario whose registry
        # definition drifted would silently rebuild a different environment.
        _verify_scenario_header(cfg, header)
        session = cls(
            cfg,
            policy=header["policy"],
            record_expected=bool(header.get("record_expected", True)),
            validate_assignments=bool(header.get("validate_assignments", True)),
        )
        try:
            rng = header["rng"]
            restore_generator_state(session.workload_rng, rng["workload"])
            restore_generator_state(session.realize_rng, rng["realizations"])
            restore_generator_state(session.channel_rng, rng["channel"])
            restore_generator_state(session.policy.rng, rng["policy"])

            cursor = header.get("workload_cursor")
            if cursor is not None:
                restore = getattr(session.workload, "restore_cursor", None)
                if callable(restore):
                    restore(int(cursor))

            policy_state = dict(header.get("policy_state", {}))
            truth_state = dict(header.get("truth_state", {}))
            workload_state = dict(header.get("workload_state") or {})
            channel_state = dict(header.get("channel_state") or {})
            has_workload_state = header.get("workload_state") is not None
            has_channel_state = header.get("channel_state") is not None
            for key, value in arrays.items():
                section, _, name = key.partition(".")
                if section == "policy":
                    policy_state[name] = value
                elif section == "truth":
                    truth_state[name] = value
                elif section == "workload":
                    workload_state[name] = value
                elif section == "channel":
                    channel_state[name] = value
                elif section == "series":
                    target = session._series.get(name)
                    if target is None or target.shape != value.shape:
                        raise CheckpointFormatError(
                            f"series {name!r} has shape {value.shape}, "
                            f"expected {None if target is None else target.shape}"
                        )
                    target[...] = value
                else:
                    raise CheckpointFormatError(f"unknown array section in {key!r}")
            session.policy.restore_checkpoint_state(policy_state)
            session.truth.restore_checkpoint_state(truth_state)
            if has_workload_state:
                restore_wl = getattr(session.workload, "restore_checkpoint_state", None)
                if callable(restore_wl):
                    restore_wl(workload_state)
            if has_channel_state:
                restore_ch = getattr(session.channel, "restore_checkpoint_state", None)
                if callable(restore_ch):
                    restore_ch(channel_state)

            t = int(header["t"])
            if not 0 <= t <= session.horizon:
                raise CheckpointFormatError(
                    f"slot cursor {t} outside horizon {session.horizon}"
                )
            session.t = t
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointFormatError(
                f"checkpoint state does not restore cleanly: {exc}"
            ) from exc
        return session


def describe_checkpoint(path: str | Path) -> dict:
    """Validate a checkpoint file and summarize it (for ``repro checkpoint``).

    Reads and digest-verifies the full file, then reports the header's
    run coordinates plus array inventory — without building a session.
    """
    header, arrays = read_checkpoint(path)
    cfg = header.get("config", {})
    return {
        "path": str(path),
        "schema": "repro-checkpoint/v1",
        "kind": header.get("kind"),
        "policy": header.get("policy"),
        "t": header.get("t"),
        "horizon": header.get("horizon"),
        "scenario": header.get("scenario"),
        "seed": cfg.get("seed"),
        "num_scns": cfg.get("num_scns"),
        "engine": (header.get("manifest") or {}).get("engine"),
        "arrays": {
            name: {"dtype": str(arr.dtype), "shape": list(arr.shape)}
            for name, arr in sorted(arrays.items())
        },
        "created_at": (header.get("manifest") or {}).get("created_at"),
    }
