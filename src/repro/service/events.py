"""Event plumbing for the offloading daemon: arrivals in, slots out.

The daemon accepts task arrivals asynchronously (possibly from several
client connections at once) but the policy server consumes them as ordered
per-slot batches.  :class:`ArrivalQueue` is the boundary between the two
worlds: a thread-safe min-heap keyed by ``(slot, seq)`` where ``seq`` is a
monotonic admission counter — so arrivals targeting earlier slots always
drain first, and same-slot arrivals drain in admission order regardless of
which thread pushed them (the property
``tests/service/test_daemon.py::test_burst_preserves_slot_order`` locks in).

:func:`build_slot` turns one slot's drained arrivals into the
:class:`~repro.env.workload.SlotWorkload` the policy protocol speaks:
contexts are validated into Φ = [0,1]^D and each arrival's SCN coverage
list becomes a column of the paper's D_{m,t} sets.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload

__all__ = ["Arrival", "ArrivalQueue", "build_slot"]


@dataclass(frozen=True)
class Arrival:
    """One task arrival admitted to the queue.

    ``slot`` is the earliest slot the task may be scheduled in; ``seq`` is
    the queue's admission stamp (total order across threads); ``context``
    is the task's feature vector in [0,1]^D; ``scns`` lists the SCNs whose
    coverage area contains the task.
    """

    slot: int
    seq: int
    context: np.ndarray
    scns: tuple[int, ...]


class ArrivalQueue:
    """Thread-safe arrival buffer ordered by ``(slot, admission seq)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Arrival]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(
        self,
        slot: int,
        context: Sequence[float] | np.ndarray,
        scns: Iterable[int],
    ) -> Arrival:
        """Admit one arrival; returns it (with its admission stamp)."""
        slot = int(slot)
        if slot < 0:
            raise ValueError(f"arrival slot must be >= 0, got {slot}")
        ctx = np.asarray(context, dtype=float)
        if ctx.ndim != 1:
            raise ValueError(f"arrival context must be 1-D, got shape {ctx.shape}")
        if np.any(ctx < 0.0) or np.any(ctx > 1.0) or not np.all(np.isfinite(ctx)):
            raise ValueError("arrival context must lie in [0,1]^D")
        scn_tuple = tuple(sorted({int(m) for m in scns}))
        if not scn_tuple:
            raise ValueError("arrival must be covered by at least one SCN")
        if scn_tuple[0] < 0:
            raise ValueError("SCN indices must be >= 0")
        with self._lock:
            arrival = Arrival(slot, next(self._seq), ctx, scn_tuple)
            heapq.heappush(self._heap, (arrival.slot, arrival.seq, arrival))
        return arrival

    def drain(self, slot: int) -> list[Arrival]:
        """Pop every queued arrival with ``arrival.slot <= slot``, in order.

        Late arrivals (targeted at an already-served slot) are swept into
        the current slot rather than dropped — the online analogue of a
        task waiting for the next decision epoch.
        """
        slot = int(slot)
        out: list[Arrival] = []
        with self._lock:
            while self._heap and self._heap[0][0] <= slot:
                out.append(heapq.heappop(self._heap)[2])
        return out

    def peek_slot(self) -> int | None:
        """The earliest queued slot, or ``None`` when empty."""
        with self._lock:
            return self._heap[0][0] if self._heap else None


def build_slot(
    t: int,
    arrivals: Sequence[Arrival | Mapping],
    *,
    num_scns: int,
    dims: int,
    start_id: int = 0,
) -> SlotWorkload:
    """Assemble a :class:`SlotWorkload` for slot ``t`` from drained arrivals.

    Accepts :class:`Arrival` objects or raw mappings with ``context`` and
    ``scns`` keys (the daemon's wire format).  Task ids are assigned
    ``start_id, start_id+1, ...`` in arrival order.
    """
    contexts: list[np.ndarray] = []
    coverage: list[list[int]] = [[] for _ in range(num_scns)]
    for i, item in enumerate(arrivals):
        if isinstance(item, Arrival):
            ctx, scns = item.context, item.scns
        else:
            ctx = np.asarray(item["context"], dtype=float)
            scns = tuple(int(m) for m in item["scns"])
        if ctx.shape != (dims,):
            raise ValueError(
                f"arrival {i} context has shape {ctx.shape}, expected ({dims},)"
            )
        if np.any(ctx < 0.0) or np.any(ctx > 1.0):
            raise ValueError(f"arrival {i} context lies outside [0,1]^{dims}")
        for m in scns:
            if not 0 <= m < num_scns:
                raise ValueError(f"arrival {i} names SCN {m}, network has {num_scns}")
            coverage[m].append(i)
        contexts.append(ctx)
    if contexts:
        batch = TaskBatch.from_contexts(np.vstack(contexts), start_id=start_id)
    else:
        batch = TaskBatch.from_contexts(np.empty((0, dims)), start_id=start_id)
    return SlotWorkload(
        t=int(t),
        tasks=batch,
        coverage=[np.asarray(idx, dtype=np.int64) for idx in coverage],
    )
