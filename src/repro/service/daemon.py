"""The offloading policy daemon: a socket front-end over :class:`OnlineSession`.

:class:`PolicyDaemon` serializes every request through one lock, so the
stateful session underneath sees a strict decide → feedback → decide slot
cycle no matter how many client connections race.  The protocol is
newline-delimited JSON over a local TCP socket (port 0 by default — the OS
picks a free port, which :attr:`PolicyDaemon.address` reports):

    {"op": "status"}                         → run coordinates + latency stats
    {"op": "arrive", "slot": 7,
     "context": [...], "scns": [...]}        → queue a task arrival
    {"op": "decide"}                         → answer slot t's assignment
    {"op": "feedback"}                       → realize + learn (explicit mode)
    {"op": "checkpoint", "path": "..."}      → atomic repro-checkpoint/v1 write
    {"op": "stop"}                           → final checkpoint (if configured) + exit
    {"op": "kill"}                           → exit WITHOUT checkpointing

Replies are ``{"ok": true, ...}`` or ``{"ok": false, "error": kind,
"message": ...}`` — client mistakes (bad op, bad arrival, horizon
exhausted) report cleanly instead of tearing the daemon down.

``decide`` serves the session's synthetic workload by default; when
arrivals are queued for the current slot (via ``arrive``), the drained
batch becomes the slot instead — the live-serving path.  With
``auto_feedback=True`` (default) each ``decide`` realizes its feedback
before replying, so every reply carries the decision *and* the realized
outcome; ``auto_feedback=False`` splits the two ops for callers that sit
between decision and realization.

``kill`` exists for the crash-recovery tests: it drops the process state on
the floor exactly like a SIGKILL would, so a restart must come from the
last on-disk checkpoint (``checkpoint_every=N`` autosaves one every N
slots).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from collections import deque
from pathlib import Path
from time import monotonic

import numpy as np

from repro.metrics.latency import percentile
from repro.obs import runtime as obs_runtime
from repro.service.checkpoint import CheckpointError
from repro.service.events import ArrivalQueue, build_slot
from repro.service.session import OnlineSession

__all__ = ["PolicyDaemon", "ServiceClient"]

#: Sliding window of per-decision latencies kept for the status report.
_LATENCY_WINDOW = 4096


class PolicyDaemon:
    """Lock-serialized request handler plus an optional TCP front-end.

    The request surface is :meth:`handle` — a pure ``dict → dict`` function,
    so tests (and the CLI's ``--drive`` mode) can exercise the full protocol
    in-process; :meth:`serve_forever` merely pumps socket lines through it.

    Parameters
    ----------
    session:
        The stateful session to serve.
    host, port:
        Bind address for :meth:`serve_forever`; port 0 lets the OS choose.
    checkpoint_path:
        Where autosaves and the ``stop`` checkpoint go (``None`` disables).
    checkpoint_every:
        Autosave period in slots (0 disables autosaves).
    auto_feedback:
        Realize each decision's feedback inside ``decide`` (default True).
    """

    def __init__(
        self,
        session: OnlineSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        auto_feedback: bool = True,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every requires a checkpoint_path")
        self.session = session
        self.host = host
        self.port = int(port)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.auto_feedback = bool(auto_feedback)
        self.queue = ArrivalQueue()
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._decisions = 0
        self._checkpoints = 0
        self._stopping = threading.Event()
        self._server: socketserver.ThreadingTCPServer | None = None

    # -- request surface ----------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one protocol request; never raises for client mistakes."""
        if not isinstance(request, dict) or "op" not in request:
            return self._error("protocol", "request must be an object with an 'op'")
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None or op.startswith("_"):
            return self._error("protocol", f"unknown op {op!r}")
        with self._lock:
            try:
                return handler(request)
            except CheckpointError as exc:
                return self._error("checkpoint", str(exc))
            except (ValueError, RuntimeError, KeyError, TypeError) as exc:
                return self._error("request", str(exc))

    @staticmethod
    def _error(kind: str, message: str) -> dict:
        return {"ok": False, "error": kind, "message": message}

    def _op_status(self, request: dict) -> dict:
        lat = list(self._latencies)
        return {
            "ok": True,
            "policy": self.session.policy_name,
            "t": self.session.t,
            "horizon": self.session.horizon,
            "pending": self.session.pending,
            "queued_arrivals": len(self.queue),
            "decisions": self._decisions,
            "checkpoints": self._checkpoints,
            "latency_p50_ms": 1e3 * percentile(lat, 0.50),
            "latency_p99_ms": 1e3 * percentile(lat, 0.99),
        }

    def _op_arrive(self, request: dict) -> dict:
        slot = request.get("slot", self.session.t)
        arrival = self.queue.push(slot, request["context"], request["scns"])
        return {"ok": True, "slot": arrival.slot, "seq": arrival.seq}

    def _op_decide(self, request: dict) -> dict:
        session = self.session
        t = session.t
        start = monotonic()
        arrivals = self.queue.drain(t)
        if arrivals:
            slot = build_slot(
                t,
                arrivals,
                num_scns=session.network.num_scns,
                dims=session.config.dims,
            )
            assignment = session.decide(slot)
        else:
            assignment = session.decide()
        reply: dict = {
            "ok": True,
            "t": t,
            "external_arrivals": len(arrivals),
            "assignment": {
                "task": assignment.task.tolist(),
                "scn": assignment.scn.tolist(),
            },
        }
        if self.auto_feedback:
            reply["feedback"] = self._apply_feedback()
        self._latencies.append(monotonic() - start)
        self._decisions += 1
        return reply

    def _op_feedback(self, request: dict) -> dict:
        if self.auto_feedback:
            return self._error(
                "request", "daemon runs with auto_feedback: decide already learned"
            )
        return {"ok": True, "t": self.session.t, "feedback": self._apply_feedback()}

    def _apply_feedback(self) -> dict:
        session = self.session
        feedback = session.feedback()
        done = session.t  # feedback advanced the cursor past the served slot
        if (
            self.checkpoint_every > 0
            and done % self.checkpoint_every == 0
            and self.checkpoint_path is not None
        ):
            self._write_checkpoint(self.checkpoint_path)
        return {
            "realized_reward": float(feedback.g.sum()),
            "completed": int(np.asarray(feedback.v).sum()) if len(feedback.v) else 0,
        }

    def _op_checkpoint(self, request: dict) -> dict:
        path = request.get("path") or self.checkpoint_path
        if path is None:
            return self._error(
                "request", "no checkpoint path: pass 'path' or configure one"
            )
        written = self._write_checkpoint(Path(path))
        return {"ok": True, "path": str(written), "t": self.session.t}

    def _write_checkpoint(self, path: Path) -> Path:
        with obs_runtime.span("service.checkpoint"):
            written = self.session.save(path)
        self._checkpoints += 1
        return written

    def _op_stop(self, request: dict) -> dict:
        reply: dict = {"ok": True, "t": self.session.t, "stopping": True}
        if self.checkpoint_path is not None and not self.session.pending:
            reply["path"] = str(self._write_checkpoint(self.checkpoint_path))
        self._stopping.set()
        self._shutdown_server()
        return reply

    def _op_kill(self, request: dict) -> dict:
        # Crash simulation: NO final checkpoint — recovery must come from
        # the last autosave, exactly as after a real process death.
        self._stopping.set()
        self._shutdown_server()
        return {"ok": True, "t": self.session.t, "stopping": True, "checkpointed": False}

    # -- socket front-end ---------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — valid once :meth:`start` returned."""
        if self._server is None:
            return (self.host, self.port)
        return self._server.server_address[:2]

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        daemon = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                while not daemon._stopping.is_set():
                    line = self.rfile.readline()
                    if not line:
                        return
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        request = json.loads(line)
                    except json.JSONDecodeError as exc:
                        reply = daemon._error("protocol", f"bad JSON: {exc}")
                    else:
                        reply = daemon.handle(request)
                    self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
                    self.wfile.flush()
                    if reply.get("stopping"):
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((self.host, self.port), _Handler)
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._thread = thread
        return self.address

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI foreground mode)."""
        if self._server is None:
            self.start()
        try:
            self._stopping.wait()
        finally:
            self._shutdown_server()

    def _shutdown_server(self) -> None:
        server = self._server
        if server is not None:
            # shutdown() joins the serve_forever loop; do it off-thread when
            # called from inside a request handler.
            threading.Thread(target=server.shutdown, daemon=True).start()

    def close(self) -> None:
        """Stop serving (no checkpoint side effects)."""
        self._stopping.set()
        server = self._server
        if server is not None:
            server.shutdown()
            server.server_close()
            self._server = None


class ServiceClient:
    """Minimal blocking client for the daemon's line-JSON protocol."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, obj: dict) -> dict:
        self._file.write(json.dumps(obj).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
