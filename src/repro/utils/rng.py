"""Deterministic random-number plumbing.

The simulator, the random processes, the workload generator, and every
learning policy each need their own independent stream so that, e.g.,
swapping the policy does not perturb the environment's randomness.  We
derive all streams from one root :class:`numpy.random.SeedSequence` using
the ``spawn`` mechanism, which guarantees statistical independence.

The replication stream contract (frozen)
----------------------------------------

Multi-seed replication sweeps (``repro.experiments.replication``) derive one
independent seed per replication from a *base* seed via

    ``SeedSequence(entropy=base_seed, spawn_key=(REPLICATION_SPAWN_KEY, k))``

where ``k`` is the replication index; the replication's integer seed is the
first ``uint64`` word of that sequence's ``generate_state``
(:func:`replication_seed`).  Properties guaranteed by construction and
enforced by ``tests/experiments/test_stream_isolation.py``:

- the mapping ``(base_seed, k) -> seed`` depends on nothing else — not on
  worker count, scheduling order, how many replications are requested, or
  which other streams were drawn first;
- distinct indices (and distinct base seeds) give statistically independent
  streams, unlike ``base_seed + k`` which can collide with an explicitly
  chosen neighbouring base seed;
- the mapping is **frozen**: changing it invalidates every committed golden
  summary, so it is pinned by golden-value tests and must never change.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "REPLICATION_SPAWN_KEY",
    "RngFactory",
    "as_generator",
    "replication_seed",
    "replication_seed_sequence",
    "replication_seeds",
    "spawn_generators",
]

#: Domain-separation tag for replication streams (frozen contract — never
#: change; see the module docstring).  Distinguishes replication children
#: from any other ``spawn_key`` use of the same base entropy.
REPLICATION_SPAWN_KEY: int = 0x5EED


def as_generator(
    seed: int | None | np.random.Generator | np.random.SeedSequence,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (fresh OS entropy), an existing
    generator (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one root seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def replication_seed_sequence(base_seed: int, index: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of replication ``index``.

    Frozen contract (module docstring): the child sequence is fully
    determined by ``(base_seed, index)`` and is independent of worker count,
    scheduling order, and the total number of replications.
    """
    if index < 0:
        raise ValueError(f"replication index must be non-negative, got {index}")
    return np.random.SeedSequence(
        entropy=base_seed, spawn_key=(REPLICATION_SPAWN_KEY, index)
    )


def replication_seed(base_seed: int, index: int) -> int:
    """The integer seed of replication ``index`` under the frozen contract.

    The first ``uint64`` word of the child sequence's ``generate_state`` —
    an ordinary Python int, so it can live in a frozen config dataclass,
    pickle across process boundaries, and serialize into provenance JSON.
    """
    return int(replication_seed_sequence(base_seed, index).generate_state(1, np.uint64)[0])


def replication_seeds(base_seed: int, n: int) -> list[int]:
    """The first ``n`` replication seeds derived from ``base_seed``."""
    if n < 0:
        raise ValueError(f"cannot derive a negative number of seeds: {n}")
    return [replication_seed(base_seed, k) for k in range(n)]


class RngFactory:
    """Hands out named, independent random streams derived from one seed.

    Streams are keyed by string name; requesting the same name twice returns
    the *same* generator object, so components can share a stream explicitly
    while distinct names never collide.

    Example
    -------
    >>> fac = RngFactory(42)
    >>> env_rng = fac.get("environment")
    >>> policy_rng = fac.get("policy.lfsc")
    >>> fac.get("environment") is env_rng
    True
    """

    def __init__(self, seed: int | None | np.random.SeedSequence = None) -> None:
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> int | Sequence[int] | None:
        """The root seed entropy (useful for logging experiment provenance)."""
        return self._root.entropy

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on first use.

        The stream's seed is derived from the root seed and a stable hash of
        the name, so the mapping name -> stream does not depend on the order
        in which streams are requested.
        """
        if name not in self._streams:
            # Derive a per-name child key from the UTF-8 bytes of the name so
            # the assignment is order-independent and collision-resistant.
            # The root's own spawn_key is preserved as a prefix: a factory
            # rooted at a spawned/derived SeedSequence (e.g. a replication
            # child) must not alias the same named stream of a sibling.
            name_key = tuple(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + name_key,
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` anonymous independent generators (for worker pools)."""
        return [np.random.default_rng(s) for s in self._root.spawn(n)]

    def stream_names(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics)."""
        return tuple(self._streams)
