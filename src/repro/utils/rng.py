"""Deterministic random-number plumbing.

The simulator, the random processes, the workload generator, and every
learning policy each need their own independent stream so that, e.g.,
swapping the policy does not perturb the environment's randomness.  We
derive all streams from one root :class:`numpy.random.SeedSequence` using
the ``spawn`` mechanism, which guarantees statistical independence.

The replication stream contract (frozen)
----------------------------------------

Multi-seed replication sweeps (``repro.experiments.replication``) derive one
independent seed per replication from a *base* seed via

    ``SeedSequence(entropy=base_seed, spawn_key=(REPLICATION_SPAWN_KEY, k))``

where ``k`` is the replication index; the replication's integer seed is the
first ``uint64`` word of that sequence's ``generate_state``
(:func:`replication_seed`).  Properties guaranteed by construction and
enforced by ``tests/experiments/test_stream_isolation.py``:

- the mapping ``(base_seed, k) -> seed`` depends on nothing else — not on
  worker count, scheduling order, how many replications are requested, or
  which other streams were drawn first;
- distinct indices (and distinct base seeds) give statistically independent
  streams, unlike ``base_seed + k`` which can collide with an explicitly
  chosen neighbouring base seed;
- the mapping is **frozen**: changing it invalidates every committed golden
  summary, so it is pinned by golden-value tests and must never change.

The environment/policy namespace split (stream contract v2)
-----------------------------------------------------------

Within one run, streams live in two disjoint spawn-key namespaces rooted at
the same seed:

- **environment** streams (workload, realizations, channel — everything the
  hidden world draws) derive through :func:`env_seed_sequence`:
  ``spawn_key = root.spawn_key + (ENV_SPAWN_KEY,) + utf8(name)``;
- **policy** streams (one per policy, named by the policy) derive through
  :func:`policy_seed_sequence` with :data:`POLICY_SPAWN_KEY` in the same
  position.

The tag occupies a *fixed position* in the spawn key, so no choice of policy
name can ever produce an environment stream's key: the two namespaces are
disjoint by construction, which makes environment randomness provably
independent of which policy runs, what it is called, and any α/config value.
That independence is what lets windows and Oracle solves be precomputed once
and shared bit-identically across sweep points and policies
(:mod:`repro.env.window_cache`, :mod:`repro.solvers.cache`).

The fleet tile namespace (stream contract v2 extension)
-------------------------------------------------------

Sharded fleet runs (:mod:`repro.fleet`) partition a metro-scale network into
tiles and distribute groups of tiles (shards) over worker processes.  Every
tile's streams derive through :func:`fleet_seed_sequence`:

    ``spawn_key = root.spawn_key + (FLEET_SPAWN_KEY, tile_index)``

and the tile's env/policy streams then nest *under* that tile root through
the v2 namespaces above.  The derivation depends only on ``(seed,
tile_index)`` — never on the shard count, which shard a tile landed in, or
worker scheduling — which is the mechanism that makes a sharded fleet run
bit-identical to the unsharded reference at any shard count.  The tag sits
at the same fixed spawn-key position as :data:`ENV_SPAWN_KEY` /
:data:`POLICY_SPAWN_KEY` and differs from both (and from
:data:`REPLICATION_SPAWN_KEY`), so tile roots can never alias a
replication child or any direct env/policy stream of the same seed.

The learned-evaluation namespace (stream contract v2 extension)
---------------------------------------------------------------

The replay-evaluation harness (:mod:`repro.learned.replay`) records one
environment slot stream and replays it under many learner variants.  A
variant's private stream derives through :func:`learned_seed_sequence`:

    ``spawn_key = root.spawn_key + (LEARNED_SPAWN_KEY,) + utf8(label)``

with :data:`LEARNED_SPAWN_KEY` at the same fixed spawn-key position as the
other tags and distinct from all of them — so no variant label can alias an
environment stream (the recorded slots stay valid for every variant), a
policy stream (a variant run never perturbs the standard evaluation
streams), a replication child, or a fleet tile root.  The derivation is a
pure function of ``(seed, label)``, which is what makes a hyperparameter
sweep over one recorded stream reproducible label by label.

:func:`stream_token` reduces any derived sequence to a hashable 256-bit
token — the cache key for environment-derived artifacts — and
:func:`describe_streams` renders the derived tokens for error messages
(:class:`repro.utils.parallel.ParallelExecutionError`).

Generator state snapshots (stream contract v2 extension)
--------------------------------------------------------

Checkpoint/restore (:mod:`repro.service.checkpoint`) needs the *position* of
each live stream, not just its derivation: a restored run must consume the
exact draws an uninterrupted run would.  :func:`generator_state` captures a
generator's bit-generator state as a JSON-safe dict (numpy defines this
round-trip: assigning the dict back to ``bit_generator.state`` restores the
stream bit-for-bit), :func:`restore_generator_state` rewinds an existing
generator in place — the form checkpoint restore uses, since the factory's
cached stream objects are shared by reference — and
:func:`generator_from_state` builds a fresh generator at that position.
The dict is versioned by numpy itself (the ``bit_generator`` name field);
restoring onto a mismatched bit-generator class is an error, not a silent
re-seed.
"""

from __future__ import annotations

import copy
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ENV_SPAWN_KEY",
    "FLEET_SPAWN_KEY",
    "LEARNED_SPAWN_KEY",
    "POLICY_SPAWN_KEY",
    "REPLICATION_SPAWN_KEY",
    "RngFactory",
    "as_generator",
    "describe_streams",
    "env_seed_sequence",
    "fleet_seed",
    "fleet_seed_sequence",
    "generator_from_state",
    "generator_state",
    "learned_seed_sequence",
    "policy_seed_sequence",
    "restore_generator_state",
    "replication_seed",
    "replication_seed_sequence",
    "replication_seeds",
    "spawn_generators",
    "stream_token",
]

#: Domain-separation tag for replication streams (frozen contract — never
#: change; see the module docstring).  Distinguishes replication children
#: from any other ``spawn_key`` use of the same base entropy.
REPLICATION_SPAWN_KEY: int = 0x5EED

#: Domain-separation tag for *environment* streams (workload, realizations,
#: channel).  Frozen with the v2 contract: changing it re-randomizes every
#: environment and invalidates all committed goldens.
ENV_SPAWN_KEY: int = 0xE27

#: Domain-separation tag for *policy* streams.  Frozen with the v2 contract.
#: Must differ from :data:`ENV_SPAWN_KEY` (and does forever): the tag sits at
#: a fixed spawn-key position, so the namespaces cannot collide for any name.
POLICY_SPAWN_KEY: int = 0xAC7

#: Domain-separation tag for fleet *tile* roots (sharded metro-scale runs,
#: :mod:`repro.fleet`).  Frozen with the v2 extension: a tile's streams are a
#: pure function of ``(seed, tile_index)``, independent of the shard count
#: and worker topology — the bit-identity mechanism for sharded runs.  Must
#: stay distinct from the other three tags (same fixed spawn-key position).
FLEET_SPAWN_KEY: int = 0xF1EE

#: Domain-separation tag for learned-evaluation variant streams (the replay
#: harness, :mod:`repro.learned.replay`).  Frozen with the v2 extension: a
#: variant's stream is a pure function of ``(seed, label)``, disjoint from
#: every env/policy/fleet/replication stream at the same fixed spawn-key
#: position — replaying a recorded stream under a new variant label can
#: never perturb the environment or the standard policy streams.
LEARNED_SPAWN_KEY: int = 0x1EA4


def as_generator(
    seed: int | None | np.random.Generator | np.random.SeedSequence,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (fresh OS entropy), an existing
    generator (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one root seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def replication_seed_sequence(base_seed: int, index: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of replication ``index``.

    Frozen contract (module docstring): the child sequence is fully
    determined by ``(base_seed, index)`` and is independent of worker count,
    scheduling order, and the total number of replications.
    """
    if index < 0:
        raise ValueError(f"replication index must be non-negative, got {index}")
    return np.random.SeedSequence(
        entropy=base_seed, spawn_key=(REPLICATION_SPAWN_KEY, index)
    )


def replication_seed(base_seed: int, index: int) -> int:
    """The integer seed of replication ``index`` under the frozen contract.

    The first ``uint64`` word of the child sequence's ``generate_state`` —
    an ordinary Python int, so it can live in a frozen config dataclass,
    pickle across process boundaries, and serialize into provenance JSON.
    """
    return int(replication_seed_sequence(base_seed, index).generate_state(1, np.uint64)[0])


def replication_seeds(base_seed: int, n: int) -> list[int]:
    """The first ``n`` replication seeds derived from ``base_seed``."""
    if n < 0:
        raise ValueError(f"cannot derive a negative number of seeds: {n}")
    return [replication_seed(base_seed, k) for k in range(n)]


def _tagged_sequence(
    root: np.random.SeedSequence, tag: int, name: str
) -> np.random.SeedSequence:
    """A named child of ``root`` inside the ``tag`` namespace.

    The tag occupies the spawn-key position right after the root's own key,
    *before* the name bytes — so sequences with different tags are distinct
    for every pair of names, and a root with a spawn key of its own (e.g. a
    replication child) never aliases a sibling's streams.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (tag,) + tuple(name.encode("utf-8")),
    )


def _as_sequence(seed: int | None | np.random.SeedSequence) -> np.random.SeedSequence:
    return seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)


def env_seed_sequence(
    seed: int | None | np.random.SeedSequence, name: str
) -> np.random.SeedSequence:
    """The environment stream ``name`` derived from ``seed`` (v2 contract).

    Depends only on ``(seed, name)`` — never on which policy runs, its name,
    α, or any other stream drawn first.
    """
    return _tagged_sequence(_as_sequence(seed), ENV_SPAWN_KEY, name)


def policy_seed_sequence(
    seed: int | None | np.random.SeedSequence, name: str
) -> np.random.SeedSequence:
    """The policy stream ``name`` derived from ``seed`` (v2 contract).

    Disjoint from :func:`env_seed_sequence` for *every* pair of names: the
    namespace tags differ at a fixed spawn-key position.
    """
    return _tagged_sequence(_as_sequence(seed), POLICY_SPAWN_KEY, name)


def learned_seed_sequence(
    seed: int | None | np.random.SeedSequence, label: str
) -> np.random.SeedSequence:
    """The learned-evaluation variant stream ``label`` (v2 extension).

    Disjoint from :func:`env_seed_sequence` and :func:`policy_seed_sequence`
    for every pair of names — :data:`LEARNED_SPAWN_KEY` sits at the same
    fixed spawn-key position — so a replayed learner variant draws from a
    stream no live run ever touches.
    """
    return _tagged_sequence(_as_sequence(seed), LEARNED_SPAWN_KEY, label)


def fleet_seed_sequence(
    seed: int | None | np.random.SeedSequence, tile: int
) -> np.random.SeedSequence:
    """The root :class:`~numpy.random.SeedSequence` of fleet tile ``tile``.

    Frozen contract (module docstring): the tile root is fully determined by
    ``(seed, tile)`` and is independent of the fleet's shard count, the
    shard a tile is grouped into, and worker scheduling.  A tile's own
    env/policy streams derive *under* this root through the v2 namespaces
    (e.g. ``RngFactory(fleet_seed_sequence(seed, k)).env("workload")``), so
    they inherit the same independence.
    """
    if tile < 0:
        raise ValueError(f"tile index must be non-negative, got {tile}")
    root = _as_sequence(seed)
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (FLEET_SPAWN_KEY, tile),
    )


def fleet_seed(seed: int | None | np.random.SeedSequence, tile: int) -> int:
    """Tile ``tile``'s integer seed under the fleet contract.

    The first ``uint64`` word of the tile root's ``generate_state`` — a
    plain int for components that take integer seeds (e.g. each tile's
    independent ground-truth tables).
    """
    return int(fleet_seed_sequence(seed, tile).generate_state(1, np.uint64)[0])


def stream_token(ss: np.random.SeedSequence) -> tuple[int, int, int, int]:
    """A hashable 256-bit token identifying a derived stream.

    A pure function of the sequence (``generate_state`` does not mutate), so
    equal derivations give equal tokens across processes and sessions —
    exactly what content-addressed caches key environment artifacts by.
    """
    return tuple(int(x) for x in ss.generate_state(4, np.uint64))  # type: ignore[return-value]


def describe_streams(
    seed: int | None | np.random.SeedSequence,
    policy_names: Sequence[str] = (),
    env_names: Sequence[str] = ("workload", "realizations", "channel"),
) -> str:
    """Render the derived env/policy stream tokens of ``seed`` for diagnostics.

    Used by :class:`repro.utils.parallel.ParallelExecutionError` so a failed
    replication reports *which derived streams* it was running — cross-stream
    bugs (a policy perturbing environment randomness, two replications
    aliasing) are visible from the error alone by comparing tokens.
    """
    parts = [
        f"env.{name}={stream_token(env_seed_sequence(seed, name))[0]:#018x}"
        for name in env_names
    ]
    parts += [
        f"policy.{name}={stream_token(policy_seed_sequence(seed, name))[0]:#018x}"
        for name in policy_names
    ]
    return " ".join(parts)


def generator_state(gen: np.random.Generator) -> dict:
    """JSON-safe snapshot of ``gen``'s stream position.

    The returned dict is numpy's own bit-generator state (plain ints and
    strings all the way down — PCG64's 128-bit words are arbitrary-precision
    Python ints, which JSON carries exactly), deep-copied so later draws
    from ``gen`` cannot mutate a saved snapshot.
    """
    return copy.deepcopy(gen.bit_generator.state)


def _state_bit_generator_name(state: dict) -> str:
    try:
        name = state["bit_generator"]
    except (TypeError, KeyError):
        raise ValueError(
            f"not a bit-generator state dict (missing 'bit_generator'): {type(state).__name__}"
        ) from None
    return str(name)


def restore_generator_state(gen: np.random.Generator, state: dict) -> None:
    """Rewind ``gen`` in place to a :func:`generator_state` snapshot.

    In-place restoration is what checkpoint restore needs: the simulator and
    the policy hold the *same* stream objects a :class:`RngFactory` cached,
    so replacing the object would silently fork the stream.  The
    bit-generator classes must match — numpy raises otherwise, and we check
    first to give a typed, actionable message.
    """
    name = _state_bit_generator_name(state)
    actual = type(gen.bit_generator).__name__
    if name != actual:
        raise ValueError(
            f"bit-generator mismatch: snapshot is {name!r}, generator is {actual!r}"
        )
    gen.bit_generator.state = copy.deepcopy(state)


def generator_from_state(state: dict) -> np.random.Generator:
    """A fresh generator positioned exactly at a :func:`generator_state` snapshot."""
    name = _state_bit_generator_name(state)
    cls = getattr(np.random, name, None)
    if cls is None or not isinstance(cls, type):
        raise ValueError(f"unknown bit-generator class {name!r}")
    bg = cls()
    gen = np.random.Generator(bg)
    restore_generator_state(gen, state)
    return gen


class RngFactory:
    """Hands out named, independent random streams derived from one seed.

    Streams are keyed by string name; requesting the same name twice returns
    the *same* generator object, so components can share a stream explicitly
    while distinct names never collide.  :meth:`env` and :meth:`policy`
    derive through the v2 namespace split (module docstring) — the
    simulator's streams; :meth:`get` keeps the historical un-namespaced
    derivation for ad-hoc streams and backward compatibility.

    Example
    -------
    >>> fac = RngFactory(42)
    >>> env_rng = fac.env("workload")
    >>> policy_rng = fac.policy("LFSC")
    >>> fac.env("workload") is env_rng
    True
    """

    def __init__(self, seed: int | None | np.random.SeedSequence = None) -> None:
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}
        self._sequences: dict[str, np.random.SeedSequence] = {}

    @property
    def root_entropy(self) -> int | Sequence[int] | None:
        """The root seed entropy (useful for logging experiment provenance)."""
        return self._root.entropy

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on first use.

        The stream's seed is derived from the root seed and a stable hash of
        the name, so the mapping name -> stream does not depend on the order
        in which streams are requested.
        """
        key = f"named:{name}"
        if key not in self._streams:
            # Derive a per-name child key from the UTF-8 bytes of the name so
            # the assignment is order-independent and collision-resistant.
            # The root's own spawn_key is preserved as a prefix: a factory
            # rooted at a spawned/derived SeedSequence (e.g. a replication
            # child) must not alias the same named stream of a sibling.
            name_key = tuple(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + name_key,
            )
            self._streams[key] = np.random.default_rng(child)
        return self._streams[key]

    def env_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of environment stream ``name``."""
        key = f"env:{name}"
        if key not in self._sequences:
            self._sequences[key] = _tagged_sequence(self._root, ENV_SPAWN_KEY, name)
        return self._sequences[key]

    def policy_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of policy stream ``name``."""
        key = f"policy:{name}"
        if key not in self._sequences:
            self._sequences[key] = _tagged_sequence(self._root, POLICY_SPAWN_KEY, name)
        return self._sequences[key]

    def env(self, name: str) -> np.random.Generator:
        """The environment stream ``name`` (v2 namespace; see module docstring).

        Independent of every policy stream for *all* names — the namespace
        tags are disjoint at a fixed spawn-key position — so swapping,
        renaming, or re-parameterizing the policy can never consume or
        perturb a draw of this stream.
        """
        key = f"env:{name}"
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(self.env_sequence(name))
        return self._streams[key]

    def policy(self, name: str) -> np.random.Generator:
        """The policy stream ``name`` (v2 namespace), disjoint from all env streams."""
        key = f"policy:{name}"
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(self.policy_sequence(name))
        return self._streams[key]

    def learned_sequence(self, label: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of learned variant ``label``."""
        key = f"learned:{label}"
        if key not in self._sequences:
            self._sequences[key] = _tagged_sequence(self._root, LEARNED_SPAWN_KEY, label)
        return self._sequences[key]

    def learned(self, label: str) -> np.random.Generator:
        """The learned-evaluation variant stream ``label`` (v2 extension).

        Disjoint from every env and policy stream for all label/name pairs —
        the replay harness hands these to learner variants so hyperparameter
        sweeps over one recorded stream never perturb the standard streams.
        """
        key = f"learned:{label}"
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(self.learned_sequence(label))
        return self._streams[key]

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` anonymous independent generators (for worker pools)."""
        return [np.random.default_rng(s) for s in self._root.spawn(n)]

    def stream_names(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics).

        Legacy :meth:`get` streams appear under their plain name; the v2
        namespaced streams appear qualified — ``env:workload``,
        ``policy:LFSC`` — mirroring how they were requested.
        """
        prefix = "named:"
        return tuple(
            name[len(prefix):] if name.startswith(prefix) else name
            for name in self._streams
        )
