"""Deterministic random-number plumbing.

The simulator, the random processes, the workload generator, and every
learning policy each need their own independent stream so that, e.g.,
swapping the policy does not perturb the environment's randomness.  We
derive all streams from one root :class:`numpy.random.SeedSequence` using
the ``spawn`` mechanism, which guarantees statistical independence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["RngFactory", "as_generator", "spawn_generators"]


def as_generator(
    seed: int | None | np.random.Generator | np.random.SeedSequence,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (fresh OS entropy), an existing
    generator (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one root seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngFactory:
    """Hands out named, independent random streams derived from one seed.

    Streams are keyed by string name; requesting the same name twice returns
    the *same* generator object, so components can share a stream explicitly
    while distinct names never collide.

    Example
    -------
    >>> fac = RngFactory(42)
    >>> env_rng = fac.get("environment")
    >>> policy_rng = fac.get("policy.lfsc")
    >>> fac.get("environment") is env_rng
    True
    """

    def __init__(self, seed: int | None | np.random.SeedSequence = None) -> None:
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> int | Sequence[int] | None:
        """The root seed entropy (useful for logging experiment provenance)."""
        return self._root.entropy

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on first use.

        The stream's seed is derived from the root seed and a stable hash of
        the name, so the mapping name -> stream does not depend on the order
        in which streams are requested.
        """
        if name not in self._streams:
            # Derive a per-name child key from the UTF-8 bytes of the name so
            # the assignment is order-independent and collision-resistant.
            name_key = list(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_key)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` anonymous independent generators (for worker pools)."""
        return [np.random.default_rng(s) for s in self._root.spawn(n)]

    def stream_names(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics)."""
        return tuple(self._streams)
