"""Simple wall-clock instrumentation for experiment runs.

The experiment runner records per-phase timings so that long parameter sweeps
report where the time went (simulation vs. oracle solve vs. metric reduction),
following the profile-before-optimizing workflow of the HPC guides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Use as a context manager factory::

        sw = Stopwatch()
        with sw.measure("simulate"):
            run_simulation()
        sw.totals()["simulate"]  # seconds
    """

    _totals: dict[str, float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def measure(self, name: str) -> "_Timer":
        return _Timer(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> dict[str, float]:
        """Total seconds accumulated per name."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of measured intervals per name."""
        return dict(self._counts)

    def report(self) -> str:
        """Human-readable one-line-per-phase timing summary."""
        lines = []
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            total = self._totals[name]
            count = self._counts[name]
            lines.append(f"{name:<30s} {total:10.3f}s  ({count} calls)")
        return "\n".join(lines)


class _Timer:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
