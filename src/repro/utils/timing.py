"""Monotonic timing primitives for experiment runs and the obs subsystem.

All durations in :mod:`repro` are measured with :func:`time.perf_counter`
(re-exported here as :func:`monotonic`): a monotonic, high-resolution clock.
Wall-clock ``time.time()`` deltas can jump backwards under NTP slew or DST
shifts and must never be used for spans — a negative "duration" silently
corrupts accumulated phase totals and overhead gates.

Two primitives:

- :class:`Stopwatch` — accumulates named durations across many intervals
  (per-phase totals for sweeps and reports).  Stopwatches from worker
  processes merge associatively via :meth:`Stopwatch.merge`.
- :class:`Span` — one timed interval reported to a callback on exit; the
  building block the observability runtime (:mod:`repro.obs`) uses for
  slot-level timing records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Span", "Stopwatch", "monotonic"]

#: The project-wide span clock: monotonic, immune to NTP/wall-clock slew.
monotonic = time.perf_counter


class Span:
    """One timed interval: ``with Span("greedy", sink):`` calls
    ``sink("greedy", seconds)`` on exit.

    The measured duration is also available as :attr:`seconds` after exit
    (and reads as the running duration while the span is open).  Durations
    come from :func:`monotonic` and are therefore always >= 0.
    """

    __slots__ = ("name", "_sink", "_start", "_stop")

    def __init__(self, name: str, sink: Callable[[str, float], None] | None = None) -> None:
        self.name = name
        self._sink = sink
        self._start: float | None = None
        self._stop: float | None = None

    @property
    def seconds(self) -> float:
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else monotonic()
        return end - self._start

    def __enter__(self) -> "Span":
        self._start = monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop = monotonic()
        if self._sink is not None:
            self._sink(self.name, self._stop - self._start)


@dataclass
class Stopwatch:
    """Accumulates named monotonic durations.

    Use as a context manager factory::

        sw = Stopwatch()
        with sw.measure("simulate"):
            run_simulation()
        sw.totals()["simulate"]  # seconds
    """

    _totals: dict[str, float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def measure(self, name: str) -> Span:
        return Span(name, self.add)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's totals in (e.g. from a worker process).

        Merging is associative and commutative, so per-worker stopwatches
        can be combined in any order with identical results.
        """
        for name, seconds in other._totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + other._counts[name]

    def totals(self) -> dict[str, float]:
        """Total seconds accumulated per name."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of measured intervals per name."""
        return dict(self._counts)

    def report(self) -> str:
        """Human-readable one-line-per-phase timing summary."""
        lines = []
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            total = self._totals[name]
            count = self._counts[name]
            lines.append(f"{name:<30s} {total:10.3f}s  ({count} calls)")
        return "\n".join(lines)
