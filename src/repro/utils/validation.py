"""Lightweight argument validation helpers.

These raise early, with messages that name the offending parameter, so
configuration errors surface at construction time rather than deep inside a
10,000-slot simulation loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "require",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_shape",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Validate that ``lo (<|<=) value (<|<=) hi``."""
    lo_ok = value >= lo if inclusive[0] else value > lo
    hi_ok = value <= hi if inclusive[1] else value < hi
    if not (lo_ok and hi_ok):
        lb = "[" if inclusive[0] else "("
        rb = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lb}{lo}, {hi}{rb}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_shape(name: str, array: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Validate an array's shape; ``-1`` in ``shape`` matches any extent."""
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dims, got shape {arr.shape}")
    for axis, (got, want) in enumerate(zip(arr.shape, shape)):
        if want != -1 and got != want:
            raise ValueError(
                f"{name} has shape {arr.shape}; expected {shape} (mismatch on axis {axis})"
            )
    return arr


def check_interval(name: str, interval: tuple[float, float]) -> tuple[float, float]:
    """Validate a (lo, hi) pair with lo <= hi."""
    lo, hi = float(interval[0]), float(interval[1])
    if lo > hi:
        raise ValueError(f"{name} must satisfy lo <= hi, got ({lo}, {hi})")
    return lo, hi


def check_dtype_any(name: str, value: Any, *types: type) -> Any:
    """Validate that ``value`` is an instance of one of ``types``."""
    if not isinstance(value, types):
        names = ", ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be one of ({names}), got {type(value).__name__}")
    return value
