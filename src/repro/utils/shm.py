"""Shared-memory numpy transport for process-parallel result collection.

``parallel_map`` (PR 2) returns every worker result through the process
pool's pickle pipe.  For replication sweeps the payload is almost entirely
numpy arrays — ``SimulationResult``'s per-slot series — so pickling buys
nothing over a byte copy and costs serialization on both ends of a pipe
with kernel-bounded throughput.  This module moves the array payload
through one ``multiprocessing.shared_memory`` block per worker chunk
instead:

- the worker calls :func:`pack_to_shm`, which walks each result object
  (dataclasses, dicts, lists, tuples — :class:`SimulationResult` included),
  lifts every materializable ndarray into one shared block, and returns a
  pickle-light *skeleton* whose arrays are :class:`ArrayRef` placeholders
  plus a manifest of ``(shape, dtype, offset)`` descriptors;
- the parent calls :func:`unpack_from_shm`, which views the block, rebuilds
  each array (materializing it out of the block so results outlive the
  segment), grafts them back into the skeletons, then closes and unlinks
  the block.

Only the skeletons and the manifest cross the pickle pipe.  Values are
bit-identical to the pickle path (enforced by
``tests/utils/test_shm_transport.py``): the block carries the exact bytes
of each array, and anything shared memory cannot hold — object-dtype or
zero-size arrays, scalars, non-array fields — stays inline in the skeleton.

Lifetime: the worker unregisters its block from the resource tracker and
closes its mapping immediately after filling it (the parent owns the
segment from then on); the parent unlinks in a ``finally`` so a failed
rebuild cannot leak the segment.  :func:`discard_block` lets error paths
drop a block they will never unpack.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayRef",
    "discard_block",
    "pack_to_shm",
    "shm_supported",
    "unpack_from_shm",
]

_MISS = object()
_ALIGN = 16


@dataclass(frozen=True)
class ArrayRef:
    """Skeleton placeholder for the ``index``-th array of a shm block."""

    index: int


def _map_tree(obj: Any, fn: Callable[[Any], Any]) -> Any:
    """Rebuild ``obj`` with ``fn`` applied to the leaves it claims.

    ``fn`` returns a replacement or the ``_MISS`` sentinel; on ``_MISS``
    containers (dict / list / tuple / namedtuple / dataclass) are walked
    recursively and any other node is kept as-is.  Unchanged subtrees are
    returned identically (``is``-preserving), so frozen dataclasses are
    only copied when a field actually changed.
    """
    hit = fn(obj)
    if hit is not _MISS:
        return hit
    if isinstance(obj, dict):
        return {k: _map_tree(v, fn) for k, v in obj.items()}
    if isinstance(obj, tuple):
        mapped = [_map_tree(v, fn) for v in obj]
        if hasattr(obj, "_fields"):  # namedtuple
            return type(obj)(*mapped)
        return tuple(mapped)
    if isinstance(obj, list):
        return [_map_tree(v, fn) for v in obj]
    if is_dataclass(obj) and not isinstance(obj, type):
        changed = {}
        for f in fields(obj):
            value = getattr(obj, f.name)
            mapped = _map_tree(value, fn)
            if mapped is not value:
                changed[f.name] = mapped
        if not changed:
            return obj
        clone = copy.copy(obj)
        for name, value in changed.items():
            # frozen dataclasses (SimulationResult) refuse setattr
            object.__setattr__(clone, name, value)
        return clone
    return obj


def shm_supported() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this host."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
    except Exception:
        return False
    probe.close()
    try:
        probe.unlink()  # unlink also unregisters from the resource tracker
    except Exception:  # pragma: no cover - already gone
        pass
    return True


def _untrack(shm) -> None:
    """Detach a segment from the resource tracker (creator hand-off).

    The creating worker hands ownership to the parent: ``SharedMemory(create=
    True)`` registered the segment, and the matching unregister must come
    from exactly one place — this call in the worker, because the parent's
    ``unlink()`` issues its own unregister.  Best-effort: tracker internals
    differ per platform.
    """
    try:  # pragma: no cover - tracker behaviour is platform-specific
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _ensure_tracked(shm) -> None:
    """Register an attached segment so a later ``unlink()`` balances.

    On Python 3.11 attaching (``SharedMemory(name=...)``) does not register
    with the resource tracker but ``unlink()`` always unregisters, which
    trips a tracker-side KeyError; on 3.12+ attach registers by itself and
    this extra register is idempotent (the tracker cache is a set).
    """
    try:  # pragma: no cover - tracker behaviour is platform-specific
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass


def pack_to_shm(values: list) -> tuple[list, str | None, list]:
    """Lift every shareable array in ``values`` into one shm block.

    Returns ``(skeletons, block_name, manifest)``.  ``block_name`` is
    ``None`` when there was nothing to lift (or shared memory is
    unavailable) — then ``skeletons`` is just ``values`` and the caller
    should fall back to plain pickling.  Object-dtype and zero-size arrays
    stay inline.
    """
    arrays: list[np.ndarray] = []
    manifest: list[tuple[tuple[int, ...], str, int]] = []
    offset = 0

    def lift(obj: Any) -> Any:
        nonlocal offset
        if not isinstance(obj, np.ndarray):
            return _MISS
        if obj.size == 0 or obj.dtype.hasobject:
            return obj
        arr = np.ascontiguousarray(obj)
        manifest.append((arr.shape, arr.dtype.str, offset))
        arrays.append(arr)
        offset += -(-arr.nbytes // _ALIGN) * _ALIGN
        return ArrayRef(len(arrays) - 1)

    skeletons = [_map_tree(v, lift) for v in values]
    if not arrays:
        return values, None, []

    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=offset)
    except Exception:
        return values, None, []
    try:
        for (shape, _, off), arr in zip(manifest, arrays):
            dst = np.ndarray(shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            np.copyto(dst, arr)
            del dst  # release the exported buffer so close() may proceed
        _untrack(shm)
        name = shm.name
    except Exception:
        shm.close()
        try:
            shm.unlink()  # unlink also unregisters from the resource tracker
        except Exception:
            pass
        return values, None, []
    shm.close()
    return skeletons, name, manifest


def unpack_from_shm(skeletons: list, name: str, manifest: list, *, unlink: bool = True) -> list:
    """Rebuild the values :func:`pack_to_shm` lifted, then free the block.

    Each array is materialized out of the block (results must outlive the
    segment), and the block is closed — and, by default, unlinked — even
    when a rebuild fails.  ``unlink=False`` leaves the segment alive for
    other readers (e.g. several pool workers grafting one shared window
    block); exactly one owner must then call :func:`discard_block` later.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if unlink:
        _ensure_tracked(shm)
    else:
        # A reader that will not unlink must not let the resource tracker
        # adopt the segment either — on 3.12+ attach auto-registers, and the
        # worker exiting would then reap the block under the other readers.
        _untrack(shm)
    try:
        arrays: list[np.ndarray] = []
        for shape, dtype, off in manifest:
            src = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            arrays.append(src.copy())
            del src

        def graft(obj: Any) -> Any:
            if isinstance(obj, ArrayRef):
                return arrays[obj.index]
            return _MISS

        return [_map_tree(s, graft) for s in skeletons]
    finally:
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass


def discard_block(name: str) -> None:
    """Unlink a block that will never be unpacked (error-path cleanup)."""
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
    except Exception:
        return
    _ensure_tracked(shm)
    shm.close()
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - racing cleanup
        pass
