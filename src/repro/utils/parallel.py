"""Process-parallel fan-out for parameter sweeps.

Parameter sweeps (e.g. the alpha sweep of Fig. 3 or the likelihood-range sweep
of Fig. 4) run many independent simulations; each is a pure function of its
config and seed, so they parallelize embarrassingly across processes.  We use
``multiprocessing`` with ``spawn``-safe top-level callables and fall back to
serial execution when only one worker is requested (keeps debugging and
coverage simple, and avoids fork overhead for small sweeps).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """A sensible worker count: CPUs minus one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Parameters
    ----------
    func:
        A picklable top-level callable (lambdas only work with ``workers=1``).
    items:
        The work items; materialized to preserve result order.
    workers:
        Number of processes.  ``None`` or ``1`` runs serially in-process;
        ``0`` resolves to :func:`default_workers`.  Regardless of the
        resolved count, a sweep of zero or one items always runs serially —
        spawning a process pool for a single simulation would only add
        fork/pickle overhead.
    chunksize:
        Forwarded to the executor's ``map`` for large item counts.

    Returns
    -------
    list
        Results in the same order as ``items``.
    """
    work: Sequence[T] = list(items)
    if workers == 0:
        workers = default_workers()
    if workers is None or workers <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(workers, len(work))) as pool:
        return list(pool.map(func, work, chunksize=chunksize))
