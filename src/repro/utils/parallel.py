"""Process-parallel fan-out for replication sweeps and parameter sweeps.

Parameter sweeps (e.g. the alpha sweep of Fig. 3 or the likelihood-range sweep
of Fig. 4) and multi-seed replications run many independent simulations; each
is a pure function of its config and seed, so they parallelize embarrassingly
across processes.  We use ``concurrent.futures.ProcessPoolExecutor`` with
``spawn``-safe top-level callables.

Determinism contract
--------------------

:func:`parallel_map` guarantees that, for a ``func`` that is a pure function
of its item, the returned list is identical whatever ``workers`` resolves to:

- results are collected **in submission order**, never completion order;
- chunking only groups transport, it cannot reorder items;
- worker processes receive no shared mutable state — every item carries its
  full inputs (configs and integer seeds), so scheduling cannot leak
  randomness between tasks.

Failure surfacing: an exception inside a worker is re-raised in the parent as
:class:`ParallelExecutionError` naming the failing item's index (and, when
the caller provides ``label``, a human-readable description such as the
replication seed) together with the worker-side traceback — instead of a
bare pickled pool traceback.  When slot tracing is enabled in the failing
process (:mod:`repro.obs`), the error also carries the last trace record
built before the crash (``err.trace_record``), i.e. the slot state the
replication died in.

Observability: each chunk additionally reports the *delta* of the worker's
process-local metrics registry (:mod:`repro.obs.metrics`) accumulated while
running that chunk; the parent folds the deltas into its own global
registry, so ``global_registry().snapshot()`` after a parallel sweep equals
the serial run's metrics (delta-based merging stays correct when a pool
reuses worker processes across chunks).

Result transport: with ``transport="auto"`` (the default) a parallel run
moves the numpy payload of each chunk's results through one shared-memory
block (:mod:`repro.utils.shm`) instead of the pool's pickle pipe — workers
fill the block, the parent grafts the arrays back and unlinks it.  Values
are bit-identical either way; ``transport="pickle"`` keeps the plain pipe
(the fallback knob, also what any host without working shared memory
degrades to silently).

Fallbacks: ``workers=0`` (the parallel-by-default setting) resolves to all
CPU cores, but collapses to serial execution on a single-core host or on a
platform without process-pool support, so the default is always safe.  An
*explicit* ``workers=n`` (n >= 2) always uses a pool — tests rely on that to
exercise the parallel path even on one core.
"""

from __future__ import annotations

import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.utils import shm as shm_transport

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelExecutionError",
    "TRANSPORTS",
    "default_workers",
    "parallel_map",
    "process_pool_supported",
    "resolve_workers",
]

#: Valid ``transport`` arguments: "auto" uses shared memory when it works,
#: "shm" means the same (kept distinct for explicitness in CLIs), "pickle"
#: forces the plain pool pipe.
TRANSPORTS = ("auto", "shm", "pickle")


class ParallelExecutionError(RuntimeError):
    """A mapped task failed; identifies *which* item, not just that one did.

    Attributes
    ----------
    index:
        Position of the failing item in the input sequence.
    description:
        Caller-provided label for the item (e.g. ``"replication 3 (seed
        1234)"``) or a generic ``"item <index>"``.
    worker_traceback:
        The traceback text captured inside the worker process (empty when
        the failure happened in the parent, where ``__cause__`` is chained).
    trace_record:
        The last slot trace record built in the failing process when
        tracing was enabled there (see :mod:`repro.obs`), else ``None``.
    streams:
        Human-readable description of the derived RNG streams the failing
        item runs on (see :func:`repro.utils.rng.describe_streams`), when
        the caller provided a ``diagnostics`` callable — lets a failure be
        re-run standalone from the exact stream roots.  Empty otherwise.
    """

    def __init__(
        self,
        index: int,
        description: str,
        cause: str,
        worker_traceback: str = "",
        trace_record: dict | None = None,
        streams: str = "",
    ):
        self.index = index
        self.description = description
        self.worker_traceback = worker_traceback
        self.trace_record = trace_record
        self.streams = streams
        message = f"parallel task failed at {description}: {cause}"
        if streams:
            message += f"\nderived streams: {streams}"
        if trace_record is not None:
            message += (
                f"\nlast traced slot before failure: t={trace_record.get('t')} "
                f"policy={trace_record.get('policy')} "
                f"assigned={trace_record.get('assigned')}"
            )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback.rstrip()}"
        super().__init__(message)


def process_pool_supported() -> bool:
    """Whether this platform can run a process pool at all."""
    if sys.platform in ("emscripten", "wasi"):
        return False
    try:
        import multiprocessing

        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, NotImplementedError):  # pragma: no cover - exotic platforms
        return False


def default_workers() -> int:
    """``workers=0`` resolves to this: all CPU cores (at least one)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None, n_items: int | None = None) -> int:
    """Resolve a ``workers`` request to the effective process count.

    ``None``/``1`` → 1 (serial).  ``0`` → all cores, demoted to 1 when the
    host has a single core or lacks process-pool support.  An explicit
    ``n >= 2`` is honoured whenever pools are supported (even on one core:
    callers asking for a pool get a pool, which is what the determinism
    tests exercise).  When ``n_items`` is given the count is capped by it,
    and 0/1 items always run serially.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        resolved = default_workers() if process_pool_supported() else 1
    elif workers is None:
        resolved = 1
    else:
        resolved = workers if process_pool_supported() else 1
    if n_items is not None:
        if n_items <= 1:
            return 1
        resolved = min(resolved, n_items)
    return max(1, resolved)


def _run_chunk(
    payload: tuple[Callable[[T], R], int, Sequence[T], bool],
) -> list[tuple[str, object]]:
    """Worker: run one chunk, tagging each result ``("ok", value)`` or
    ``("err", (index, repr, traceback, trace_record))``.  Stops at the first
    failure — later items of the chunk are reported as skipped by the
    parent.  With shared-memory transport the ``"ok"`` values are replaced
    by one ``("shm_block", (skeletons, name, manifest))`` entry (see
    :mod:`repro.utils.shm`); packing failures fall back to inline values.
    The final ``("metrics", delta)`` entry carries the metrics this chunk
    added to the worker's process-local registry."""
    func, start, items, use_shm = payload
    before = obs_metrics.global_registry().snapshot()
    out: list[tuple[str, object]] = []
    for offset, item in enumerate(items):
        try:
            out.append(("ok", func(item)))
        except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
            out.append(
                (
                    "err",
                    (
                        start + offset,
                        repr(exc),
                        traceback.format_exc(),
                        obs_runtime.last_trace_record(),
                    ),
                )
            )
            break
    if use_shm:
        ok_values = [value for tag, value in out if tag == "ok"]
        skeletons, name, manifest = shm_transport.pack_to_shm(ok_values)
        if name is not None:
            rest = [entry for entry in out if entry[0] != "ok"]
            out = [("shm_block", (skeletons, name, manifest)), *rest]
    after = obs_metrics.global_registry().snapshot()
    out.append(("metrics", obs_metrics.diff_snapshots(after, before)))
    return out


def _describe(label: Callable[[int, T], str] | None, index: int, item: T) -> str:
    if label is None:
        return f"item {index}"
    try:
        return f"item {index} ({label(index, item)})"
    except Exception:  # pragma: no cover - a broken label must not mask the error
        return f"item {index}"


def _diagnose(diagnostics: Callable[[int, T], str] | None, index: int, item: T) -> str:
    if diagnostics is None:
        return ""
    try:
        return diagnostics(index, item)
    except Exception:  # pragma: no cover - diagnostics must not mask the error
        return ""


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    label: Callable[[int, T], str] | None = None,
    diagnostics: Callable[[int, T], str] | None = None,
    transport: str = "auto",
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Parameters
    ----------
    func:
        A picklable top-level callable (lambdas only work serially).
    items:
        The work items; materialized to preserve result order.
    workers:
        Number of processes.  ``None`` or ``1`` runs serially in-process;
        ``0`` resolves to all CPU cores but falls back to serial on a
        single-core host or a platform without process pools; an explicit
        ``n >= 2`` always uses a pool.  Regardless of the resolved count, a
        sweep of zero or one items runs serially — spawning a pool for a
        single simulation would only add fork/pickle overhead.
    chunksize:
        Items per worker task for large sweeps; grouping only affects
        transport, never result order.
    label:
        Optional ``(index, item) -> str`` used to name the failing item in
        :class:`ParallelExecutionError` (e.g. its replication seed).
    diagnostics:
        Optional ``(index, item) -> str`` attached as the error's
        ``streams`` text — by convention the item's derived RNG streams
        (:func:`repro.utils.rng.describe_streams`), so the exact failing
        streams can be re-derived standalone.  A raising diagnostics
        callable is ignored, never masking the original failure.
    transport:
        How parallel results travel back: ``"auto"``/``"shm"`` move the
        numpy payload through shared-memory blocks (bit-identical values,
        no array pickling), ``"pickle"`` forces the plain pool pipe.  Hosts
        without working shared memory degrade to pickling silently; serial
        runs ignore this.

    Returns
    -------
    list
        Results in the same order as ``items`` — independent of worker
        count and scheduling (see the module docstring).

    Raises
    ------
    ParallelExecutionError
        When ``func`` raises for any item; carries the item's index,
        ``label`` text, and the worker-side traceback.
    """
    work: Sequence[T] = list(items)
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    resolved = resolve_workers(workers, len(work))
    if resolved <= 1:
        out: list[R] = []
        for i, item in enumerate(work):
            try:
                out.append(func(item))
            except BaseException as exc:  # noqa: BLE001 - annotated and chained
                raise ParallelExecutionError(
                    i,
                    _describe(label, i, item),
                    repr(exc),
                    trace_record=obs_runtime.last_trace_record(),
                    streams=_diagnose(diagnostics, i, item),
                ) from exc
        return out

    use_shm = transport != "pickle"
    chunks = [
        (func, start, work[start : start + chunksize], use_shm)
        for start in range(0, len(work), chunksize)
    ]
    # A chunk is the unit of scheduling: with chunksize > 1 a tiny sweep can
    # produce fewer chunks than resolved workers, and every surplus process
    # would be forked only to sit idle.  Clamp the pool to the work that
    # exists (resolve_workers already capped by item count for chunksize 1).
    resolved = min(resolved, len(chunks))
    with ProcessPoolExecutor(max_workers=resolved) as pool:
        # Submission order == collection order: futures are resolved in the
        # order the chunks were created, so scheduling cannot reorder results.
        futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        results: list[R] = []
        consumed = 0
        try:
            for (_, start, chunk_items, _), future in zip(chunks, futures):
                try:
                    tagged = future.result()
                except BaseException as exc:  # e.g. BrokenProcessPool, pickling errors
                    raise ParallelExecutionError(
                        start,
                        _describe(label, start, chunk_items[0]),
                        repr(exc),
                        streams=_diagnose(diagnostics, start, chunk_items[0]),
                    ) from exc
                for tag, value in tagged:
                    if tag == "metrics":
                        obs_metrics.global_registry().merge_snapshot(value)  # type: ignore[arg-type]
                    elif tag == "shm_block":
                        skeletons, name, manifest = value  # type: ignore[misc]
                        results.extend(
                            shm_transport.unpack_from_shm(skeletons, name, manifest)
                        )
                    elif tag == "err":
                        index, cause, tb, trace_record = value  # type: ignore[misc]
                        raise ParallelExecutionError(
                            index,
                            _describe(label, index, work[index]),
                            cause,
                            tb,
                            trace_record=trace_record,
                            streams=_diagnose(diagnostics, index, work[index]),
                        )
                    else:
                        results.append(value)  # type: ignore[arg-type]
                consumed += 1
        except BaseException:
            # Unconsumed chunks may hold shm blocks the loop will never
            # unpack; drain their futures and free the segments before
            # surfacing the error.
            for future in futures[consumed:]:
                try:
                    tagged = future.result()
                except BaseException:
                    continue
                for tag, value in tagged:
                    if tag == "shm_block":
                        shm_transport.discard_block(value[1])
            raise
        return results
