"""Process-parallel fan-out for replication sweeps and parameter sweeps.

Parameter sweeps (e.g. the alpha sweep of Fig. 3 or the likelihood-range sweep
of Fig. 4) and multi-seed replications run many independent simulations; each
is a pure function of its config and seed, so they parallelize embarrassingly
across processes.  We use ``concurrent.futures.ProcessPoolExecutor`` with
``spawn``-safe top-level callables.

Determinism contract
--------------------

:func:`parallel_map` guarantees that, for a ``func`` that is a pure function
of its item, the returned list is identical whatever ``workers`` resolves to:

- results are collected **in submission order**, never completion order;
- chunking only groups transport, it cannot reorder items;
- worker processes receive no shared mutable state — every item carries its
  full inputs (configs and integer seeds), so scheduling cannot leak
  randomness between tasks.

Failure surfacing: an exception inside a worker is re-raised in the parent as
:class:`ParallelExecutionError` naming the failing item's index (and, when
the caller provides ``label``, a human-readable description such as the
replication seed) together with the worker-side traceback — instead of a
bare pickled pool traceback.  When slot tracing is enabled in the failing
process (:mod:`repro.obs`), the error also carries the last trace record
built before the crash (``err.trace_record``), i.e. the slot state the
replication died in.

Observability: each chunk additionally reports the *delta* of the worker's
process-local metrics registry (:mod:`repro.obs.metrics`) accumulated while
running that chunk; the parent folds the deltas into its own global
registry, so ``global_registry().snapshot()`` after a parallel sweep equals
the serial run's metrics (delta-based merging stays correct when a pool
reuses worker processes across chunks).

Fallbacks: ``workers=0`` (the parallel-by-default setting) resolves to all
CPU cores, but collapses to serial execution on a single-core host or on a
platform without process-pool support, so the default is always safe.  An
*explicit* ``workers=n`` (n >= 2) always uses a pool — tests rely on that to
exercise the parallel path even on one core.
"""

from __future__ import annotations

import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelExecutionError",
    "default_workers",
    "parallel_map",
    "process_pool_supported",
    "resolve_workers",
]


class ParallelExecutionError(RuntimeError):
    """A mapped task failed; identifies *which* item, not just that one did.

    Attributes
    ----------
    index:
        Position of the failing item in the input sequence.
    description:
        Caller-provided label for the item (e.g. ``"replication 3 (seed
        1234)"``) or a generic ``"item <index>"``.
    worker_traceback:
        The traceback text captured inside the worker process (empty when
        the failure happened in the parent, where ``__cause__`` is chained).
    trace_record:
        The last slot trace record built in the failing process when
        tracing was enabled there (see :mod:`repro.obs`), else ``None``.
    """

    def __init__(
        self,
        index: int,
        description: str,
        cause: str,
        worker_traceback: str = "",
        trace_record: dict | None = None,
    ):
        self.index = index
        self.description = description
        self.worker_traceback = worker_traceback
        self.trace_record = trace_record
        message = f"parallel task failed at {description}: {cause}"
        if trace_record is not None:
            message += (
                f"\nlast traced slot before failure: t={trace_record.get('t')} "
                f"policy={trace_record.get('policy')} "
                f"assigned={trace_record.get('assigned')}"
            )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback.rstrip()}"
        super().__init__(message)


def process_pool_supported() -> bool:
    """Whether this platform can run a process pool at all."""
    if sys.platform in ("emscripten", "wasi"):
        return False
    try:
        import multiprocessing

        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, NotImplementedError):  # pragma: no cover - exotic platforms
        return False


def default_workers() -> int:
    """``workers=0`` resolves to this: all CPU cores (at least one)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None, n_items: int | None = None) -> int:
    """Resolve a ``workers`` request to the effective process count.

    ``None``/``1`` → 1 (serial).  ``0`` → all cores, demoted to 1 when the
    host has a single core or lacks process-pool support.  An explicit
    ``n >= 2`` is honoured whenever pools are supported (even on one core:
    callers asking for a pool get a pool, which is what the determinism
    tests exercise).  When ``n_items`` is given the count is capped by it,
    and 0/1 items always run serially.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        resolved = default_workers() if process_pool_supported() else 1
    elif workers is None:
        resolved = 1
    else:
        resolved = workers if process_pool_supported() else 1
    if n_items is not None:
        if n_items <= 1:
            return 1
        resolved = min(resolved, n_items)
    return max(1, resolved)


def _run_chunk(
    payload: tuple[Callable[[T], R], int, Sequence[T]],
) -> list[tuple[str, object]]:
    """Worker: run one chunk, tagging each result ``("ok", value)`` or
    ``("err", (index, repr, traceback, trace_record))``.  Stops at the first
    failure — later items of the chunk are reported as skipped by the
    parent.  The final ``("metrics", delta)`` entry carries the metrics
    this chunk added to the worker's process-local registry."""
    func, start, items = payload
    before = obs_metrics.global_registry().snapshot()
    out: list[tuple[str, object]] = []
    for offset, item in enumerate(items):
        try:
            out.append(("ok", func(item)))
        except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
            out.append(
                (
                    "err",
                    (
                        start + offset,
                        repr(exc),
                        traceback.format_exc(),
                        obs_runtime.last_trace_record(),
                    ),
                )
            )
            break
    after = obs_metrics.global_registry().snapshot()
    out.append(("metrics", obs_metrics.diff_snapshots(after, before)))
    return out


def _describe(label: Callable[[int, T], str] | None, index: int, item: T) -> str:
    if label is None:
        return f"item {index}"
    try:
        return f"item {index} ({label(index, item)})"
    except Exception:  # pragma: no cover - a broken label must not mask the error
        return f"item {index}"


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    label: Callable[[int, T], str] | None = None,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Parameters
    ----------
    func:
        A picklable top-level callable (lambdas only work serially).
    items:
        The work items; materialized to preserve result order.
    workers:
        Number of processes.  ``None`` or ``1`` runs serially in-process;
        ``0`` resolves to all CPU cores but falls back to serial on a
        single-core host or a platform without process pools; an explicit
        ``n >= 2`` always uses a pool.  Regardless of the resolved count, a
        sweep of zero or one items runs serially — spawning a pool for a
        single simulation would only add fork/pickle overhead.
    chunksize:
        Items per worker task for large sweeps; grouping only affects
        transport, never result order.
    label:
        Optional ``(index, item) -> str`` used to name the failing item in
        :class:`ParallelExecutionError` (e.g. its replication seed).

    Returns
    -------
    list
        Results in the same order as ``items`` — independent of worker
        count and scheduling (see the module docstring).

    Raises
    ------
    ParallelExecutionError
        When ``func`` raises for any item; carries the item's index,
        ``label`` text, and the worker-side traceback.
    """
    work: Sequence[T] = list(items)
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    resolved = resolve_workers(workers, len(work))
    if resolved <= 1:
        out: list[R] = []
        for i, item in enumerate(work):
            try:
                out.append(func(item))
            except BaseException as exc:  # noqa: BLE001 - annotated and chained
                raise ParallelExecutionError(
                    i,
                    _describe(label, i, item),
                    repr(exc),
                    trace_record=obs_runtime.last_trace_record(),
                ) from exc
        return out

    chunks = [
        (func, start, work[start : start + chunksize])
        for start in range(0, len(work), chunksize)
    ]
    with ProcessPoolExecutor(max_workers=resolved) as pool:
        # Submission order == collection order: futures are resolved in the
        # order the chunks were created, so scheduling cannot reorder results.
        futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        results: list[R] = []
        for (_, start, chunk_items), future in zip(chunks, futures):
            try:
                tagged = future.result()
            except BaseException as exc:  # e.g. BrokenProcessPool, pickling errors
                raise ParallelExecutionError(
                    start, _describe(label, start, chunk_items[0]), repr(exc)
                ) from exc
            for tag, value in tagged:
                if tag == "metrics":
                    obs_metrics.global_registry().merge_snapshot(value)  # type: ignore[arg-type]
                elif tag == "err":
                    index, cause, tb, trace_record = value  # type: ignore[misc]
                    raise ParallelExecutionError(
                        index,
                        _describe(label, index, work[index]),
                        cause,
                        tb,
                        trace_record=trace_record,
                    )
                else:
                    results.append(value)  # type: ignore[arg-type]
        return results
