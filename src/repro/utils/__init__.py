"""Shared utilities: deterministic RNG plumbing, validation, timing, parallel sweeps.

Everything stochastic in :mod:`repro` draws from a :class:`numpy.random.Generator`
handed down from a single root seed via :class:`RngFactory`, so that every
simulation, policy, and experiment is exactly reproducible.
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
    require,
)
from repro.utils.timing import Span, Stopwatch, monotonic
from repro.utils.parallel import parallel_map

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
    "require",
    "Span",
    "Stopwatch",
    "monotonic",
    "parallel_map",
]
