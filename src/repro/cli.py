"""Command-line interface: regenerate any paper artifact from the shell.

Usage (module form)::

    python -m repro fig2a --scale small --horizon 1000
    python -m repro fig3 --workers 0
    python -m repro run --policies Oracle LFSC Random --plot
    python -m repro ablations --study lagrangian
    python -m repro replicate --seeds 8 --policies LFSC vUCB Random

Sweeps and replications are process-parallel by default (``--workers 0`` =
one process per CPU core, with serial fallback on single-core hosts); pass
``--workers 1`` to force serial execution — per-seed results are
bit-identical either way (see DESIGN.md, "Determinism contract").

Every subcommand prints the same rows/series the paper reports (via the
harnesses in :mod:`repro.experiments.figures`) and can render an ASCII chart
(``--plot``) or persist raw series (``--save PATH``).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analysis.ascii_plot import ascii_plot
from repro.experiments.ablations import (
    ablation_adaptive_partition,
    ablation_assignment_mode,
    ablation_lagrangian,
    ablation_partition_granularity,
)
from repro.experiments.figures import (
    FigureOutput,
    fig2_violations,
    fig2a_cumulative_reward,
    fig2b_per_slot_reward,
    fig3_alpha_sweep,
    fig4_likelihood_sweep,
    performance_ratio_table,
)
from repro.experiments.io import save_results
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    run_experiment,
)
from repro.metrics.summary import comparison_rows

__all__ = ["main", "build_parser"]


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    cfg = (
        ExperimentConfig.paper()
        if args.scale == "paper"
        else ExperimentConfig.small()
    )
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    return cfg.with_overrides(**overrides) if overrides else cfg


def _emit(out: FigureOutput, args: argparse.Namespace) -> None:
    print(out.table())
    if args.plot and out.series:
        plot_series = {
            k: v for k, v in out.series.items() if k != "x"
        }
        print()
        print(ascii_plot(plot_series, title=out.name))
    if args.save and out.results is not None:
        npz, js = save_results(out.results, args.save)
        print(f"\nsaved raw series: {npz}, {js}")


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", choices=("small", "paper"), default="small")
    common.add_argument("--horizon", type=int, default=None)
    common.add_argument("--seed", type=int, default=None)
    common.add_argument("--workers", type=int, default=0, help="0 = all CPUs, 1 = serial")
    common.add_argument("--plot", action="store_true", help="render an ASCII chart")
    common.add_argument("--save", default=None, help="persist raw series to PATH.{npz,json}")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="LFSC reproduction — regenerate the paper's evaluation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", parents=[common], help="run a policy comparison and print the summary"
    )
    run_p.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))

    for name, help_text in (
        ("fig2a", "cumulative compound reward (Fig. 2a)"),
        ("fig2b", "per-slot compound reward (Fig. 2b)"),
        ("fig2-violations", "cumulative violations + early ratios"),
        ("ratio", "performance ratio table (§5)"),
    ):
        sub.add_parser(name, parents=[common], help=help_text)

    fig3_p = sub.add_parser("fig3", parents=[common], help="alpha sweep (Fig. 3)")
    fig3_p.add_argument(
        "--alpha-fractions",
        nargs="+",
        type=float,
        default=[0.65, 0.70, 0.75, 0.80, 0.85],
    )

    fig4_p = sub.add_parser("fig4", parents=[common], help="likelihood-range sweep (Fig. 4)")
    fig4_p.add_argument("--v-lows", nargs="+", type=float, default=[0.0, 0.25, 0.5, 0.75])

    abl_p = sub.add_parser("ablations", parents=[common], help="LFSC design-choice ablations")
    abl_p.add_argument(
        "--study",
        choices=("lagrangian", "assignment", "partition", "adaptive", "all"),
        default="all",
    )

    rep_p = sub.add_parser(
        "report", parents=[common], help="run the harnesses and write a markdown report"
    )
    rep_p.add_argument("--out", default="results/report.md")

    repl_p = sub.add_parser(
        "replicate",
        parents=[common],
        help="multi-seed replication with confidence intervals (parallel by default)",
    )
    repl_p.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))
    repl_p.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="replication count; seeds derive from --seed via the frozen stream contract",
    )
    repl_p.add_argument(
        "--seed-list",
        nargs="+",
        type=int,
        default=None,
        help="explicit seeds (overrides --seeds; used verbatim)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = _config_from_args(args)
    workers = args.workers

    if args.command == "run":
        results = run_experiment(cfg, tuple(args.policies), workers=workers)
        out = FigureOutput(
            name="run",
            series={n: r.cumulative_reward for n, r in results.items()},
            rows=comparison_rows(results),
            results=results,
        )
        _emit(out, args)
    elif args.command == "fig2a":
        _emit(fig2a_cumulative_reward(cfg, workers=workers), args)
    elif args.command == "fig2b":
        _emit(fig2b_per_slot_reward(cfg, workers=workers), args)
    elif args.command == "fig2-violations":
        _emit(fig2_violations(cfg, workers=workers), args)
    elif args.command == "ratio":
        _emit(performance_ratio_table(cfg, workers=workers), args)
    elif args.command == "fig3":
        alphas = tuple(round(f * cfg.capacity, 3) for f in args.alpha_fractions)
        _emit(fig3_alpha_sweep(cfg, alphas=alphas, workers=workers), args)
    elif args.command == "fig4":
        _emit(fig4_likelihood_sweep(cfg, v_lows=tuple(args.v_lows), workers=workers), args)
    elif args.command == "ablations":
        studies = {
            "lagrangian": ablation_lagrangian,
            "assignment": ablation_assignment_mode,
            "partition": ablation_partition_granularity,
            "adaptive": ablation_adaptive_partition,
        }
        names = list(studies) if args.study == "all" else [args.study]
        for name in names:
            print(f"\n=== ablation: {name} ===")
            _emit(studies[name](cfg, workers=workers), args)
    elif args.command == "replicate":
        from repro.experiments.replication import replicate, replication_rows
        from repro.metrics.summary import format_table

        seeds = args.seed_list if args.seed_list is not None else args.seeds
        agg = replicate(cfg, tuple(args.policies), seeds=seeds, workers=workers)
        n = agg[args.policies[0]]["total_reward"].n
        print(f"[replicate] mean ± 95% CI over {n} seeds (base seed {cfg.seed})\n")
        print(format_table(replication_rows(agg), precision=1))
    elif args.command == "report":
        from pathlib import Path

        from repro.experiments.report import evaluate_shapes, render_report

        shared = run_experiment(cfg, DEFAULT_POLICIES, workers=workers)
        outputs = [
            fig2a_cumulative_reward(cfg, results=shared),
            fig2_violations(cfg, results=shared),
            performance_ratio_table(cfg, results=shared),
        ]
        checks = evaluate_shapes(outputs)
        text = render_report(outputs, checks)
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text)
        print(text)
        print(f"\nwrote {out_path}")
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
