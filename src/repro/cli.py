"""Command-line interface: regenerate any paper artifact from the shell.

Usage (module form)::

    python -m repro fig2a --scale small --horizon 1000
    python -m repro fig3 --workers 0
    python -m repro run --policies Oracle LFSC Random --plot
    python -m repro run --trace results/trace.jsonl --trace-sample 10
    python -m repro trace results/trace.jsonl
    python -m repro ablations --study lagrangian
    python -m repro replicate --seeds 8 --policies LFSC vUCB Random
    python -m repro report --manifest
    python -m repro scenarios list
    python -m repro run --scenario vehicular

Scenarios (DESIGN.md §11): ``repro scenarios list`` / ``describe NAME``
inspect the declarative scenario registry, and every run-type subcommand
accepts ``--scenario NAME_OR_PATH`` (a registered name or a TOML/JSON
scenario config file) in place of ``--scale``.

Sweeps and replications are process-parallel by default (``--workers 0`` =
one process per CPU core, with serial fallback on single-core hosts); pass
``--workers 1`` to force serial execution — per-seed results are
bit-identical either way (see DESIGN.md, "Determinism contract").

Every subcommand prints the same rows/series the paper reports (via the
harnesses in :mod:`repro.experiments.figures`) and can render an ASCII chart
(``--plot``) or persist raw series (``--save PATH``).

Observability (DESIGN.md §7): ``--trace PATH`` records one structured JSONL
record per slot (``--trace-sample N`` keeps every N-th) without perturbing
results — trajectories are bit-identical with tracing on or off; a ``.gz``
suffix gzip-compresses the trace transparently and a ``.zl`` suffix writes
seekable zlib frames; ``repro trace PATH`` summarizes a recorded file
(compressed or not — the format is sniffed from the file's magic bytes).
Persisted artifacts (``--save``, ``report``, ``replicate``) emit a
``manifest.json`` capturing config, seeds, git SHA, host, and library
versions.

Cross-run reuse (DESIGN.md §9): ``--cache-dir DIR`` persists the Oracle
solver cache on disk across runs and sessions (``$REPRO_CACHE_DIR`` is the
environment fallback), and ``--shared-window/--no-shared-window`` toggles
the cross-replication window cache — both bit-identical, only faster.

Every run-type subcommand shares one option group (declared once in
:func:`_add_run_options`): ``--scale/--scenario/--horizon/--seed/--workers/--window/
--engine/--transport/--trace/--trace-sample/--manifest-dir/--no-oracle-cache/
--cache-dir/--shared-window/--no-shared-window`` plus ``--plot/--save``.  The pre-unification spellings (``--trace-path``,
``--sample-every``, ``--result-transport``) are kept as hidden aliases that
print a deprecation note.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.ascii_plot import ascii_plot
from repro.experiments.ablations import (
    ablation_adaptive_partition,
    ablation_assignment_mode,
    ablation_lagrangian,
    ablation_partition_granularity,
)
from repro.experiments.figures import (
    FigureOutput,
    fig2_violations,
    fig2a_cumulative_reward,
    fig2b_per_slot_reward,
    fig3_alpha_sweep,
    fig4_likelihood_sweep,
    performance_ratio_table,
)
from repro.experiments.io import save_results
from repro.experiments.runner import (
    ExperimentConfig,
    run_experiment,
)
from repro.metrics.summary import comparison_rows
from repro.policies import DEFAULT_POLICIES

__all__ = ["main", "build_parser"]


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    if getattr(args, "scenario", None) is not None:
        from repro import scenarios

        cfg = scenarios.resolve_scenario(args.scenario).config()
    else:
        cfg = (
            ExperimentConfig.paper()
            if args.scale == "paper"
            else ExperimentConfig.small()
        )
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "window", None) is not None:
        overrides["window"] = args.window
    if getattr(args, "no_oracle_cache", False):
        overrides["oracle_cache"] = False
    if getattr(args, "cache_dir", None) is not None:
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "shared_window", None) is not None:
        overrides["shared_window"] = args.shared_window
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    if getattr(args, "engine", None) is not None:
        cfg = cfg.with_lfsc_overrides(engine=args.engine)
    return cfg


def _emit(out: FigureOutput, args: argparse.Namespace, cfg: ExperimentConfig | None = None) -> None:
    print(out.table())
    if args.plot and out.series:
        plot_series = {
            k: v for k, v in out.series.items() if k != "x"
        }
        print()
        print(ascii_plot(plot_series, title=out.name))
    if args.save and out.results is not None:
        npz, js = save_results(out.results, args.save, config=cfg)
        print(f"\nsaved raw series: {npz}, {js} (+ manifest)")


class _DeprecatedAlias(argparse.Action):
    """Hidden alias for a renamed option: forwards to the new spelling."""

    def __init__(self, option_strings, dest, new_option, **kwargs):
        self.new_option = new_option
        kwargs["help"] = argparse.SUPPRESS
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"note: {option_string} is deprecated, use {self.new_option}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The one shared option group every run-type subcommand inherits.

    Declared once so ``run``, the figure harnesses, ``ablations``,
    ``report``, and ``replicate`` stay option-compatible; the trace
    subcommand is the only one that opts out (it reads traces, it does not
    produce them).
    """
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_PATH",
        help="run a registered scenario (see `repro scenarios list`) or a "
        "TOML/JSON scenario config file; takes precedence over --scale",
    )
    parser.add_argument("--horizon", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=0, help="0 = all CPUs, 1 = serial")
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="W",
        help="slot-streaming window: precompute W slots at a time "
        "(0 = per-slot, default = simulator's choice; results are "
        "bit-identical for every W)",
    )
    parser.add_argument(
        "--engine",
        choices=("batched", "reference"),
        default=None,
        help="LFSC slot-engine implementation (default: the config's choice, "
        "normally 'batched'; results are bit-identical either way)",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="parallel result transport: shared-memory blocks (auto/shm) "
        "or the pool's pickle pipe; values are bit-identical either way",
    )
    parser.add_argument(
        "--no-oracle-cache",
        action="store_true",
        help="disable the Oracle solver cache (DESIGN.md §8); results are "
        "bit-identical, only slower",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the Oracle solver cache to DIR across runs "
        "(DESIGN.md §9; default: $REPRO_CACHE_DIR, else memory-only; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--shared-window",
        dest="shared_window",
        action="store_true",
        default=None,
        help="share precomputed slot windows across policies, sweep points, "
        "and worker processes (DESIGN.md §9; the default)",
    )
    parser.add_argument(
        "--no-shared-window",
        dest="shared_window",
        action="store_false",
        help="disable the shared window cache; results are bit-identical, "
        "only slower on sweeps",
    )
    parser.add_argument("--plot", action="store_true", help="render an ASCII chart")
    parser.add_argument("--save", default=None, help="persist raw series to PATH.{npz,json}")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured JSONL slot trace to PATH (off by default; "
        "a .gz suffix gzip-compresses the file, a .zl suffix writes "
        "zlib frames)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="record every N-th slot (default 1 = all slots)",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write DIR/manifest.json with the run's provenance "
        "(replicate defaults to results/)",
    )
    # Pre-unification spellings, kept as hidden aliases (deprecation note on
    # use).  One declaration here keeps them consistent everywhere too.
    parser.add_argument(
        "--trace-path", dest="trace", action=_DeprecatedAlias, new_option="--trace"
    )
    parser.add_argument(
        "--sample-every",
        dest="trace_sample",
        type=int,
        action=_DeprecatedAlias,
        new_option="--trace-sample",
    )
    parser.add_argument(
        "--result-transport",
        dest="transport",
        choices=("auto", "shm", "pickle"),
        action=_DeprecatedAlias,
        new_option="--transport",
    )


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    _add_run_options(common)

    parser = argparse.ArgumentParser(
        prog="repro",
        description="LFSC reproduction — regenerate the paper's evaluation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", parents=[common], help="run a policy comparison and print the summary"
    )
    run_p.add_argument(
        "--policies",
        nargs="+",
        default=list(DEFAULT_POLICIES),
        help="registry policy specs — names (LFSC, vUCB) or parameterized "
        "forms like 'linucb(alpha=0.5)'; see 'repro policies list'",
    )

    for name, help_text in (
        ("fig2a", "cumulative compound reward (Fig. 2a)"),
        ("fig2b", "per-slot compound reward (Fig. 2b)"),
        ("fig2-violations", "cumulative violations + early ratios"),
        ("ratio", "performance ratio table (§5)"),
    ):
        sub.add_parser(name, parents=[common], help=help_text)

    fig3_p = sub.add_parser("fig3", parents=[common], help="alpha sweep (Fig. 3)")
    fig3_p.add_argument(
        "--alpha-fractions",
        nargs="+",
        type=float,
        default=[0.65, 0.70, 0.75, 0.80, 0.85],
    )

    fig4_p = sub.add_parser("fig4", parents=[common], help="likelihood-range sweep (Fig. 4)")
    fig4_p.add_argument("--v-lows", nargs="+", type=float, default=[0.0, 0.25, 0.5, 0.75])

    abl_p = sub.add_parser("ablations", parents=[common], help="LFSC design-choice ablations")
    abl_p.add_argument(
        "--study",
        choices=("lagrangian", "assignment", "partition", "adaptive", "all"),
        default="all",
    )

    rep_p = sub.add_parser(
        "report", parents=[common], help="run the harnesses and write a markdown report"
    )
    rep_p.add_argument("--out", default="results/report.md")
    rep_p.add_argument(
        "--manifest",
        action="store_true",
        help="also print the run manifest (always written next to --out)",
    )

    trace_p = sub.add_parser(
        "trace", help="summarize or diff JSONL slot traces recorded with --trace"
    )
    trace_p.add_argument("path", help="trace file (one JSON record per line)")
    trace_p.add_argument(
        "path_b",
        nargs="?",
        default=None,
        help="second trace file (with --diff: compare slot by slot)",
    )
    trace_p.add_argument(
        "--diff",
        action="store_true",
        help="compare two traces: first divergent slot and per-field deltas",
    )
    trace_p.add_argument(
        "--validate",
        action="store_true",
        help="check every record against the trace schema before summarizing",
    )

    serve_p = sub.add_parser(
        "serve",
        parents=[common],
        help="run the online offloading daemon (DESIGN.md §10)",
    )
    serve_p.add_argument("--policy", default="LFSC", help="policy to serve (default LFSC)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    serve_p.add_argument(
        "--checkpoint",
        dest="checkpoint_path",
        default=None,
        metavar="PATH",
        help="repro-checkpoint/v1 file for autosaves and the stop checkpoint",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="autosave every N served slots (requires --checkpoint)",
    )
    serve_p.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="restore the session from a checkpoint instead of starting fresh "
        "(config and policy come from the snapshot)",
    )
    serve_p.add_argument(
        "--drive",
        type=int,
        default=None,
        metavar="N",
        help="serve N synthetic decisions in-process, then checkpoint (if "
        "configured) and exit — no socket client needed",
    )

    scen_p = sub.add_parser(
        "scenarios",
        help="list or describe the registered scenario families (DESIGN.md §11)",
    )
    scen_sub = scen_p.add_subparsers(dest="scenario_command", required=True)
    scen_list = scen_sub.add_parser("list", help="one line per registered scenario")
    scen_list.add_argument("--tag", default=None, help="only scenarios carrying this tag")
    scen_desc = scen_sub.add_parser(
        "describe", help="params, defaults, tags, and content hash of one scenario"
    )
    scen_desc.add_argument("name", help="registered scenario name")

    pol_p = sub.add_parser(
        "policies",
        help="list or describe the registered offloading policies (DESIGN.md §13)",
    )
    pol_sub = pol_p.add_subparsers(dest="policy_command", required=True)
    pol_list = pol_sub.add_parser("list", help="one line per registered policy")
    pol_list.add_argument("--tag", default=None, help="only policies carrying this tag")
    pol_desc = pol_sub.add_parser(
        "describe", help="description, tags, and parameter schema of one policy"
    )
    pol_desc.add_argument("name", help="registered policy name")

    ckpt_p = sub.add_parser(
        "checkpoint", help="verify a repro-checkpoint/v1 file and print its summary"
    )
    ckpt_p.add_argument("path", help="checkpoint file to inspect")

    res_p = sub.add_parser(
        "resume",
        help="restore a session from a checkpoint and run it forward",
    )
    res_p.add_argument("path", help="checkpoint file to resume from")
    res_p.add_argument(
        "--slots",
        type=int,
        default=None,
        metavar="N",
        help="slots to advance (default: to the snapshot's horizon)",
    )
    res_p.add_argument(
        "--checkpoint",
        dest="checkpoint_out",
        default=None,
        metavar="PATH",
        help="write a fresh checkpoint after advancing",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="sharded metro-scale fleet run (DESIGN.md §12)",
    )
    fleet_p.add_argument(
        "--tiles",
        default="2x2",
        metavar="WxH",
        help="tile grid, e.g. 4x4 (default 2x2)",
    )
    fleet_p.add_argument("--scns-per-tile", type=int, default=8)
    fleet_p.add_argument("--wds-per-tile", type=int, default=120)
    fleet_p.add_argument(
        "--coverage",
        choices=("mobility", "sampler"),
        default="mobility",
        help="mobility = coupled tiles with border exchange; "
        "sampler = independent tiles (no-exchange fast path)",
    )
    fleet_p.add_argument("--shards", type=int, default=1)
    fleet_p.add_argument(
        "--mode",
        choices=("auto", "serial", "process"),
        default="auto",
        help="shard execution mode (auto: processes when shards >= 2)",
    )
    fleet_p.add_argument("--horizon", type=int, default=200)
    fleet_p.add_argument("--seed", type=int, default=0)
    fleet_p.add_argument("--truth-seed", type=int, default=7)
    fleet_p.add_argument("--policy", default="LFSC")
    fleet_p.add_argument("--engine", choices=("batched", "reference"), default="batched")
    fleet_p.add_argument(
        "--window",
        type=int,
        default=None,
        help="slot-streaming window (default: simulator default; 0 = per-slot)",
    )
    fleet_p.add_argument("--exchange-every", type=int, default=16)
    fleet_p.add_argument(
        "--mbs-capacity",
        type=int,
        default=0,
        help="per-tile MBS fallback admission limit (0 disables the tier)",
    )
    fleet_p.add_argument(
        "--verify",
        action="store_true",
        help="re-run unsharded and assert bit-identical per-tile series",
    )
    fleet_p.add_argument(
        "--json",
        action="store_true",
        help="print the summary + per-shard latency as JSON",
    )

    repl_p = sub.add_parser(
        "replicate",
        parents=[common],
        help="multi-seed replication with confidence intervals (parallel by default)",
    )
    repl_p.add_argument(
        "--policies",
        nargs="+",
        default=list(DEFAULT_POLICIES),
        help="registry policy specs — names (LFSC, vUCB) or parameterized "
        "forms like 'linucb(alpha=0.5)'; see 'repro policies list'",
    )
    repl_p.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="replication count; seeds derive from --seed via the frozen stream contract",
    )
    repl_p.add_argument(
        "--seed-list",
        nargs="+",
        type=int,
        default=None,
        help="explicit seeds (overrides --seeds; used verbatim)",
    )
    return parser


def _dispatch(args: argparse.Namespace, cfg: ExperimentConfig, workers: int) -> int:
    if getattr(args, "policies", None) is not None:
        # Fail closed before any simulation work: every spec must name a
        # registered policy with well-typed parameters.
        from repro import policies as policy_registry

        try:
            args.policies = list(policy_registry.normalize_specs(args.policies))
        except policy_registry.PolicyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "run":
        results = run_experiment(
            cfg, tuple(args.policies), workers=workers, transport=args.transport
        )
        out = FigureOutput(
            name="run",
            series={n: r.cumulative_reward for n, r in results.items()},
            rows=comparison_rows(results),
            results=results,
        )
        _emit(out, args, cfg)
    elif args.command == "fig2a":
        _emit(fig2a_cumulative_reward(cfg, workers=workers), args, cfg)
    elif args.command == "fig2b":
        _emit(fig2b_per_slot_reward(cfg, workers=workers), args, cfg)
    elif args.command == "fig2-violations":
        _emit(fig2_violations(cfg, workers=workers), args, cfg)
    elif args.command == "ratio":
        _emit(performance_ratio_table(cfg, workers=workers), args, cfg)
    elif args.command == "fig3":
        alphas = tuple(round(f * cfg.capacity, 3) for f in args.alpha_fractions)
        _emit(fig3_alpha_sweep(cfg, alphas=alphas, workers=workers), args, cfg)
    elif args.command == "fig4":
        _emit(
            fig4_likelihood_sweep(cfg, v_lows=tuple(args.v_lows), workers=workers),
            args,
            cfg,
        )
    elif args.command == "ablations":
        studies = {
            "lagrangian": ablation_lagrangian,
            "assignment": ablation_assignment_mode,
            "partition": ablation_partition_granularity,
            "adaptive": ablation_adaptive_partition,
        }
        names = list(studies) if args.study == "all" else [args.study]
        for name in names:
            print(f"\n=== ablation: {name} ===")
            _emit(studies[name](cfg, workers=workers), args, cfg)
    elif args.command == "serve":
        from repro.service import OnlineSession, PolicyDaemon

        if args.resume is not None:
            session = OnlineSession.from_checkpoint(args.resume)
            print(
                f"[serve] resumed {session.policy_name} at t={session.t}/"
                f"{session.horizon} from {args.resume}"
            )
        else:
            session = OnlineSession(cfg, policy=args.policy)
        daemon = PolicyDaemon(
            session,
            host=args.host,
            port=args.port,
            checkpoint_path=args.checkpoint_path,
            checkpoint_every=args.checkpoint_every,
        )
        if args.drive is not None:
            for _ in range(args.drive):
                reply = daemon.handle({"op": "decide"})
                if not reply.get("ok"):
                    print(f"[serve] decide failed: {reply.get('message')}")
                    return 1
            reply = daemon.handle({"op": "stop"})
            status = daemon.handle({"op": "status"})
            print(
                f"[serve] drove {args.drive} slots to t={session.t}; "
                f"p50={status['latency_p50_ms']:.3f}ms "
                f"p99={status['latency_p99_ms']:.3f}ms"
            )
            if reply.get("path"):
                print(f"[serve] checkpoint: {reply['path']}")
        else:
            host, port = daemon.start()
            print(
                f"[serve] {session.policy_name} listening on {host}:{port} "
                f"(t={session.t}/{session.horizon}); "
                "send {\"op\": \"stop\"} to exit"
            )
            daemon.serve_forever()
    elif args.command == "replicate":
        from repro.experiments.replication import replicate, replication_rows
        from repro.metrics.summary import format_table

        seeds = args.seed_list if args.seed_list is not None else args.seeds
        manifest_dir = args.manifest_dir if args.manifest_dir is not None else "results"
        agg = replicate(
            cfg,
            tuple(args.policies),
            seeds=seeds,
            workers=workers,
            transport=args.transport,
            manifest_dir=manifest_dir,
        )
        n = agg[args.policies[0]]["total_reward"].n
        print(f"[replicate] mean ± 95% CI over {n} seeds (base seed {cfg.seed})\n")
        print(format_table(replication_rows(agg), precision=1))
        print(f"\nwrote {Path(manifest_dir) / 'manifest.json'}")
    elif args.command == "report":
        import json

        from repro.experiments.report import evaluate_shapes, render_report
        from repro.obs.manifest import build_manifest

        shared = run_experiment(
            cfg, DEFAULT_POLICIES, workers=workers, transport=args.transport
        )
        outputs = [
            fig2a_cumulative_reward(cfg, results=shared),
            fig2_violations(cfg, results=shared),
            performance_ratio_table(cfg, results=shared),
        ]
        checks = evaluate_shapes(outputs)
        text = render_report(outputs, checks)
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text)
        manifest = build_manifest(
            kind="report", config=cfg, policies=list(DEFAULT_POLICIES)
        )
        manifest_path = out_path.parent / "manifest.json"
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        print(text)
        if args.manifest:
            print(json.dumps(manifest, indent=2, sort_keys=True))
        print(f"\nwrote {out_path} (+ {manifest_path})")
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)

    if args.manifest_dir is not None and args.command != "replicate":
        from repro.obs.manifest import write_manifest

        written = write_manifest(args.manifest_dir, kind=args.command, config=cfg)
        print(f"wrote {written}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "trace":
        from repro.analysis.trace_summary import (
            diff_trace_files,
            format_trace_diff,
            format_trace_summary,
            summarize_trace_file,
        )

        if args.diff or args.path_b is not None:
            if args.path_b is None:
                print("trace --diff needs two trace files: repro trace --diff A B")
                return 2
            if args.validate:
                from repro.obs.trace import iter_trace, validate_record

                for path in (args.path, args.path_b):
                    for rec in iter_trace(path):
                        validate_record(rec)
                print(f"schema OK: every record in {args.path} and {args.path_b} is valid")
            diff = diff_trace_files(args.path, args.path_b)
            print(format_trace_diff(diff, name_a=args.path, name_b=args.path_b))
            return 0 if diff["identical"] else 1
        if args.validate:
            from repro.obs.trace import iter_trace, validate_record

            for rec in iter_trace(args.path):
                validate_record(rec)
            print(f"schema OK: every record in {args.path} is valid")
        print(format_trace_summary(summarize_trace_file(args.path)))
        return 0

    if args.command == "scenarios":
        import json

        from repro import scenarios

        if args.scenario_command == "list":
            entries = scenarios.list_scenarios(tag=args.tag)
            if not entries:
                print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
                return 0
            width = max(len(s.name) for s in entries)
            for s in entries:
                tags = f"  [{', '.join(s.tags)}]" if s.tags else ""
                print(f"{s.name:<{width}}  {s.description}{tags}")
            return 0
        try:
            info = scenarios.describe(args.name)
        except scenarios.UnknownScenarioError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0

    if args.command == "policies":
        import json

        from repro import policies as policy_registry

        if args.policy_command == "list":
            entries = policy_registry.list_policies(tag=args.tag)
            if not entries:
                print("no policies registered" + (f" with tag {args.tag!r}" if args.tag else ""))
                return 0
            width = max(len(p.name) for p in entries)
            for p in entries:
                tags = f"  [{', '.join(p.tags)}]" if p.tags else ""
                print(f"{p.name:<{width}}  {p.description}{tags}")
            return 0
        try:
            info = policy_registry.describe(args.name)
        except policy_registry.UnknownPolicyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0

    if args.command == "checkpoint":
        import json

        from repro.service import CheckpointError, describe_checkpoint

        try:
            info = describe_checkpoint(args.path)
        except CheckpointError as exc:
            print(f"invalid checkpoint: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0

    if args.command == "resume":
        from repro.service import CheckpointError, OnlineSession

        try:
            session = OnlineSession.from_checkpoint(args.path)
        except CheckpointError as exc:
            print(f"invalid checkpoint: {exc}", file=sys.stderr)
            return 1
        start_t = session.t
        session.run(args.slots)
        print(
            f"[resume] {session.policy_name}: t={start_t} -> {session.t} "
            f"(horizon {session.horizon})"
        )
        if session.t > 0:
            summary = session.result().summary()
            print(
                f"[resume] total_reward={summary['total_reward']:.3f} "
                f"violations={summary['total_violations']:.3f}"
            )
        if args.checkpoint_out is not None:
            written = session.save(args.checkpoint_out)
            print(f"[resume] wrote {written}")
        return 0

    if args.command == "fleet":
        import json

        from repro import api

        try:
            tiles_x, tiles_y = (int(v) for v in args.tiles.lower().split("x"))
        except ValueError:
            print(f"error: --tiles expects WxH (e.g. 4x4), got {args.tiles!r}", file=sys.stderr)
            return 2
        result = api.run_fleet(
            tiles_x=tiles_x,
            tiles_y=tiles_y,
            scns_per_tile=args.scns_per_tile,
            wds_per_tile=args.wds_per_tile,
            coverage=args.coverage,
            horizon=args.horizon,
            seed=args.seed,
            truth_seed=args.truth_seed,
            policy=args.policy,
            engine=args.engine,
            window=args.window,
            exchange_every=args.exchange_every,
            mbs_capacity=args.mbs_capacity,
            shards=args.shards,
            mode=args.mode,
            verify=args.verify,
        )
        summary = result.summary()
        if args.json:
            summary["shard_latency"] = result.latency_rows()
            summary["verified"] = bool(args.verify and result.shards > 1)
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(
            f"[fleet] {result.config.tiles_x}x{result.config.tiles_y} tiles, "
            f"{summary['num_scns']} SCNs, horizon {summary['horizon']}, "
            f"{result.shards} shard(s) [{result.mode}]"
        )
        print(
            f"[fleet] {summary['decisions']} decisions in {summary['wall_s']:.2f}s "
            f"({summary['decisions_per_min']:,.0f}/min), "
            f"reward {summary['total_reward']:.1f}, "
            f"{summary['rounds']} round(s), {summary['migrants']} migrant(s)"
            + (" [independent fast path]" if result.independent else "")
        )
        for row in result.latency_rows():
            print(
                f"[fleet] shard {row['shard']} ({row['tiles']} tiles): decide "
                f"p50 {row['p50_ms']:.3f} ms  p90 {row['p90_ms']:.3f} ms  "
                f"p99 {row['p99_ms']:.3f} ms  ({row['count']} slots)"
            )
        if args.verify and result.shards > 1:
            print("[fleet] verified: sharded run matches the unsharded reference bit for bit")
        return 0

    cfg = _config_from_args(args)
    workers = args.workers

    if args.trace is not None:
        from repro.obs import observe

        with observe(trace_path=args.trace, sample_every=args.trace_sample):
            rc = _dispatch(args, cfg, workers)
        print(f"wrote trace: {args.trace}")
        return rc
    return _dispatch(args, cfg, workers)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
