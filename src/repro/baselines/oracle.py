"""The Oracle baseline — full knowledge of the system (paper §5).

"Oracle has a priori knowledge of the entire system.  In each time slot,
Oracle makes the best task offloading policy under the system constraints,
and it constitutes a performance upper bound to the other algorithms."

The Oracle receives the hidden :class:`~repro.env.processes.GroundTruth` at
construction and solves the per-slot problem (1) on the *expected* parameters
(ḡ, v̄, q̄).  Three solver modes trade exactness for speed:

- ``"lp"`` (default): solve the LP relaxation with soft QoS (minimum
  achievable violation), then round greedily on the fractional optimum and
  prune any SCN whose expected consumption exceeds β.  Milliseconds per slot
  at paper scale.
- ``"ilp"``: the exact two-stage integer program
  (:func:`repro.solvers.ilp.solve_two_stage_ilp`) — use on small instances
  and in tests.
- ``"greedy"``: a two-pass heuristic (reliability pass toward α, then reward
  pass up to capacity, both respecting β) — fastest, no LP solves; within a
  few percent of the LP oracle in our benchmarks.
- ``"dual"``: subgradient dual decomposition
  (:func:`repro.solvers.lagrangian.solve_dual_decomposition`) — the
  "LFSC with known means" reference; its gap to LFSC is pure learning cost.

:class:`UnconstrainedOraclePolicy` maximizes reward while *ignoring* (1c)
and (1d) — the limit vUCB/FML chase, useful as a reference line in Fig. 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.greedy import greedy_select
from repro.env.processes import GroundTruth
from repro.obs import runtime as obs_runtime
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.solvers.cache import SlotProblemCache, shared_cache
from repro.solvers.highs import solve_soft_qos
from repro.solvers.ilp import solve_two_stage_ilp
from repro.solvers.lagrangian import solve_dual_decomposition
from repro.solvers.lp import SlotProblem, solve_lp_relaxation
from repro.utils.validation import require

__all__ = [
    "OraclePolicy",
    "UnconstrainedOraclePolicy",
    "build_slot_problem",
    "build_slot_problem_fast",
]


def build_slot_problem(
    slot: SlotObservation, truth: GroundTruth, capacity: int, alpha: float, beta: float
) -> SlotProblem:
    """Assemble the edge-form per-slot problem from the ground-truth means."""
    contexts = slot.tasks.contexts
    exp_g = truth.expected_compound(slot.t, contexts)
    mu_u, p_v, mu_q = truth.means(slot.t, contexts)
    scn_parts, task_parts = [], []
    for m, cov in enumerate(slot.coverage):
        cov = np.asarray(cov, dtype=np.int64)
        scn_parts.append(np.full(cov.size, m, dtype=np.int64))
        task_parts.append(cov)
    edge_scn = np.concatenate(scn_parts) if scn_parts else np.empty(0, np.int64)
    edge_task = np.concatenate(task_parts) if task_parts else np.empty(0, np.int64)
    return SlotProblem(
        edge_scn=edge_scn,
        edge_task=edge_task,
        g=exp_g[edge_scn, edge_task],
        v=p_v[edge_scn, edge_task],
        q=mu_q[edge_scn, edge_task],
        num_scns=slot.num_scns,
        num_tasks=len(slot.tasks),
        capacity=capacity,
        alpha=alpha,
        beta=beta,
    )


def build_slot_problem_fast(
    slot: SlotObservation, truth: GroundTruth, capacity: int, alpha: float, beta: float
) -> SlotProblem:
    """Assemble the slot problem without dense ``(M, n)`` truth tables.

    Bit-identical to :func:`build_slot_problem` (the pair-wise truth lookups
    gather the same grid cells with the same arithmetic — test-gated), but
    evaluates only the E coverage edges instead of the full M×n tables, and
    reuses a windowed slot's precomputed edge arrays and truth cells when
    present.  Used by the cached Oracle path; the cold path keeps the dense
    reference build.
    """
    stats_fn = getattr(truth, "slot_pair_stats", None)
    if stats_fn is None:
        return build_slot_problem(slot, truth, capacity, alpha, beta)
    n = len(slot.tasks)
    edges = getattr(slot, "edges", None)
    if edges is not None and edges.num_tasks == n:
        # Windowed slots: coverage was (segment-sorted and) concatenated at
        # precompute time; the slot's coverage lists alias the same arrays.
        edge_scn, edge_task = edges.scn, edges.task
    else:
        cov_parts = [np.asarray(c, dtype=np.int64) for c in slot.coverage]
        lengths = np.fromiter(
            (c.shape[0] for c in cov_parts), dtype=np.int64, count=len(cov_parts)
        )
        edge_scn = np.repeat(np.arange(len(cov_parts), dtype=np.int64), lengths)
        edge_task = (
            np.concatenate(cov_parts) if cov_parts else np.empty(0, np.int64)
        )
    truth_cells = getattr(slot, "truth_cells", None)
    cells = truth_cells[edge_task] if truth_cells is not None else None
    exp_g, p_v, mu_q = stats_fn(
        slot.t, slot.tasks.contexts[edge_task], edge_scn, cells=cells
    )
    return SlotProblem(
        edge_scn=edge_scn,
        edge_task=edge_task,
        g=exp_g,
        v=p_v,
        q=mu_q,
        num_scns=slot.num_scns,
        num_tasks=n,
        capacity=capacity,
        alpha=alpha,
        beta=beta,
    )


def _edges_to_assignment(problem: SlotProblem, selected: np.ndarray) -> Assignment:
    return Assignment(scn=problem.edge_scn[selected], task=problem.edge_task[selected])


def _greedy_round(problem: SlotProblem, x: np.ndarray) -> Assignment:
    """Round a fractional LP solution by greedy on x, then prune for β.

    Greedy on the fractional values respects (1a)/(1b) exactly; the pruning
    pass drops the lowest reward-per-consumption tasks of any SCN whose
    expected consumption still exceeds β (the LP satisfied β fractionally,
    rounding can overshoot by at most one task's worth).
    """
    support = x > 1e-6
    coverage: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    edge_pos: list[np.ndarray] = []
    for m in range(problem.num_scns):
        rows = np.flatnonzero((problem.edge_scn == m) & support)
        coverage.append(problem.edge_task[rows])
        weights.append(x[rows])
        edge_pos.append(rows)
    assignment = greedy_select(coverage, weights, problem.capacity, problem.num_tasks)
    if len(assignment) == 0:
        return assignment

    # β-pruning per SCN on expected consumption.
    edge_lookup: dict[tuple[int, int], int] = {}
    for rows in edge_pos:
        for r in rows:
            edge_lookup[(int(problem.edge_scn[r]), int(problem.edge_task[r]))] = int(r)
    keep_scn: list[int] = []
    keep_task: list[int] = []
    for m in range(problem.num_scns):
        tasks = assignment.task[assignment.scn == m]
        if tasks.size == 0:
            continue
        rows = np.asarray([edge_lookup[(m, int(i))] for i in tasks])
        q = problem.q[rows]
        g = problem.g[rows]
        order = np.argsort(g / np.maximum(q, 1e-12))  # drop worst value-density first
        total_q = q.sum()
        drop = set()
        for j in order:
            if total_q <= problem.beta:
                break
            drop.add(int(j))
            total_q -= q[j]
        for j, task in enumerate(tasks):
            if j not in drop:
                keep_scn.append(m)
                keep_task.append(int(task))
    return Assignment(
        scn=np.asarray(keep_scn, dtype=np.int64), task=np.asarray(keep_task, dtype=np.int64)
    )


def _greedy_round_fast(problem: SlotProblem, x: np.ndarray) -> Assignment:
    """Vectorized :func:`_greedy_round` — identical output (test-gated).

    Exploits the build invariant that ``edge_scn`` is non-decreasing (edges
    are concatenated per SCN): the per-SCN support scan becomes one bincount
    split, and the β-pruning row lookup uses a sorted key instead of a
    Python dict over every support edge.
    """
    support = x > 1e-6
    sup_rows = np.flatnonzero(support)
    # Split the (ascending) support rows into per-SCN runs.
    counts = np.bincount(problem.edge_scn[sup_rows], minlength=problem.num_scns)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    coverage: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for m in range(problem.num_scns):
        rows = sup_rows[bounds[m] : bounds[m + 1]]
        coverage.append(problem.edge_task[rows])
        weights.append(x[rows])
    assignment = greedy_select(coverage, weights, problem.capacity, problem.num_tasks)
    if len(assignment) == 0:
        return assignment

    # β-pruning per SCN on expected consumption (same order of operations
    # as the reference; only the edge-row lookup is vectorized).
    key = problem.edge_scn * np.int64(max(problem.num_tasks, 1)) + problem.edge_task
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    keep_scn: list[int] = []
    keep_task: list[int] = []
    for m in range(problem.num_scns):
        tasks = assignment.task[assignment.scn == m]
        if tasks.size == 0:
            continue
        pos = np.searchsorted(sorted_key, m * np.int64(max(problem.num_tasks, 1)) + tasks)
        rows = order[pos]
        q = problem.q[rows]
        g = problem.g[rows]
        prune = np.argsort(g / np.maximum(q, 1e-12))  # drop worst value-density first
        total_q = q.sum()
        drop = set()
        for j in prune:
            if total_q <= problem.beta:
                break
            drop.add(int(j))
            total_q -= q[j]
        for j, task in enumerate(tasks):
            if j not in drop:
                keep_scn.append(m)
                keep_task.append(int(task))
    return Assignment(
        scn=np.asarray(keep_scn, dtype=np.int64), task=np.asarray(keep_task, dtype=np.int64)
    )


class OraclePolicy(OffloadingPolicy):
    """Per-slot optimal offloading with full knowledge of the ground truth.

    ``cache`` activates the solver caching layer (DESIGN.md §8): pass a
    :class:`~repro.solvers.cache.SlotProblemCache`, the string ``"shared"``
    for the process-wide instance, or ``None`` (default) for the cold
    reference path.  The cached path is bit-identical to cold — same
    assignments slot for slot — it only skips or accelerates work that is a
    pure function of the slot problem's content.  The simulation driver can
    also hand a cache down via :meth:`attach_solver_cache` (an explicit
    constructor argument wins).
    """

    def __init__(
        self,
        truth: GroundTruth,
        *,
        mode: str = "lp",
        cache: SlotProblemCache | str | None = None,
    ) -> None:
        super().__init__()
        require(
            mode in ("lp", "ilp", "greedy", "dual"), f"unknown oracle mode {mode!r}"
        )
        self.truth = truth
        self.mode = mode
        self.name = "Oracle" if mode == "lp" else f"Oracle-{mode}"
        if cache == "shared":
            cache = shared_cache()
        self.cache = cache
        self._cache_pinned = cache is not None

    def attach_solver_cache(self, cache: SlotProblemCache) -> None:
        """Driver handoff (see ``Simulation.solver_cache``); no-op when the
        policy was constructed with an explicit cache."""
        if not self._cache_pinned:
            self.cache = cache

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        if self.cache is not None:
            return self._select_cached(slot, network, self.cache)
        with obs_runtime.span("oracle.problem"):
            problem = build_slot_problem(
                slot, self.truth, network.capacity, network.alpha, network.beta
            )
        if self.mode == "ilp":
            with obs_runtime.span("oracle.solve"):
                sol = solve_two_stage_ilp(problem)
            return _edges_to_assignment(problem, sol.selected_edges())
        if self.mode == "dual":
            with obs_runtime.span("oracle.solve"):
                dual = solve_dual_decomposition(problem)
            return _edges_to_assignment(problem, dual.selected_edges())
        if self.mode == "lp":
            with obs_runtime.span("oracle.solve"):
                sol = solve_lp_relaxation(problem, qos_mode="soft")
            if sol.feasible:
                with obs_runtime.span("oracle.round"):
                    return _greedy_round(problem, sol.x)
            # Extremely rare fall-back: behave like the heuristic.
        with obs_runtime.span("oracle.solve"):
            return self._two_pass_greedy(problem)

    def _select_cached(
        self, slot: SlotObservation, network, cache: SlotProblemCache
    ) -> Assignment:
        """The caching/warm-start path — bit-identical to the cold path.

        Per slot: build the problem from the windowed edge arrays (no dense
        tables), address the cache by content signature, and on a miss solve
        with the direct HiGHS path, reusing any memoized α-independent
        pieces (pre-pass achievable vector, ILP stage-1 total).
        """
        with obs_runtime.span("oracle.problem"):
            problem = build_slot_problem_fast(
                slot, self.truth, network.capacity, network.alpha, network.beta
            )
            sig = cache.signature(problem)
        stored = cache.assignment(sig, problem.alpha, self.mode)
        if stored is not None:
            with obs_runtime.span("oracle.cache_hit"):
                return stored
        if self.mode == "ilp":
            with obs_runtime.span("oracle.solve"):
                stage1 = cache.stage1_completion(sig)
                sol = solve_two_stage_ilp(problem, stage1_completion=stage1)
                if sol.stage1_completion is not None:
                    cache.store_stage1_completion(sig, sol.stage1_completion)
            assignment = _edges_to_assignment(problem, sol.selected_edges())
        elif self.mode == "dual":
            with obs_runtime.span("oracle.solve"):
                dual = solve_dual_decomposition(problem)
            assignment = _edges_to_assignment(problem, dual.selected_edges())
        elif self.mode == "lp":
            achievable = cache.achievable(sig)
            with obs_runtime.span("oracle.solve"):
                sol, achievable = solve_soft_qos(problem, achievable=achievable)
            cache.store_achievable(sig, achievable)
            if sol.feasible:
                with obs_runtime.span("oracle.round"):
                    assignment = _greedy_round_fast(problem, sol.x)
            else:
                with obs_runtime.span("oracle.solve"):
                    assignment = self._two_pass_greedy(problem)
        else:  # greedy
            with obs_runtime.span("oracle.solve"):
                assignment = self._two_pass_greedy(problem)
        cache.store_assignment(sig, problem.alpha, self.mode, assignment)
        return assignment

    @staticmethod
    def _two_pass_greedy(problem: SlotProblem) -> Assignment:
        """Reliability pass toward α, then reward pass, both respecting β."""
        E = problem.num_edges
        if E == 0:
            return Assignment.empty()
        load = np.zeros(problem.num_scns, dtype=np.int64)
        completed = np.zeros(problem.num_scns)
        consumption = np.zeros(problem.num_scns)
        taken = np.zeros(problem.num_tasks, dtype=bool)
        chosen = np.zeros(E, dtype=bool)

        def sweep(order: np.ndarray, until_alpha: bool) -> None:
            for e in order:
                m = problem.edge_scn[e]
                i = problem.edge_task[e]
                if chosen[e] or taken[i] or load[m] >= problem.capacity:
                    continue
                if until_alpha and completed[m] >= problem.alpha:
                    continue
                if consumption[m] + problem.q[e] > problem.beta:
                    continue
                chosen[e] = True
                taken[i] = True
                load[m] += 1
                completed[m] += problem.v[e]
                consumption[m] += problem.q[e]

        sweep(np.argsort(-problem.v, kind="stable"), until_alpha=True)
        sweep(np.argsort(-problem.g, kind="stable"), until_alpha=False)
        return _edges_to_assignment(problem, np.flatnonzero(chosen))

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        """The Oracle learns nothing — it already knows everything."""


class UnconstrainedOraclePolicy(OffloadingPolicy):
    """Known-mean greedy that ignores (1c)/(1d) — max achievable raw reward."""

    name = "Oracle-unconstrained"

    def __init__(self, truth: GroundTruth) -> None:
        super().__init__()
        self.truth = truth

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        exp_g = self.truth.expected_compound(slot.t, slot.tasks.contexts)
        weights = [exp_g[m, np.asarray(cov, dtype=np.int64)] for m, cov in enumerate(slot.coverage)]
        return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))
