"""Priority-aware LFSC for multi-slot tasks (paper §6 future work).

"A possible solution is to assign an extra reward for processed tasks, such
that they have the priority in future offloading decisions."

:class:`PriorityAwareLFSC` implements exactly that: it is LFSC with the
greedy edge scores boosted by ``priority_bonus · priority(task)``, where the
priority channel (``TaskBatch.priority``, here the execution progress
fraction of a multi-slot task) is supplied by the workload
(:class:`repro.env.multislot.MultiSlotWorkload`).  A task that is 2/3 done
outranks fresh tasks of equal selection probability, so banked work is
rarely stranded.

The learning machinery (weights, probabilities, multipliers) is untouched —
the bonus only reorders the greedy assignment, preserving LFSC's estimates.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LFSCConfig
from repro.core.lfsc import LFSCPolicy
from repro.core.probability import CappedProbabilities
from repro.env.simulator import SlotObservation
from repro.utils.validation import check_positive

__all__ = ["PriorityAwareLFSC"]


class PriorityAwareLFSC(LFSCPolicy):
    """LFSC + the paper's priority bonus for in-progress tasks."""

    name = "LFSC-priority"

    def __init__(
        self, config: LFSCConfig | None = None, *, priority_bonus: float = 2.0
    ) -> None:
        super().__init__(config)
        check_positive("priority_bonus", priority_bonus)
        self.priority_bonus = float(priority_bonus)

    def _edge_scores(
        self, cp: CappedProbabilities, cov: np.ndarray, slot: SlotObservation
    ) -> np.ndarray:
        scores = super()._edge_scores(cp, cov, slot)
        priority = slot.tasks.priority
        if priority is None or scores.size == 0:
            return scores
        return scores + self.priority_bonus * priority[cov]
