"""Additional learning baselines (ours, for ablations beyond the paper).

- :class:`EpsilonGreedyPolicy` — decaying-ε exploration over hypercube
  sample means; the simplest constraint-blind learner, anchoring how much of
  vUCB/FML's performance comes from their smarter exploration.
- :class:`ThompsonSamplingPolicy` — Gaussian Thompson sampling on the
  hypercube means (posterior ~ N(mean, scale²/(N+1))), a randomized
  exploration alternative.

Both reuse the hypercube discretization and the greedy coordination, so the
comparison isolates the exploration strategy.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.estimators import CubeStatistics
from repro.core.greedy import greedy_select
from repro.core.hypercube import ContextPartition
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.obs import runtime as obs_runtime
from repro.utils.validation import check_positive, require


__all__ = ["EpsilonGreedyPolicy", "ThompsonSamplingPolicy"]


class _MeanLearningPolicy(OffloadingPolicy):
    """Shared plumbing: hypercube stats + cached cube classification."""

    def __init__(self, partition: ContextPartition | None = None) -> None:
        super().__init__()
        self.partition = partition if partition is not None else ContextPartition()
        self.stats: CubeStatistics | None = None
        self._cache: tuple[int, list[np.ndarray]] | None = None

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        self.stats = CubeStatistics(
            num_scns=network.num_scns, num_cubes=self.partition.num_cubes
        )

    def _classify(self, slot: SlotObservation) -> list[np.ndarray]:
        cubes_per_scn = []
        for cov in slot.coverage:
            cov = np.asarray(cov, dtype=np.int64)
            cubes_per_scn.append(
                self.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
            )
        self._cache = (slot.t, cubes_per_scn)
        return cubes_per_scn

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        assert self.stats is not None
        cache = self._cache
        if cache is None or cache[0] != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        asn = feedback.assignment
        if len(asn) == 0:
            return
        cubes = np.empty(len(asn), dtype=np.int64)
        for m in np.unique(asn.scn):
            rows = np.flatnonzero(asn.scn == m)
            cov = np.asarray(slot.coverage[m], dtype=np.int64)
            sorter = np.argsort(cov)
            pos = sorter[np.searchsorted(cov, asn.task[rows], sorter=sorter)]
            cubes[rows] = cache[1][m][pos]
        self.stats.observe(asn.scn, cubes, feedback.g, feedback.v, feedback.q)
        self._cache = None


class EpsilonGreedyPolicy(_MeanLearningPolicy):
    """Decaying-ε greedy over hypercube sample means.

    With probability ε_t = min(1, epsilon0·F/max(t,1)) a SCN's edge weights
    are uniform random (exploration slot); otherwise they are the sample
    means (exploitation).  The decay gives the usual logarithmic exploration
    budget for stationary means.
    """

    name = "eps-greedy"

    def __init__(
        self,
        partition: ContextPartition | None = None,
        *,
        epsilon0: float = 5.0,
    ) -> None:
        super().__init__(partition)
        check_positive("epsilon0", epsilon0)
        self.epsilon0 = float(epsilon0)

    def epsilon(self) -> float:
        """Current exploration probability."""
        return min(1.0, self.epsilon0 * self.partition.num_cubes / max(self.t, 1))

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.stats is not None
        with obs_runtime.span("eps_greedy.score"):
            cubes_per_scn = self._classify(slot)
            eps = self.epsilon()
            weights = []
            for m, cubes in enumerate(cubes_per_scn):
                if cubes.size == 0:
                    weights.append(np.empty(0))
                elif self.rng.random() < eps:
                    weights.append(self.rng.random(cubes.size))
                else:
                    weights.append(self.stats.mean_g[m, cubes])
        with obs_runtime.span("eps_greedy.greedy"):
            return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))


class ThompsonSamplingPolicy(_MeanLearningPolicy):
    """Gaussian Thompson sampling on hypercube mean rewards.

    Each slot, every (SCN, cube) pair draws a plausible mean
    ~ N(mean_g, scale²/(N+1)); the draws become the edge weights.  Unvisited
    cubes therefore have the widest posteriors and get explored naturally.
    """

    name = "thompson"

    def __init__(
        self,
        partition: ContextPartition | None = None,
        *,
        scale: float = 0.5,
    ) -> None:
        super().__init__(partition)
        require(scale > 0, f"scale must be > 0, got {scale}")
        self.scale = float(scale)

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.stats is not None
        with obs_runtime.span("thompson.score"):
            std = self.scale / np.sqrt(self.stats.counts + 1.0)
            draws = self.rng.normal(self.stats.mean_g, std)
            cubes_per_scn = self._classify(slot)
            weights = [
                draws[m, cubes] if cubes.size else np.empty(0)
                for m, cubes in enumerate(cubes_per_scn)
            ]
        with obs_runtime.span("thompson.greedy"):
            return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))
