"""FML — Fast Machine Learning baseline (paper §5, ref [4]).

A context-aware online learning algorithm with a *deterministic exploration
control function*: hypercube f counts as under-explored at time t when

    N_f(t)  <=  t^z · ln t,          z = 2 / (3 + D)

(the adaptive-contexts rate of the fast contextual learning literature the
paper cites).  In the exploration phase a SCN prioritizes tasks whose cubes
are under-explored; otherwise it exploits the sample-mean compound reward.
As in the paper, the single-agent method is extended to multiple SCNs by
feeding its per-task scores to the greedy assignment (Alg. 4).

Like vUCB, FML is constraint-blind: it never looks at α or β.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.estimators import CubeStatistics
from repro.core.greedy import greedy_select
from repro.core.hypercube import ContextPartition
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.obs import runtime as obs_runtime

__all__ = ["FMLPolicy"]


class FMLPolicy(OffloadingPolicy):
    """Context-aware explore/exploit with a control function + greedy.

    Parameters
    ----------
    partition:
        The context partition (shared with LFSC in the evaluation).
    z:
        Control-function exponent; ``None`` derives 2/(3+D) from the
        partition's dimensionality.
    """

    name = "FML"

    def __init__(
        self, partition: ContextPartition | None = None, *, z: float | None = None
    ) -> None:
        super().__init__()
        self.partition = partition if partition is not None else ContextPartition()
        self.z = 2.0 / (3.0 + self.partition.dims) if z is None else float(z)
        if not 0.0 < self.z < 1.0:
            raise ValueError(f"z must be in (0, 1), got {self.z}")
        self.stats: CubeStatistics | None = None
        self._cache: tuple[int, list[np.ndarray]] | None = None

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        self.stats = CubeStatistics(
            num_scns=network.num_scns, num_cubes=self.partition.num_cubes
        )

    def control_level(self) -> float:
        """The exploration threshold t^z · ln t at the current slot."""
        t = max(self.t, 2)
        return float(t**self.z * np.log(t))

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.stats is not None
        with obs_runtime.span("fml.score"):
            level = self.control_level()
            under = self.stats.counts < level  # (M, F) — cubes still exploring
            mean_g = self.stats.mean_g
            # Exploit scores live in [0, g_max]; under-explored cubes are lifted
            # above them by a constant offset plus a random perturbation so that
            # exploration picks among them uniformly at random.
            g_ceiling = float(mean_g.max(initial=0.0)) + 1.0

            weights: list[np.ndarray] = []
            cubes_per_scn: list[np.ndarray] = []
            for m, cov in enumerate(slot.coverage):
                cov = np.asarray(cov, dtype=np.int64)
                cubes = self.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
                cubes_per_scn.append(cubes)
                if cov.size == 0:
                    weights.append(np.empty(0))
                    continue
                score = mean_g[m, cubes].astype(float)
                explore = under[m, cubes]
                if np.any(explore):
                    score = score.copy()
                    score[explore] = g_ceiling + self.rng.random(int(explore.sum()))
                weights.append(score)
        self._cache = (slot.t, cubes_per_scn)
        with obs_runtime.span("fml.greedy"):
            return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        assert self.stats is not None
        cache = self._cache
        if cache is None or cache[0] != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        asn = feedback.assignment
        if len(asn) == 0:
            return
        cubes = np.empty(len(asn), dtype=np.int64)
        for m in np.unique(asn.scn):
            rows = np.flatnonzero(asn.scn == m)
            cov = np.asarray(slot.coverage[m], dtype=np.int64)
            sorter = np.argsort(cov)
            pos = sorter[np.searchsorted(cov, asn.task[rows], sorter=sorter)]
            cubes[rows] = cache[1][m][pos]
        self.stats.observe(asn.scn, cubes, feedback.g, feedback.v, feedback.q)
        self._cache = None
