"""The Random baseline (paper §5).

"This algorithm randomly picks c tasks for each SCN in each time slot, and
each task cannot be repeatedly offloaded."  Implemented as the greedy
coordination over i.i.d. uniform edge weights, which realizes exactly a
uniform random conflict-free assignment: every maximal assignment honouring
(1a)/(1b) ordering arises from some weight draw with equal probability of
relative orderings.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.greedy import greedy_select
from repro.env.simulator import Assignment, SlotObservation

__all__ = ["RandomPolicy"]


class RandomPolicy(OffloadingPolicy):
    """Uniform random conflict-free task selection."""

    name = "Random"

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        weights = [
            self.rng.random(len(np.asarray(cov))) for cov in slot.coverage
        ]
        return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))
