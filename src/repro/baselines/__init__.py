"""Benchmark policies from the paper's evaluation (§5) plus ablation extras.

- :class:`OraclePolicy` — full-knowledge per-slot optimum (upper bound);
- :class:`VUCBPolicy` — variant-UCB: UCB1 indices per hypercube + greedy;
- :class:`FMLPolicy` — fast context-aware learning with a deterministic
  exploration control function + greedy;
- :class:`RandomPolicy` — uniform random conflict-free selection;
- extras (ours, for ablations): ε-greedy, Thompson sampling, and the
  unconstrained known-mean greedy.
"""

from repro.baselines.oracle import OraclePolicy, UnconstrainedOraclePolicy
from repro.baselines.vucb import VUCBPolicy
from repro.baselines.fml import FMLPolicy
from repro.baselines.random_policy import RandomPolicy
from repro.baselines.extras import EpsilonGreedyPolicy, ThompsonSamplingPolicy

__all__ = [
    "OraclePolicy",
    "UnconstrainedOraclePolicy",
    "VUCBPolicy",
    "FMLPolicy",
    "RandomPolicy",
    "EpsilonGreedyPolicy",
    "ThompsonSamplingPolicy",
]
