"""Variant-UCB (vUCB) baseline (paper §5).

Adapts UCB1 to the small-cell setting exactly as the paper describes: per
(SCN, hypercube) it maintains the index

    idx_f = ĝ_f + sqrt( 2 ln t / N_f(t) )

where ĝ_f is the sample-mean compound reward of hypercube f at that SCN and
N_f(t) counts how often tasks from f were processed there.  Unvisited cubes
carry an infinite index (forced exploration).  The greedy assignment of
Alg. 4 then coordinates the SCNs using the indices as edge weights.

vUCB maximizes reward only — it is blind to the QoS threshold α and the
resource capacity β, which is precisely why its cumulative reward in Fig. 2
exceeds the Oracle's while its violations dwarf LFSC's.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.estimators import CubeStatistics
from repro.core.greedy import greedy_select
from repro.core.hypercube import ContextPartition
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.obs import runtime as obs_runtime

__all__ = ["VUCBPolicy"]


class VUCBPolicy(OffloadingPolicy):
    """UCB1-per-hypercube with greedy multi-SCN coordination.

    Parameters
    ----------
    partition:
        The context partition (shared with LFSC in the evaluation).
    exploration:
        The constant inside the confidence radius (paper uses 2).
    """

    name = "vUCB"

    def __init__(
        self, partition: ContextPartition | None = None, *, exploration: float = 2.0
    ) -> None:
        super().__init__()
        self.partition = partition if partition is not None else ContextPartition()
        self.exploration = float(exploration)
        self.stats: CubeStatistics | None = None
        self._cache: tuple[int, list[np.ndarray]] | None = None

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        self.stats = CubeStatistics(
            num_scns=network.num_scns, num_cubes=self.partition.num_cubes
        )

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.stats is not None
        with obs_runtime.span("vucb.index"):
            index = self.stats.ucb_index(max(self.t, 1), exploration=self.exploration)
            # Replace +inf by a finite value above every real index so argsort
            # ordering is well-defined and unvisited cubes are tried first.
            finite_max = np.nanmax(np.where(np.isfinite(index), index, -np.inf))
            if not np.isfinite(finite_max):
                finite_max = 1.0
            index = np.where(np.isfinite(index), index, finite_max + 1.0)

            cubes_per_scn: list[np.ndarray] = []
            weights: list[np.ndarray] = []
            for m, cov in enumerate(slot.coverage):
                cov = np.asarray(cov, dtype=np.int64)
                cubes = self.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
                cubes_per_scn.append(cubes)
                weights.append(index[m, cubes] if cov.size else np.empty(0))
        self._cache = (slot.t, cubes_per_scn)
        with obs_runtime.span("vucb.greedy"):
            return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        assert self.stats is not None
        cache = self._cache
        if cache is None or cache[0] != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        asn = feedback.assignment
        if len(asn) == 0:
            return
        # Recover each pair's cube from the cached per-SCN classification.
        cubes = np.empty(len(asn), dtype=np.int64)
        for m in np.unique(asn.scn):
            rows = np.flatnonzero(asn.scn == m)
            cov = np.asarray(slot.coverage[m], dtype=np.int64)
            sorter = np.argsort(cov)
            pos = sorter[np.searchsorted(cov, asn.task[rows], sorter=sorter)]
            cubes[rows] = cache[1][m][pos]
        self.stats.observe(asn.scn, cubes, feedback.g, feedback.v, feedback.q)
        self._cache = None
