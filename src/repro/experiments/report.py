"""Markdown experiment-report generation (EXPERIMENTS.md automation).

Given the outputs of the figure harnesses, render the paper-vs-measured
report: one section per experiment id with the measured table, the expected
qualitative shape from DESIGN.md, and a pass/fail verdict per shape check.
``examples/generate_report.py`` regenerates EXPERIMENTS.md from a fresh run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.env.simulator import SimulationResult
from repro.experiments.figures import FigureOutput
from repro.metrics.ratio import performance_ratio
from repro.metrics.summary import format_table
from repro.metrics.violations import per_slot_violation_rate

__all__ = ["ShapeCheck", "evaluate_shapes", "render_report", "standard_checks"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper and how to verify it."""

    experiment: str
    claim: str
    passed: bool
    detail: str = ""

    def as_row(self) -> dict[str, str]:
        return {
            "experiment": self.experiment,
            "claim": self.claim,
            "verdict": "PASS" if self.passed else "DIVERGES",
            "detail": self.detail,
        }


def standard_checks(results: Mapping[str, SimulationResult]) -> list[ShapeCheck]:
    """The DESIGN.md §3 shape expectations evaluated on one E1-style run."""
    checks: list[ShapeCheck] = []
    oracle = results.get("Oracle")
    lfsc = results.get("LFSC")
    if oracle is None or lfsc is None:
        return checks

    ratio = lfsc.total_reward / oracle.total_reward
    checks.append(
        ShapeCheck(
            "E1",
            "LFSC cumulative reward close to Oracle",
            ratio > 0.8,
            f"LFSC/Oracle = {ratio:.2f}",
        )
    )
    for name in ("vUCB", "FML"):
        if name in results:
            above = results[name].total_reward > oracle.total_reward
            checks.append(
                ShapeCheck(
                    "E1",
                    f"{name} out-earns Oracle (constraint-blind)",
                    above,
                    f"{name}/Oracle = {results[name].total_reward / oracle.total_reward:.2f}",
                )
            )
    if "Random" in results:
        lowest = min(results.values(), key=lambda r: r.total_reward).policy_name
        checks.append(
            ShapeCheck("E1", "Random earns the least reward", lowest == "Random", f"lowest = {lowest}")
        )
    for name in ("vUCB", "FML", "Random"):
        if name in results:
            below = lfsc.total_violations < results[name].total_violations
            checks.append(
                ShapeCheck(
                    "E3",
                    f"LFSC total violations below {name}",
                    below,
                    f"LFSC {lfsc.total_violations:.0f} vs {name} {results[name].total_violations:.0f}",
                )
            )
    rate = per_slot_violation_rate(lfsc, window=max(10, lfsc.horizon // 20))
    early = float(rate[: max(1, len(rate) // 4)].mean())
    late = float(rate[-max(1, len(rate) // 4):].mean())
    checks.append(
        ShapeCheck(
            "E3",
            "LFSC per-slot violation rate decreases",
            late < early,
            f"{early:.2f} -> {late:.2f}",
        )
    )
    ratios = {n: performance_ratio(r) for n, r in results.items() if n != "Oracle"}
    if ratios:
        best = max(ratios, key=ratios.get)
        checks.append(
            ShapeCheck(
                "E7",
                "LFSC best performance ratio among learners",
                best == "LFSC",
                ", ".join(f"{n}={v:.2f}" for n, v in sorted(ratios.items())),
            )
        )
    return checks


def evaluate_shapes(
    outputs: Sequence[FigureOutput],
    extra_checks: Sequence[ShapeCheck] = (),
) -> list[ShapeCheck]:
    """Collect standard checks from any output that carries an E1-style run."""
    checks: list[ShapeCheck] = list(extra_checks)
    for out in outputs:
        if out.results and "Oracle" in out.results and "LFSC" in out.results:
            checks.extend(standard_checks(out.results))
            break
    return checks


def render_report(
    outputs: Sequence[FigureOutput],
    checks: Sequence[ShapeCheck],
    *,
    title: str = "EXPERIMENTS — paper vs. measured",
    preamble: str = "",
) -> str:
    """Render a complete markdown report."""
    lines: list[str] = [f"# {title}", ""]
    if preamble:
        lines += [preamble.strip(), ""]
    if checks:
        lines += ["## Shape-check summary", ""]
        lines += ["```", format_table([c.as_row() for c in checks]), "```", ""]
    for out in outputs:
        lines += [f"## {out.name}", ""]
        if out.rows:
            lines += ["```", out.table(), "```", ""]
    return "\n".join(lines)
