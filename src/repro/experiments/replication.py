"""Multi-seed replication with confidence intervals.

A single simulation run is one sample of the random environment; headline
comparisons (LFSC vs baselines) should be robust across seeds.
:func:`replicate` runs an experiment at several seeds and aggregates every
summary scalar into mean, standard deviation, and a normal-approximation
confidence interval; :func:`replication_rows` renders the comparison table
with ``value ± half_width`` strings.  Used by ``benchmarks/bench_replication.py``
to assert the paper's orderings hold with statistical margin, not by luck of
one seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import stats

from repro.env.simulator import SimulationResult
from repro.experiments.runner import DEFAULT_POLICIES, ExperimentConfig, run_experiment
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_positive, require

__all__ = ["ReplicatedSummary", "replicate", "replication_rows"]


@dataclass(frozen=True)
class ReplicatedSummary:
    """Aggregate of one scalar metric across seeds."""

    metric: str
    policy: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def formatted(self, precision: int = 1) -> str:
        return f"{self.mean:.{precision}f} ± {self.half_width:.{precision}f}"


def _run_seed(args: tuple[ExperimentConfig, Sequence[str], int]) -> dict[str, dict[str, float]]:
    cfg, policies, seed = args
    results = run_experiment(cfg.with_overrides(seed=seed), policies, workers=None)
    return {name: res.summary() for name, res in results.items()}


def replicate(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    seeds: Sequence[int] | int = 5,
    confidence: float = 0.95,
    workers: int | None = None,
) -> dict[str, dict[str, ReplicatedSummary]]:
    """Run the experiment at several seeds and aggregate the summaries.

    Parameters
    ----------
    seeds:
        Either an explicit seed list or a count n (uses cfg.seed + 0..n-1).
    confidence:
        Two-sided CI level; the interval uses the t-distribution with n-1
        degrees of freedom.

    Returns
    -------
    ``{policy: {metric: ReplicatedSummary}}``.
    """
    require(0.0 < confidence < 1.0, f"confidence in (0,1), got {confidence}")
    if isinstance(seeds, int):
        check_positive("seeds", seeds)
        seed_list = [cfg.seed + k for k in range(seeds)]
    else:
        seed_list = list(seeds)
        require(len(seed_list) >= 1, "need at least one seed")
    per_seed = parallel_map(
        _run_seed, [(cfg, policies, s) for s in seed_list], workers=workers
    )
    n = len(seed_list)
    out: dict[str, dict[str, ReplicatedSummary]] = {}
    for policy in policies:
        metrics = per_seed[0][policy].keys()
        out[policy] = {}
        for metric in metrics:
            samples = np.array([run[policy][metric] for run in per_seed], dtype=float)
            mean = float(samples.mean())
            std = float(samples.std(ddof=1)) if n > 1 else 0.0
            if n > 1 and std > 0:
                t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
                half = t_crit * std / np.sqrt(n)
            else:
                half = 0.0
            out[policy][metric] = ReplicatedSummary(
                metric=metric,
                policy=policy,
                mean=mean,
                std=std,
                ci_low=mean - half,
                ci_high=mean + half,
                n=n,
            )
    return out


def replication_rows(
    aggregated: Mapping[str, Mapping[str, ReplicatedSummary]],
    *,
    metrics: Sequence[str] = ("total_reward", "total_violations", "performance_ratio"),
    precision: int = 1,
) -> list[dict[str, str]]:
    """Table rows with ``mean ± ci`` strings for the chosen metrics."""
    rows = []
    for policy, summaries in aggregated.items():
        row: dict[str, str] = {"policy": policy}
        for metric in metrics:
            if metric in summaries:
                row[metric] = summaries[metric].formatted(precision)
        rows.append(row)
    return rows
