"""Multi-seed replication — process-parallel by default, deterministic always.

A single simulation run is one sample of the random environment; headline
comparisons (LFSC vs baselines) should be robust across seeds.
:func:`run_replications` runs an experiment at several seeds and returns the
full per-seed :class:`SimulationResult` objects; :func:`replicate` aggregates
every summary scalar into mean, standard deviation, and a
normal-approximation confidence interval; :func:`replication_rows` renders
the comparison table with ``value ± half_width`` strings.  Used by
``benchmarks/bench_replication.py`` to assert the paper's orderings hold with
statistical margin, not by luck of one seed.

Determinism contract
--------------------

Replication seeds follow the frozen stream contract of
:mod:`repro.utils.rng`: when a replication *count* ``n`` is given, the k-th
replication runs at ``replication_seed(cfg.seed, k)`` — a mapping that
depends only on ``(cfg.seed, k)``, never on worker count or scheduling.
Each worker rebuilds its whole experiment from the config and that integer
seed, and :func:`repro.utils.parallel.parallel_map` collects results in
submission order, so ``workers=0`` (all cores — the default), ``workers=1``
(serial), and any ``workers=n`` produce **bit-identical** per-seed results
(enforced by ``tests/experiments/test_determinism.py``).  An explicit seed
*list* is honoured verbatim, one replication per listed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np
from scipy import stats

from repro.env.simulator import SimulationResult
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.policies import DEFAULT_POLICIES
from repro.obs.manifest import write_manifest
from repro.utils.parallel import parallel_map
from repro.utils.rng import describe_streams, replication_seeds
from repro.utils.validation import check_positive, require

__all__ = [
    "ReplicatedSummary",
    "ReplicationRun",
    "replicate",
    "replication_rows",
    "replication_seed_list",
    "run_replications",
]


@dataclass(frozen=True)
class ReplicatedSummary:
    """Aggregate of one scalar metric across seeds."""

    metric: str
    policy: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def formatted(self, precision: int = 1) -> str:
        return f"{self.mean:.{precision}f} ± {self.half_width:.{precision}f}"


@dataclass(frozen=True)
class ReplicationRun:
    """One replication: its index, the seed it ran at, and the full results."""

    index: int
    seed: int
    results: dict[str, SimulationResult]


def replication_seed_list(base_seed: int, seeds: Sequence[int] | int) -> list[int]:
    """Resolve a count-or-list ``seeds`` argument to explicit seed integers.

    A count ``n`` derives seeds through the frozen replication stream
    contract (:func:`repro.utils.rng.replication_seeds`); an explicit list
    is returned as given.
    """
    if isinstance(seeds, int):
        check_positive("seeds", seeds)
        return replication_seeds(base_seed, seeds)
    seed_list = [int(s) for s in seeds]
    require(len(seed_list) >= 1, "need at least one seed")
    return seed_list


def _seed_label(index: int, args: tuple[ExperimentConfig, Sequence[str], int]) -> str:
    """Names the failing replication in ParallelExecutionError messages."""
    return f"replication {index}, seed {args[2]}"


def _seed_streams(index: int, args: tuple[ExperimentConfig, Sequence[str], int]) -> str:
    """Derived env/policy streams of the failing replication (error text)."""
    return describe_streams(args[2], args[1])


def _emit_manifest(
    manifest_dir: str | Path | None,
    cfg: ExperimentConfig,
    seed_list: Sequence[int],
    policies: Sequence[str],
    workers: int | None,
) -> Path | None:
    """Write the sweep's provenance manifest when a directory is given."""
    if manifest_dir is None:
        return None
    lfsc = cfg.lfsc_config()
    return write_manifest(
        Path(manifest_dir),
        kind="replication",
        config=cfg,
        seeds=seed_list,
        policies=policies,
        engine=lfsc.engine,
        extra={"workers": workers},
    )


def _run_seed_full(
    args: tuple[ExperimentConfig, Sequence[str], int]
) -> dict[str, SimulationResult]:
    """Worker: one replication, returning the full per-policy results."""
    cfg, policies, seed = args
    return run_experiment(cfg.with_overrides(seed=seed), policies, workers=None)


def _run_seed_summary(
    args: tuple[ExperimentConfig, Sequence[str], int]
) -> dict[str, dict[str, float]]:
    """Worker: one replication, returning only the summary scalars.

    Keeps :func:`replicate` cheap over process boundaries — paper-scale
    ``SimulationResult`` arrays are megabytes per policy, the summaries are
    a dozen floats.
    """
    return {name: res.summary() for name, res in _run_seed_full(args).items()}


def run_replications(
    cfg: ExperimentConfig,
    policies: Sequence[str] = ("LFSC",),
    *,
    seeds: Sequence[int] | int = 5,
    workers: int | None = 0,
    transport: str = "auto",
    manifest_dir: str | Path | None = None,
) -> list[ReplicationRun]:
    """Run the experiment once per seed and keep every per-seed result.

    Parameters
    ----------
    seeds:
        Either a replication count n (seeds derived via the frozen stream
        contract from ``cfg.seed``) or an explicit seed list (used verbatim).
    workers:
        ``0`` (default) — one process per CPU core, falling back to serial
        on a single-core host; ``None``/``1`` — serial; ``n`` — a pool of n.
        The per-seed results are bit-identical across all settings.
    transport:
        Parallel result transport (``"auto"``/``"shm"``/``"pickle"``, see
        :func:`repro.utils.parallel.parallel_map`): shared-memory numpy
        blocks by default, the pickle pipe as the fallback knob.  Full
        ``SimulationResult`` payloads are exactly what the shm path is
        for — megabytes of arrays per seed.
    manifest_dir:
        When given, writes ``<manifest_dir>/manifest.json`` with the sweep's
        full provenance (config, seed list, engine, git SHA, host, versions)
        before the sweep runs — so even a crashed sweep leaves its manifest.

    Returns
    -------
    One :class:`ReplicationRun` per seed, in seed-list order.
    """
    seed_list = replication_seed_list(cfg.seed, seeds)
    _emit_manifest(manifest_dir, cfg, seed_list, list(policies), workers)
    tasks = [(cfg, tuple(policies), s) for s in seed_list]
    per_seed = parallel_map(
        _run_seed_full,
        tasks,
        workers=workers,
        label=_seed_label,
        diagnostics=_seed_streams,
        transport=transport,
    )
    return [
        ReplicationRun(index=k, seed=s, results=res)
        for k, (s, res) in enumerate(zip(seed_list, per_seed))
    ]


def _aggregate(
    per_seed: Sequence[Mapping[str, Mapping[str, float]]],
    policies: Sequence[str],
    confidence: float,
) -> dict[str, dict[str, ReplicatedSummary]]:
    n = len(per_seed)
    out: dict[str, dict[str, ReplicatedSummary]] = {}
    for policy in policies:
        metrics = per_seed[0][policy].keys()
        out[policy] = {}
        for metric in metrics:
            samples = np.array([run[policy][metric] for run in per_seed], dtype=float)
            mean = float(samples.mean())
            std = float(samples.std(ddof=1)) if n > 1 else 0.0
            if n > 1 and std > 0:
                t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
                half = t_crit * std / np.sqrt(n)
            else:
                half = 0.0
            out[policy][metric] = ReplicatedSummary(
                metric=metric,
                policy=policy,
                mean=mean,
                std=std,
                ci_low=mean - half,
                ci_high=mean + half,
                n=n,
            )
    return out


def replicate(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    seeds: Sequence[int] | int = 5,
    confidence: float = 0.95,
    workers: int | None = 0,
    transport: str = "auto",
    manifest_dir: str | Path | None = None,
) -> dict[str, dict[str, ReplicatedSummary]]:
    """Run the experiment at several seeds and aggregate the summaries.

    Parameters
    ----------
    seeds:
        Either an explicit seed list or a count n (derived from ``cfg.seed``
        via the frozen replication stream contract).
    confidence:
        Two-sided CI level; the interval uses the t-distribution with n-1
        degrees of freedom.
    workers:
        Same semantics as :func:`run_replications`; parallel by default.
    transport:
        Parallel result transport knob, as in :func:`run_replications`
        (summaries are scalar dicts, so either transport is cheap here).
    manifest_dir:
        When given, writes ``<manifest_dir>/manifest.json`` with the sweep's
        provenance (see :func:`run_replications`).

    Returns
    -------
    ``{policy: {metric: ReplicatedSummary}}``.
    """
    require(0.0 < confidence < 1.0, f"confidence in (0,1), got {confidence}")
    seed_list = replication_seed_list(cfg.seed, seeds)
    _emit_manifest(manifest_dir, cfg, seed_list, list(policies), workers)
    tasks = [(cfg, tuple(policies), s) for s in seed_list]
    per_seed = parallel_map(
        _run_seed_summary,
        tasks,
        workers=workers,
        label=_seed_label,
        diagnostics=_seed_streams,
        transport=transport,
    )
    return _aggregate(per_seed, policies, confidence)


def replication_rows(
    aggregated: Mapping[str, Mapping[str, ReplicatedSummary]],
    *,
    metrics: Sequence[str] = ("total_reward", "total_violations", "performance_ratio"),
    precision: int = 1,
) -> list[dict[str, str]]:
    """Table rows with ``mean ± ci`` strings for the chosen metrics."""
    rows = []
    for policy, summaries in aggregated.items():
        row: dict[str, str] = {"policy": policy}
        for metric in metrics:
            if metric in summaries:
                row[metric] = summaries[metric].formatted(precision)
        rows.append(row)
    return rows
