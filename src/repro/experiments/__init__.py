"""Experiment orchestration: configs, runners, sweeps, and figure harnesses.

Every figure/table of the paper's evaluation (§5) has a harness here (see
DESIGN.md §3 for the experiment index).  The harnesses return plain data —
per-algorithm series and summary rows — and can render plain-text tables, so
benchmarks and examples print exactly what the paper plots.
"""

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_simulation,
    build_truth,
    build_workload,
    make_policy,
    run_experiment,
)
from repro.experiments.figures import (
    FigureOutput,
    fig2a_cumulative_reward,
    fig2b_per_slot_reward,
    fig2_violations,
    fig3_alpha_sweep,
    fig4_likelihood_sweep,
    performance_ratio_table,
)
from repro.experiments.ablations import (
    ablation_assignment_mode,
    ablation_lagrangian,
    ablation_partition_granularity,
)
from repro.experiments.io import load_results, save_results
from repro.experiments.pareto import dominates, lfsc_operating_curve, pareto_front
from repro.experiments.replication import (
    ReplicatedSummary,
    replicate,
    replication_rows,
)
from repro.experiments.report import (
    ShapeCheck,
    evaluate_shapes,
    render_report,
    standard_checks,
)

__all__ = [
    "DEFAULT_POLICIES",
    "ExperimentConfig",
    "build_simulation",
    "build_truth",
    "build_workload",
    "make_policy",
    "run_experiment",
    "FigureOutput",
    "fig2a_cumulative_reward",
    "fig2b_per_slot_reward",
    "fig2_violations",
    "fig3_alpha_sweep",
    "fig4_likelihood_sweep",
    "performance_ratio_table",
    "ablation_assignment_mode",
    "ablation_lagrangian",
    "ablation_partition_granularity",
    "load_results",
    "save_results",
    "ReplicatedSummary",
    "replicate",
    "replication_rows",
    "ShapeCheck",
    "evaluate_shapes",
    "render_report",
    "standard_checks",
    "dominates",
    "lfsc_operating_curve",
    "pareto_front",
]
