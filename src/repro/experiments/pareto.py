"""The reward-violation trade-off frontier of LFSC (extension).

LFSC's λ_max caps how hard the duals can push toward feasibility: small caps
chase reward (vUCB-like), large caps chase feasibility (Oracle-like
violations, lower reward).  Sweeping λ_max traces LFSC's *operating curve*
in the (total reward, total violations) plane; the baselines are single
points in that plane.  A well-designed LFSC should (a) trace a monotone
frontier and (b) dominate Random and weakly dominate vUCB/FML somewhere on
the curve — that is the quantitative version of "balances reward and
violations" (paper §4.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.env.simulator import SimulationResult
from repro.experiments.figures import FigureOutput
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.utils.parallel import parallel_map

__all__ = ["lfsc_operating_curve", "pareto_front", "dominates"]


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Does point a = (reward, violations) weakly dominate b?

    Higher reward is better, lower violations are better; domination is
    weak in both coordinates and strict in at least one.
    """
    (ra, va), (rb, vb) = a, b
    return ra >= rb and va <= vb and (ra > rb or va < vb)


def pareto_front(points: Sequence[tuple[float, float]]) -> list[int]:
    """Indices of the non-dominated points, sorted by reward descending."""
    idx = sorted(range(len(points)), key=lambda i: -points[i][0])
    front: list[int] = []
    best_viol = np.inf
    for i in idx:
        if points[i][1] < best_viol - 1e-12:
            front.append(i)
            best_viol = points[i][1]
    return front


def _run_point(args: tuple[ExperimentConfig, float]) -> SimulationResult:
    cfg, lam = args
    lfsc = cfg.lfsc_config().with_overrides(lambda_max=lam)
    res = run_experiment(cfg.with_overrides(lfsc=lfsc), ("LFSC",), workers=None)["LFSC"]
    res.policy_name = f"LFSC(λmax={lam:g})"
    return res


def lfsc_operating_curve(
    cfg: ExperimentConfig,
    lambda_caps: Sequence[float] = (0.5, 2.0, 5.0, 10.0, 25.0),
    baselines: Sequence[str] = ("Oracle", "vUCB", "Random"),
    *,
    workers: int | None = None,
) -> FigureOutput:
    """Sweep λ_max and plot LFSC's curve against the baseline points."""
    curve = parallel_map(
        _run_point, [(cfg, float(l)) for l in lambda_caps], workers=workers
    )
    base = run_experiment(cfg, baselines, workers=workers) if baselines else {}
    results = {r.policy_name: r for r in curve}
    results.update(base)

    points = {
        name: (res.total_reward, res.total_violations) for name, res in results.items()
    }
    labels = list(points)
    front = {labels[i] for i in pareto_front([points[l] for l in labels])}
    rows = [
        {
            "policy": name,
            "total_reward": reward,
            "total_violations": viol,
            "on_front": "yes" if name in front else "",
        }
        for name, (reward, viol) in points.items()
    ]
    rows.sort(key=lambda r: -float(r["total_reward"]))
    series = {
        "lambda_caps": np.asarray(list(lambda_caps), dtype=float),
        "curve_reward": np.asarray([r.total_reward for r in curve]),
        "curve_violations": np.asarray([r.total_violations for r in curve]),
    }
    return FigureOutput(name="pareto", series=series, rows=rows, results=results)
