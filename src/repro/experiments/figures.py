"""Per-figure harnesses — one function per paper artifact (DESIGN.md §3).

Each harness runs the required simulations and returns a
:class:`FigureOutput` holding the plotted series and/or summary rows, plus a
``table()`` renderer that prints the same rows/series the paper reports.
No plotting dependency is required: the series are plain arrays, ready for
any front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.env.simulator import SimulationResult
from repro.env.window_cache import import_window_state, release_window_state
from repro.experiments.runner import (
    ExperimentConfig,
    _prefill_window_state,
    run_experiment,
)
from repro.policies import DEFAULT_POLICIES
from repro.metrics.ratio import performance_ratio, performance_ratio_series
from repro.metrics.summary import comparison_rows, format_table
from repro.metrics.violations import early_violation_ratio, violation_series
from repro.utils.parallel import parallel_map, resolve_workers
from repro.utils.rng import describe_streams
from repro.utils.validation import check_positive

__all__ = [
    "FigureOutput",
    "fig2a_cumulative_reward",
    "fig2b_per_slot_reward",
    "fig2_violations",
    "fig3_alpha_sweep",
    "fig4_likelihood_sweep",
    "performance_ratio_table",
]


@dataclass
class FigureOutput:
    """Series + rows behind one figure.

    Attributes
    ----------
    name:
        Experiment id (e.g. ``"fig2a"``).
    series:
        Mapping label → 1-D array (the plotted curves); the special key
        ``"x"`` holds the shared x-axis when it is not simply 1..T.
    rows:
        Summary rows (one dict per table line).
    results:
        The underlying simulation results, for further analysis.
    """

    name: str
    series: dict[str, np.ndarray] = field(default_factory=dict)
    rows: list[dict[str, float | str]] = field(default_factory=list)
    results: dict[str, SimulationResult] | None = None

    def table(self, *, precision: int = 2) -> str:
        """Render the summary rows as an aligned plain-text table."""
        return format_table(self.rows, precision=precision)


def _moving_average(x: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return np.asarray(x, dtype=float)
    window = min(window, len(x))
    kernel = np.ones(window) / window
    return np.convolve(x, kernel, mode="valid")


# ---------------------------------------------------------------------------
# E1 — Fig. 2(a): cumulative compound reward vs time.
# ---------------------------------------------------------------------------

def fig2a_cumulative_reward(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = None,
    results: Mapping[str, SimulationResult] | None = None,
) -> FigureOutput:
    """Cumulative compound reward of every algorithm (paper Fig. 2a).

    Expected shape: LFSC ≈ Oracle; vUCB/FML above Oracle (they ignore the
    constraints); Random lowest.
    """
    res = dict(results) if results is not None else run_experiment(cfg, policies, workers=workers)
    series = {name: r.cumulative_reward for name, r in res.items()}
    return FigureOutput(
        name="fig2a", series=series, rows=comparison_rows(res), results=res
    )


# ---------------------------------------------------------------------------
# E2 — Fig. 2(b): per-slot compound reward vs time.
# ---------------------------------------------------------------------------

def fig2b_per_slot_reward(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    window: int = 50,
    workers: int | None = None,
    results: Mapping[str, SimulationResult] | None = None,
) -> FigureOutput:
    """Smoothed per-slot compound reward (paper Fig. 2b).

    Expected shape: LFSC starts above Oracle (constraint-blind early
    exploration), dips during learning, then converges toward Oracle from
    below; vUCB/FML stay above both.
    """
    check_positive("window", window)
    res = dict(results) if results is not None else run_experiment(cfg, policies, workers=workers)
    series = {name: _moving_average(r.reward, window) for name, r in res.items()}
    rows = [
        {
            "policy": name,
            "mean_per_slot_reward": float(r.reward.mean()),
            "final_window_reward": float(series[name][-1]),
        }
        for name, r in res.items()
    ]
    return FigureOutput(name="fig2b", series=series, rows=rows, results=res)


# ---------------------------------------------------------------------------
# E3/E8 — cumulative violations + the early-stage violation ratios.
# ---------------------------------------------------------------------------

def fig2_violations(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = None,
    results: Mapping[str, SimulationResult] | None = None,
) -> FigureOutput:
    """Cumulative V1/V2 curves and LFSC's early-violation ratios (§5 text).

    Expected shape: LFSC's early violations a small fraction of vUCB / FML /
    Random (paper: ≈30% / 32% / 20%), and the fraction shrinking over time.
    """
    res = dict(results) if results is not None else run_experiment(cfg, policies, workers=workers)
    series: dict[str, np.ndarray] = {}
    for name, r in res.items():
        series[f"{name}/qos"] = violation_series(r, kind="qos")
        series[f"{name}/resource"] = violation_series(r, kind="resource")
        series[f"{name}/total"] = violation_series(r, kind="total")
    rows = comparison_rows(res)
    if "LFSC" in res:
        for other in res:
            if other == "LFSC":
                continue
            ratio = early_violation_ratio(res["LFSC"], res[other])
            rows.append(
                {
                    "policy": f"LFSC/{other} early-violation ratio",
                    "total_violations": ratio,
                }
            )
    return FigureOutput(name="fig2_violations", series=series, rows=rows, results=res)


# ---------------------------------------------------------------------------
# E4/E5 — Fig. 3: sweep over the QoS threshold α.
# ---------------------------------------------------------------------------

def _run_alpha_point(
    args: tuple[ExperimentConfig, Sequence[str], float, tuple | None]
) -> dict[str, SimulationResult]:
    cfg, policies, alpha, window_state = args
    if window_state is not None and cfg.shared_window:
        import_window_state(window_state)
    return run_experiment(cfg.with_overrides(alpha=alpha), policies, workers=None)


def _alpha_label(index: int, args: tuple) -> str:
    return f"alpha={args[2]:g}, seed {args[0].seed}"


def _sweep_streams(index: int, args: tuple) -> str:
    """Derived env/policy streams of the failing sweep point (error text)."""
    return describe_streams(args[0].seed, args[1])


def fig3_alpha_sweep(
    cfg: ExperimentConfig,
    alphas: Sequence[float] = (13.0, 14.0, 15.0, 16.0, 17.0),
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = 0,
) -> FigureOutput:
    """Total reward and V1 as functions of α (paper Fig. 3).

    Expected shape: LFSC's reward decreases with α yet stays closest to the
    Oracle's; vUCB/FML's rewards are flat (α never enters their decisions);
    every algorithm's V1 grows with α, LFSC's most slowly.
    """
    # Every α point replays the same environment (α never enters the
    # workload stream), so a parallel sweep precomputes the windows once
    # in the parent and shares them with every point's worker.
    window_state = None
    if cfg.shared_window and resolve_workers(workers, len(alphas)) > 1:
        window_state = _prefill_window_state(cfg, policies)
    try:
        sweeps = parallel_map(
            _run_alpha_point,
            [(cfg, policies, float(a), window_state) for a in alphas],
            workers=workers,
            label=_alpha_label,
            diagnostics=_sweep_streams,
        )
    finally:
        release_window_state(window_state)
    x = np.asarray(list(alphas), dtype=float)
    series: dict[str, np.ndarray] = {"x": x}
    rows: list[dict[str, float | str]] = []
    for name in policies:
        rewards = np.array([s[name].total_reward for s in sweeps])
        viols = np.array([float(s[name].violation_qos.sum()) for s in sweeps])
        series[f"{name}/reward"] = rewards
        series[f"{name}/violation_qos"] = viols
        for a, rwd, vio in zip(x, rewards, viols):
            rows.append(
                {
                    "policy": name,
                    "alpha": float(a),
                    "total_reward": float(rwd),
                    "violation_qos": float(vio),
                }
            )
    return FigureOutput(name="fig3", series=series, rows=rows)


# ---------------------------------------------------------------------------
# E6 — Fig. 4: sweep over the completion-likelihood range.
# ---------------------------------------------------------------------------

def _run_v_point(
    args: tuple[ExperimentConfig, Sequence[str], tuple[float, float], tuple | None]
) -> dict[str, SimulationResult]:
    cfg, policies, v_range, window_state = args
    if window_state is not None and cfg.shared_window:
        import_window_state(window_state)
    return run_experiment(cfg.with_overrides(v_range=v_range), policies, workers=None)


def _v_label(index: int, args: tuple) -> str:
    return f"v_range={args[2]}, seed {args[0].seed}"


def fig4_likelihood_sweep(
    cfg: ExperimentConfig,
    v_lows: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = 0,
) -> FigureOutput:
    """Performance under different link-reliability environments (§5 close).

    The completion likelihood is drawn from [v_lo, 1]: larger v_lo means
    more reliable mmWave links.  Expected shape: every algorithm's reward
    grows and violations shrink with reliability; LFSC keeps the best
    reward/violation trade-off (performance ratio) across environments.
    """
    # v_range only parameterizes the truth (realizations), never the
    # workload stream — every point shares the same windows (see fig3).
    window_state = None
    if cfg.shared_window and resolve_workers(workers, len(v_lows)) > 1:
        window_state = _prefill_window_state(cfg, policies)
    try:
        sweeps = parallel_map(
            _run_v_point,
            [(cfg, policies, (float(lo), 1.0), window_state) for lo in v_lows],
            workers=workers,
            label=_v_label,
            diagnostics=_sweep_streams,
        )
    finally:
        release_window_state(window_state)
    x = np.asarray(list(v_lows), dtype=float)
    series: dict[str, np.ndarray] = {"x": x}
    rows: list[dict[str, float | str]] = []
    for name in policies:
        rewards = np.array([s[name].total_reward for s in sweeps])
        viols = np.array([s[name].total_violations for s in sweeps])
        ratios = np.array([performance_ratio(s[name]) for s in sweeps])
        series[f"{name}/reward"] = rewards
        series[f"{name}/violations"] = viols
        series[f"{name}/performance_ratio"] = ratios
        for lo, rwd, vio, rat in zip(x, rewards, viols, ratios):
            rows.append(
                {
                    "policy": name,
                    "v_low": float(lo),
                    "total_reward": float(rwd),
                    "total_violations": float(vio),
                    "performance_ratio": float(rat),
                }
            )
    return FigureOutput(name="fig4", series=series, rows=rows)


# ---------------------------------------------------------------------------
# E7 — the performance-ratio metric.
# ---------------------------------------------------------------------------

def performance_ratio_table(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = None,
    results: Mapping[str, SimulationResult] | None = None,
) -> FigureOutput:
    """Performance ratio (reward / (1 + violations)) per algorithm (§5).

    Expected shape: LFSC highest by a wide margin.
    """
    res = dict(results) if results is not None else run_experiment(cfg, policies, workers=workers)
    series = {name: performance_ratio_series(r) for name, r in res.items()}
    rows = [
        {"policy": name, "performance_ratio": performance_ratio(r)}
        for name, r in res.items()
    ]
    rows.sort(key=lambda row: -float(row["performance_ratio"]))
    return FigureOutput(name="performance_ratio", series=series, rows=rows, results=res)
