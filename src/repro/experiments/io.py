"""Result persistence: save/load experiment runs for later analysis.

Each run set is stored as one ``.npz`` (all per-slot arrays, keys namespaced
by policy) plus a sibling ``.json`` with the scalar summaries — so headline
numbers are inspectable without NumPy and full series reload losslessly.
A third sibling, ``<path>.manifest.json``, records the run's provenance
(git SHA, host, library versions, config when provided) via
:mod:`repro.obs.manifest`, so every persisted artifact answers "what exactly
produced this?".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.env.simulator import SimulationResult
from repro.obs.manifest import build_manifest

__all__ = ["save_results", "load_results"]

_ARRAY_FIELDS = (
    "reward",
    "expected_reward",
    "completed",
    "consumption",
    "accepted",
    "violation_qos",
    "violation_resource",
    "violation_qos_realized",
    "violation_resource_realized",
)


def save_results(
    results: Mapping[str, SimulationResult],
    path: str | Path,
    *,
    config: Any = None,
) -> tuple[Path, Path]:
    """Write results to ``<path>.npz`` and ``<path>.json``.

    Also writes ``<path>.manifest.json`` with the run's provenance; pass
    ``config`` (e.g. the :class:`ExperimentConfig`) to embed the exact
    parameters alongside git/host/version info.  Returns the npz and json
    paths.
    """
    base = Path(path)
    base.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, dict] = {}
    for name, res in results.items():
        for f in _ARRAY_FIELDS:
            arrays[f"{name}/{f}"] = getattr(res, f)
        meta[name] = {
            "policy_name": res.policy_name,
            "horizon": res.horizon,
            "num_scns": res.num_scns,
            "has_expected": res.has_expected,
            "summary": res.summary(),
        }
    npz_path = base.with_suffix(".npz")
    json_path = base.with_suffix(".json")
    np.savez_compressed(npz_path, **arrays)
    json_path.write_text(json.dumps(meta, indent=2, sort_keys=True))
    manifest = build_manifest(
        kind="results", config=config, policies=list(results.keys())
    )
    base.with_suffix(".manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return npz_path, json_path


def load_results(path: str | Path) -> dict[str, SimulationResult]:
    """Load a result set written by :func:`save_results`."""
    base = Path(path)
    npz_path = base.with_suffix(".npz")
    json_path = base.with_suffix(".json")
    if not npz_path.exists() or not json_path.exists():
        raise FileNotFoundError(f"missing {npz_path} or {json_path}")
    meta = json.loads(json_path.read_text())
    with np.load(npz_path) as data:
        out: dict[str, SimulationResult] = {}
        for name, info in meta.items():
            fields = {
                f: data[f"{name}/{f}"]
                for f in _ARRAY_FIELDS
                if f"{name}/{f}" in data
            }
            out[name] = SimulationResult(
                policy_name=info["policy_name"],
                horizon=int(info["horizon"]),
                num_scns=int(info["num_scns"]),
                has_expected=bool(info.get("has_expected", True)),
                **fields,
            )
    return out
