"""Ablations of LFSC's design choices (DESIGN.md A1).

Three studies isolate the components the paper's design discussion (§4.1)
motivates:

- :func:`ablation_lagrangian` — multipliers on vs. off.  Off reduces LFSC to
  a constraint-blind Exp3.M + greedy; its violations should approach
  vUCB/FML levels while the full LFSC stays low.
- :func:`ablation_assignment_mode` — DepRound-sampled vs. paper-literal
  deterministic greedy edge weights (exploration soundness).
- :func:`ablation_partition_granularity` — the h_T trade-off: too-coarse
  cubes mix heterogeneous contexts, too-fine cubes starve each cube of
  samples.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.env.simulator import SimulationResult
from repro.experiments.figures import FigureOutput
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.metrics.summary import comparison_rows
from repro.utils.parallel import parallel_map

__all__ = [
    "ablation_lagrangian",
    "ablation_assignment_mode",
    "ablation_partition_granularity",
    "ablation_adaptive_partition",
]


def _run_variant(args: tuple[ExperimentConfig, str]) -> SimulationResult:
    cfg, label = args
    results = run_experiment(cfg, ("LFSC",), workers=None)
    res = results["LFSC"]
    res.policy_name = label
    return res


def _variant_label(index: int, args: tuple[ExperimentConfig, str]) -> str:
    return f"variant {args[1]!r}, seed {args[0].seed}"


def _collect(variants: list[tuple[ExperimentConfig, str]], name: str, workers) -> FigureOutput:
    results = parallel_map(_run_variant, variants, workers=workers, label=_variant_label)
    by_label = {r.policy_name: r for r in results}
    return FigureOutput(
        name=name,
        series={label: r.cumulative_reward for label, r in by_label.items()},
        rows=comparison_rows(by_label, oracle_name="(none)"),
        results=by_label,
    )


def ablation_lagrangian(
    cfg: ExperimentConfig, *, workers: int | None = 0
) -> FigureOutput:
    """LFSC with and without the Lagrangian constraint coupling."""
    base = cfg.lfsc_config()
    variants = [
        (cfg.with_overrides(lfsc=base.with_overrides(use_lagrangian=True)), "LFSC"),
        (
            cfg.with_overrides(lfsc=base.with_overrides(use_lagrangian=False)),
            "LFSC-noLagrangian",
        ),
    ]
    return _collect(variants, "ablation_lagrangian", workers)


def ablation_assignment_mode(
    cfg: ExperimentConfig, *, workers: int | None = 0
) -> FigureOutput:
    """DepRound-sampled vs. deterministic greedy assignment."""
    base = cfg.lfsc_config()
    variants = [
        (
            cfg.with_overrides(lfsc=base.with_overrides(assignment_mode="depround")),
            "LFSC-depround",
        ),
        (
            cfg.with_overrides(
                lfsc=base.with_overrides(assignment_mode="deterministic")
            ),
            "LFSC-deterministic",
        ),
    ]
    return _collect(variants, "ablation_assignment_mode", workers)


def _run_adaptive(args: tuple[ExperimentConfig, float]) -> SimulationResult:
    """Worker for the adaptive-partition variant (needs its own policy)."""
    from repro.core.adaptive import AdaptiveLFSCPolicy, AdaptivePartition
    from repro.experiments.runner import build_simulation

    cfg, split_base = args
    sim = build_simulation(cfg)
    policy = AdaptiveLFSCPolicy(
        cfg.lfsc_config(),
        partition=AdaptivePartition(
            dims=cfg.dims, max_leaves=256, split_base=split_base, split_rho=1.0
        ),
    )
    res = sim.run(policy, cfg.horizon)
    res.policy_name = f"LFSC-adaptive(b={split_base:g})"
    return res


def ablation_adaptive_partition(
    cfg: ExperimentConfig,
    split_bases: Sequence[float] = (30.0, 100.0),
    *,
    workers: int | None = 0,
) -> FigureOutput:
    """Fixed (h_T)^D grid vs the zooming adaptive partition (extension).

    The adaptive variant starts from a single cube and refines where tasks
    actually arrive; ``split_base`` controls how much evidence a cube needs
    before splitting.
    """
    fixed = _run_variant((cfg, "LFSC-fixed"))
    adaptive = parallel_map(
        _run_adaptive,
        [(cfg, float(b)) for b in split_bases],
        workers=workers,
        label=lambda i, args: f"split_base={args[1]:g}, seed {args[0].seed}",
    )
    by_label = {r.policy_name: r for r in [fixed, *adaptive]}
    return FigureOutput(
        name="ablation_adaptive",
        series={label: r.cumulative_reward for label, r in by_label.items()},
        rows=comparison_rows(by_label, oracle_name="(none)"),
        results=by_label,
    )


def ablation_partition_granularity(
    cfg: ExperimentConfig,
    parts_values: Sequence[int] = (1, 2, 3, 5),
    *,
    workers: int | None = 0,
) -> FigureOutput:
    """Sweep the hypercube granularity h_T."""
    base = cfg.lfsc_config()
    variants = []
    for parts in parts_values:
        lfsc = base.with_overrides(
            partition=ContextPartition(dims=cfg.dims, parts=int(parts))
        )
        variants.append(
            (cfg.with_overrides(lfsc=lfsc, parts=int(parts)), f"LFSC-h{parts}")
        )
    return _collect(variants, "ablation_partition", workers)
