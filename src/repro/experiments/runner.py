"""Experiment configuration and the policy-comparison runner.

:class:`ExperimentConfig` captures every environment and constraint
parameter of the paper's evaluation setup (§5).  Two preset scales:

- :meth:`ExperimentConfig.paper` — the published numbers (M=30, c=20, α=15,
  β=27, |D_{m,t}| ∈ [35,100], T=10,000).  Minutes per policy on a laptop.
- :meth:`ExperimentConfig.small` — a proportionally scaled instance
  (M=8, c=6, α=4.5, β=8.1, |D| ∈ [10,30], T=400) preserving the ratios that
  drive the qualitative behaviour (K/c, α/c, β/(c·E[q])).  Seconds per
  policy; the default for tests and benchmarks.

:func:`run_experiment` runs a set of policies on the *same* workload
randomness (each run re-derives identical named streams from the config
seed) and optionally fans the runs out over processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.network import NetworkConfig
from repro.env.processes import GroundTruth, PiecewiseConstantTruth
from repro.env.simulator import PolicyProtocol, Simulation, SimulationResult
from repro.env.window_cache import (
    export_window_state,
    import_window_state,
    partition_token,
    prefill_windows,
    release_window_state,
    shared_window_cache,
)
from repro.env.workload import SyntheticWorkload, Workload
from repro.scenarios.spec import ScenarioSpec
from repro.utils.parallel import parallel_map, resolve_workers
from repro.utils.rng import describe_streams
from repro.utils.validation import check_positive, require

__all__ = [
    "DEFAULT_POLICIES",
    "ExperimentConfig",
    "build_truth",
    "build_workload",
    "build_channel",
    "build_simulation",
    "make_policy",
    "run_experiment",
]

#: The paper's Fig. 2 line-up — canonical home is the policy registry;
#: re-exported here for backward compatibility.
from repro.policies import DEFAULT_POLICIES


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one simulation experiment.

    Environment fields mirror §5's setup; ``lfsc`` fields override the
    Theorem 1 schedule when set.
    """

    # Network constraints (ILP (1)).
    num_scns: int = 30
    capacity: int = 20
    alpha: float = 15.0
    beta: float = 27.0
    # Workload / coverage.
    k_min: int = 35
    k_max: int = 100
    overlap: float = 2.0
    # Ground-truth processes.
    u_range: tuple[float, float] = (0.0, 1.0)
    v_range: tuple[float, float] = (0.0, 1.0)
    q_range: tuple[float, float] = (1.0, 2.0)
    q_band: float = 0.5
    u_concentration: float = 10.0
    cells_per_dim: int = 3
    # Learner discretization.
    dims: int = 3
    parts: int = 3
    # Run control.
    horizon: int = 10_000
    seed: int = 0
    truth_seed: int = 7
    oracle_mode: str = "lp"
    #: Oracle solver caching layer (DESIGN.md §8): when True (default) the
    #: simulation hands the process-wide content-addressed
    #: :class:`~repro.solvers.cache.SlotProblemCache` to the Oracle, which
    #: then skips solver work that repeats across slots, sweep points, and
    #: runs.  Bit-identical to ``False`` — the cache is keyed on problem
    #: content, never provenance — just faster.
    oracle_cache: bool = True
    #: On-disk tier for the Oracle solver cache (DESIGN.md §9): a directory
    #: where achievable/stage-1/assignment memos persist across processes
    #: and sessions.  ``None`` falls back to the ``REPRO_CACHE_DIR``
    #: environment variable, and to memory-only when that is unset too.
    #: Only meaningful with ``oracle_cache=True``; bit-identical either way.
    cache_dir: str | None = None
    #: Slot-streaming window for the simulation driver: ``None`` — the
    #: simulator's default (windowed when eligible, see
    #: ``repro.env.simulator.DEFAULT_WINDOW``); ``0`` — force per-slot;
    #: ``W >= 1`` — precompute W slots at a time.  Trajectories are
    #: bit-identical across all values.
    window: int | None = None
    #: Cross-run window cache (DESIGN.md §9): when True (default) windowed
    #: runs share each environment's precomputed windows through the
    #: process-wide :func:`repro.env.window_cache.shared_window_cache` —
    #: across policies, sweep points, and worker processes.  Bit-identical
    #: to ``False`` (content-addressed keys + stream-state restoration),
    #: just faster on sweeps that replay the same environment.
    shared_window: bool = True
    lfsc: LFSCConfig | None = None
    #: Declarative scenario coordinate (DESIGN.md §11): when set, the build
    #: helpers below consult the scenario registry for environment overrides
    #: (workload / truth / channel) and policy wrappers, and the spec's
    #: content hash flows into manifests and checkpoint headers.  ``None``
    #: keeps the paper's default environment.
    scenario: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        check_positive("horizon", self.horizon)
        require(
            self.oracle_mode in ("lp", "ilp", "greedy", "dual"),
            f"bad oracle_mode {self.oracle_mode!r}",
        )

    # -- presets -------------------------------------------------------------

    @staticmethod
    def paper(**overrides) -> "ExperimentConfig":
        """The published evaluation scale (expensive: minutes per policy)."""
        return ExperimentConfig().with_overrides(**overrides)

    @staticmethod
    def small(**overrides) -> "ExperimentConfig":
        """A proportionally scaled instance for tests/benchmarks (seconds)."""
        cfg = ExperimentConfig(
            num_scns=8,
            capacity=6,
            alpha=4.5,
            beta=8.1,
            k_min=10,
            k_max=30,
            horizon=400,
        )
        return cfg.with_overrides(**overrides)

    @staticmethod
    def tiny(**overrides) -> "ExperimentConfig":
        """The smallest meaningful instance (unit tests, exact-ILP oracle)."""
        cfg = ExperimentConfig(
            num_scns=3,
            capacity=3,
            alpha=1.5,
            beta=4.5,
            k_min=4,
            k_max=8,
            horizon=50,
            cells_per_dim=2,
            parts=2,
        )
        return cfg.with_overrides(**overrides)

    def with_overrides(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)

    def with_lfsc_overrides(self, **changes) -> "ExperimentConfig":
        """Override LFSC fields (e.g. ``engine``, ``assignment_mode``) in place.

        Resolves the effective LFSC config first (explicit override or the
        Theorem 1 schedule), so e.g. ``cfg.with_lfsc_overrides(engine="reference")``
        switches the slot engine without disturbing the learning schedule.
        """
        return self.with_overrides(lfsc=self.lfsc_config().with_overrides(**changes))

    # -- derived objects -------------------------------------------------------

    @property
    def partition(self) -> ContextPartition:
        return ContextPartition(dims=self.dims, parts=self.parts)

    def lfsc_config(self) -> LFSCConfig:
        """The LFSC configuration: explicit override or Theorem 1 schedule."""
        if self.lfsc is not None:
            return self.lfsc
        return LFSCConfig.from_theorem(
            max_coverage=self.k_max,
            capacity=self.capacity,
            horizon=self.horizon,
            dims=self.dims,
            parts=self.parts,
        )

    def network(self) -> NetworkConfig:
        return NetworkConfig(
            num_scns=self.num_scns,
            capacity=self.capacity,
            alpha=self.alpha,
            beta=self.beta,
        )


def _scenario_env(cfg: ExperimentConfig):
    """The scenario's environment overrides, or None without a scenario.

    Imported lazily: the registry's builder table needs this module, so the
    dependency must stay one-way at import time (DESIGN.md §11).
    """
    if cfg.scenario is None:
        return None
    from repro import scenarios

    return scenarios.build_env(cfg)


def default_truth(cfg: ExperimentConfig) -> PiecewiseConstantTruth:
    """The paper's stationary piecewise-constant ground truth."""
    return PiecewiseConstantTruth(
        num_scns=cfg.num_scns,
        dims=cfg.dims,
        cells_per_dim=cfg.cells_per_dim,
        u_range=cfg.u_range,
        v_range=cfg.v_range,
        q_range=cfg.q_range,
        q_band=cfg.q_band,
        u_concentration=cfg.u_concentration,
        seed=cfg.truth_seed,
    )


def default_workload(cfg: ExperimentConfig) -> SyntheticWorkload:
    """The §5 synthetic workload (features + coverage sampler)."""
    return SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=CoverageSampler(
            num_scns=cfg.num_scns,
            k_min=cfg.k_min,
            k_max=cfg.k_max,
            overlap=cfg.overlap,
        ),
    )


def build_truth(cfg: ExperimentConfig) -> GroundTruth:
    """The hidden ground truth (scenario override or the paper default)."""
    env = _scenario_env(cfg)
    if env is not None and env.truth is not None:
        return env.truth
    return default_truth(cfg)


def build_workload(cfg: ExperimentConfig) -> Workload:
    """The slot workload (scenario override or the paper default)."""
    env = _scenario_env(cfg)
    if env is not None and env.workload is not None:
        return env.workload
    return default_workload(cfg)


def build_channel(cfg: ExperimentConfig):
    """The blockage channel, if the scenario declares one (default: None)."""
    env = _scenario_env(cfg)
    return None if env is None else env.channel


def build_simulation(cfg: ExperimentConfig) -> Simulation:
    """Simulation bound to this config's network, workload, and truth."""
    from repro.solvers.cache import shared_cache

    env = _scenario_env(cfg)
    workload = truth = channel = None
    if env is not None:
        workload, truth, channel = env.workload, env.truth, env.channel
    return Simulation(
        network=cfg.network(),
        workload=workload if workload is not None else default_workload(cfg),
        truth=truth if truth is not None else default_truth(cfg),
        channel=channel,
        seed=cfg.seed,
        solver_cache=shared_cache(cfg.cache_dir) if cfg.oracle_cache else None,
        window_cache=shared_window_cache() if cfg.shared_window else None,
    )


def make_policy(name: str, cfg: ExperimentConfig, truth: GroundTruth) -> PolicyProtocol:
    """Instantiate a policy of the evaluation line-up by registry spec.

    Thin delegate to :func:`repro.policies.make_policy` — the historical
    if/elif chain now lives in the registry, so ``name`` may be any
    registered spec, parameterized forms (``"linucb(alpha=0.5)"``)
    included.  Scenario wrapping (when the config carries a scenario) is
    applied by the registry; wrappers preserve the policy ``name``, so RNG
    stream derivation is unchanged.
    """
    from repro import policies as policy_registry

    return policy_registry.make_policy(name, cfg, truth)


def _run_one(args: tuple[ExperimentConfig, str, tuple | None]) -> SimulationResult:
    """Worker: rebuild the (deterministic) experiment and run one policy.

    Everything — workload, truth, channel, policy streams — is re-derived
    from the config's integer seeds inside the worker, so the result is a
    pure function of ``args`` and identical across worker counts.  The
    optional third element is an exported window-state handle (parent-side
    prefill); grafting it only pre-populates a content-addressed cache, so
    it cannot change the result either.
    """
    cfg, name, window_state = args
    if window_state is not None and cfg.shared_window:
        import_window_state(window_state)
    sim = build_simulation(cfg)
    policy = make_policy(name, cfg, sim.truth)
    return sim.run(policy, cfg.horizon, window=cfg.window)


def _policy_label(index: int, args: tuple) -> str:
    return f"policy {args[1]!r}, seed {args[0].seed}"


def _policy_streams(index: int, args: tuple) -> str:
    """Derived-stream diagnostics for ParallelExecutionError (see rng.py)."""
    return describe_streams(args[0].seed, (args[1],))


def _prefill_window_state(cfg: ExperimentConfig, policies: Sequence[str]) -> tuple | None:
    """Precompute the sweep's windows once in the parent and export them.

    One prefill pass per distinct ``(window size, partition)`` combination
    among the requested policies — e.g. one partitioned pass for LFSC and
    one partition-free pass shared by Oracle/vUCB/FML/Random.  Returns the
    transport handle workers graft via :func:`import_window_state`, or None
    when nothing is cacheable (per-slot runs, trace workloads, ...).
    """
    sim = build_simulation(cfg)
    if sim.window_cache is None or not getattr(sim.workload, "windowable", False):
        return None
    combos: dict[tuple, object] = {}
    for name in policies:
        policy = make_policy(name, cfg, sim.truth)
        size = sim._effective_window(policy, cfg.window)
        if size <= 0:
            continue
        part = getattr(policy, "context_partition", None)
        if part is not None and not getattr(part, "windowable", False):
            part = None
        combos.setdefault((size, partition_token(part)), part)
    for (size, _), part in combos.items():
        prefill_windows(
            sim.window_cache, sim.workload, sim.truth,
            cfg.seed, cfg.horizon, size, partition=part,
        )
    return export_window_state()


def run_experiment(
    cfg: ExperimentConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    workers: int | None = None,
    transport: str = "auto",
) -> dict[str, SimulationResult]:
    """Run each named policy on identical workload randomness.

    Parameters
    ----------
    workers:
        ``None``/``1`` — serial; ``0`` — one process per CPU core (serial
        fallback on single-core hosts); n — a pool of n processes.  Results
        are bit-identical across all settings; replication/sweep harnesses
        that fan out one level above keep this ``None`` so process
        parallelism is never nested.
    transport:
        Parallel result transport (``"auto"``/``"shm"``/``"pickle"``, see
        :func:`repro.utils.parallel.parallel_map`); irrelevant for serial
        runs, bit-identical either way.

    Returns
    -------
    Mapping policy name → :class:`SimulationResult`, in the given order.
    """
    window_state = None
    if cfg.shared_window and resolve_workers(workers, len(policies)) > 1:
        # Parallel runs can't share the process-local window cache, so the
        # parent precomputes the sweep's windows once and ships them through
        # one shm block (bit-identical: a graft only pre-populates a
        # content-addressed cache).
        window_state = _prefill_window_state(cfg, policies)
    try:
        results = parallel_map(
            _run_one,
            [(cfg, name, window_state) for name in policies],
            workers=workers,
            label=_policy_label,
            diagnostics=_policy_streams,
            transport=transport,
        )
    finally:
        release_window_state(window_state)
    return {name: res for name, res in zip(policies, results)}
