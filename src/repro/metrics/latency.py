"""Decision-latency percentiles: nearest-rank quantiles + mergeable recorder.

"Heavy traffic" claims need tail latencies, not means (ROADMAP; the
topology-aware scheduler snippet in SNIPPETS.md quantifies per-node cost the
same way).  This module is the one home for that arithmetic:

- :func:`percentile` is the nearest-rank estimator the service daemon's
  status report has always used (factored out of ``service/daemon.py``;
  ``benchmarks/bench_service.py`` shared a copy too).  No numpy detour —
  the inputs are small latency windows on a request path.
- :class:`LatencyRecorder` accumulates per-slot decision latencies and
  summarizes them as p50/p90/p99.  Recorders **merge associatively**
  (sample multisets concatenate, and :func:`percentile` sorts), so
  per-shard recorders from fleet worker processes (:mod:`repro.fleet`)
  combine into fleet-wide percentiles in any grouping or order —
  ``merge(merge(a, b), c) == merge(a, merge(b, c))`` exactly.
- :meth:`LatencyRecorder.observe_registry` folds the samples into an obs
  registry histogram (:mod:`repro.obs.metrics`), whose fixed-bound buckets
  already merge associatively across processes — so fleet latencies travel
  the same snapshot/merge path as every other worker metric.

Exact percentiles require the raw samples; a recorder holds one float per
recorded slot, which is bounded by ``horizon × tiles`` in fleet runs (a few
MB at metro scale) — deliberately simple over a sketch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["LatencySummary", "LatencyRecorder", "latency_summary", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` at quantile ``q`` in [0, 1].

    Returns 0.0 for an empty sequence (idle status reports).  Nearest rank
    keeps the estimate an actual observed sample — the convention the
    service daemon's latency report established.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(samples) == 0:
        return 0.0
    # Coerce to plain floats: callers hand in lists, deques, and numpy
    # arrays (fleet workers ship samples as ndarrays), and the result must
    # stay JSON-serializable.
    ordered = sorted(float(s) for s in samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencySummary:
    """p50/p90/p99 + mean of one latency population, in seconds."""

    count: int
    mean_s: float
    p50_s: float
    p90_s: float
    p99_s: float

    def as_dict(self, *, unit: str = "ms") -> dict[str, float]:
        """JSON-ready dict; ``unit="ms"`` scales to milliseconds (reports)."""
        scale = 1e3 if unit == "ms" else 1.0
        return {
            "count": self.count,
            f"mean_{unit}": scale * self.mean_s,
            f"p50_{unit}": scale * self.p50_s,
            f"p90_{unit}": scale * self.p90_s,
            f"p99_{unit}": scale * self.p99_s,
        }


def latency_summary(samples: Sequence[float]) -> LatencySummary:
    """Summarize a latency sample list (seconds) as p50/p90/p99 + mean."""
    n = len(samples)
    ordered = sorted(float(s) for s in samples)

    def rank(q: float) -> float:
        if n == 0:
            return 0.0
        return ordered[min(n - 1, max(0, int(round(q * (n - 1)))))]

    return LatencySummary(
        count=n,
        mean_s=(sum(ordered) / n) if n else 0.0,
        p50_s=rank(0.50),
        p90_s=rank(0.90),
        p99_s=rank(0.99),
    )


@dataclass
class LatencyRecorder:
    """Accumulates latency samples; merges associatively across recorders.

    One recorder per fleet shard records every slot's decision latency;
    the driver merges worker recorders into fleet-wide percentiles.  The
    merge is multiset union, so grouping and order cannot change any
    quantile — the same algebra the obs registry's histogram merge obeys.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Record one latency observation (seconds)."""
        self.samples.append(float(seconds))

    def extend(self, seconds: Iterable[float]) -> None:
        """Record many observations at once (e.g. a worker's sample ship)."""
        self.samples.extend(float(s) for s in seconds)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other``'s samples into this recorder (returns ``self``)."""
        self.samples.extend(other.samples)
        return self

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> LatencySummary:
        return latency_summary(self.samples)

    def observe_registry(self, name: str, registry=None) -> None:
        """Fold every sample into obs histogram ``name``.

        Uses the process-global registry by default; the histogram's
        fixed-bound buckets then ride the ordinary snapshot merge/diff
        machinery across worker processes (:mod:`repro.utils.parallel`,
        the fleet driver).
        """
        from repro.obs import metrics as obs_metrics

        reg = registry if registry is not None else obs_metrics.global_registry()
        hist = reg.histogram(name)
        for s in self.samples:
            hist.observe(s)
