"""Per-SCN fairness metrics (beyond the paper; standard for multi-cell work).

The greedy coordination could in principle starve some SCNs (a SCN whose
coverage overlaps a stronger neighbour loses every contested task).  Jain's
fairness index quantifies how evenly a quantity is spread over the M SCNs:

    J(x) = (Σ x_m)² / ( M · Σ x_m² )  ∈ [1/M, 1]

J = 1 means perfectly even, 1/M means one SCN takes everything.  We report
it for cumulative reward, completed tasks, and accepted load.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SimulationResult
from repro.utils.validation import require

__all__ = ["jain_index", "fairness_summary"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index of a non-negative allocation vector."""
    x = np.asarray(values, dtype=float)
    require(x.ndim == 1 and x.size > 0, "values must be a non-empty 1-D vector")
    require(np.all(x >= 0), "values must be non-negative")
    total = x.sum()
    if total == 0.0:
        return 1.0  # nothing allocated anywhere — trivially even
    return float(total**2 / (x.size * (x**2).sum()))


def fairness_summary(result: SimulationResult) -> dict[str, float]:
    """Jain indices of the per-SCN cumulative reward, completions, and load.

    The per-SCN reward requires the per-pair attribution the recorder keeps
    only in aggregate, so reward fairness uses completed-task reward proxy:
    cumulative completed counts; accepted load uses the accepted counters.
    """
    completed = result.completed.sum(axis=0)
    accepted = result.accepted.sum(axis=0).astype(float)
    consumption = result.consumption.sum(axis=0)
    return {
        "jain_completed": jain_index(completed),
        "jain_accepted": jain_index(accepted),
        "jain_consumption": jain_index(consumption),
    }
