"""Performance metrics of the paper (§3.2, §5): regret, violations, ratio.

All metrics operate on :class:`repro.env.simulator.SimulationResult` time
series, so any recorded run — fresh or loaded from disk — can be analyzed.
"""

from repro.metrics.regret import regret_series, average_regret, sublinearity_exponent
from repro.metrics.violations import (
    violation_series,
    early_violation_ratio,
    per_slot_violation_rate,
)
from repro.metrics.ratio import performance_ratio, performance_ratio_series
from repro.metrics.energy import energy_series, energy_per_decision, energy_summary
from repro.metrics.fairness import fairness_summary, jain_index
from repro.metrics.latency import (
    LatencyRecorder,
    LatencySummary,
    latency_summary,
    percentile,
)
from repro.metrics.summary import comparison_rows, format_table

__all__ = [
    "regret_series",
    "average_regret",
    "sublinearity_exponent",
    "violation_series",
    "early_violation_ratio",
    "per_slot_violation_rate",
    "performance_ratio",
    "performance_ratio_series",
    "energy_series",
    "energy_per_decision",
    "energy_summary",
    "fairness_summary",
    "jain_index",
    "LatencyRecorder",
    "LatencySummary",
    "latency_summary",
    "percentile",
    "comparison_rows",
    "format_table",
]
