"""Constraint-violation metrics V1(T), V2(T) (paper §3.2, §5).

V1 accumulates the per-slot, per-SCN shortfall below the QoS threshold α
(constraint 1c); V2 accumulates the per-slot, per-SCN excess over the
resource capacity β (constraint 1d).  The simulator records both per slot;
this module adds the derived views used by the figures: cumulative curves,
per-slot violation *rates* (which should decrease for LFSC as it learns),
and the early-stage ratios behind the paper's "30% / 32% / 20% of
vUCB / FML / Random" headline.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SimulationResult
from repro.utils.validation import require

__all__ = ["violation_series", "per_slot_violation_rate", "early_violation_ratio"]


def violation_series(
    result: SimulationResult, *, kind: str = "total", basis: str = "expected"
) -> np.ndarray:
    """Cumulative violation curve of a run.

    Parameters
    ----------
    kind:
        ``"qos"`` — V1 only; ``"resource"`` — V2 only; ``"total"`` — V1+V2.
    basis:
        ``"expected"`` — the paper's definition (Σ v̄ / Σ q̄ of the selected
        set vs α/β); ``"realized"`` — observed draws, including realization
        noise.  With ``basis="expected"`` on a run recorded without
        expectations, the stored series already falls back to realized.
    """
    if basis == "expected":
        qos, res = result.violation_qos, result.violation_resource
    elif basis == "realized":
        qos, res = result.violation_qos_realized, result.violation_resource_realized
    else:
        raise ValueError(f"basis must be 'expected' or 'realized', got {basis!r}")
    if kind == "qos":
        return np.cumsum(qos)
    if kind == "resource":
        return np.cumsum(res)
    if kind == "total":
        return np.cumsum(qos + res)
    raise ValueError(f"kind must be 'qos', 'resource' or 'total', got {kind!r}")


def per_slot_violation_rate(
    result: SimulationResult, *, window: int = 100, kind: str = "total"
) -> np.ndarray:
    """Moving-average per-slot violation (length T − window + 1).

    A learning policy that respects the constraints "in the long term"
    (paper §4.1) shows a decreasing rate; constraint-blind baselines plateau.
    """
    require(window >= 1, f"window must be >= 1, got {window}")
    if kind == "qos":
        per_slot = result.violation_qos
    elif kind == "resource":
        per_slot = result.violation_resource
    elif kind == "total":
        per_slot = result.violation_qos + result.violation_resource
    else:
        raise ValueError(f"kind must be 'qos', 'resource' or 'total', got {kind!r}")
    if window > per_slot.shape[0]:
        window = per_slot.shape[0]
    kernel = np.ones(window) / window
    return np.convolve(per_slot, kernel, mode="valid")


def early_violation_ratio(
    policy: SimulationResult,
    baseline: SimulationResult,
    *,
    early_slots: int | None = None,
    kind: str = "total",
) -> float:
    """Policy's early-stage violations as a fraction of a baseline's.

    The paper reports LFSC's early-exploration violations at roughly 30%,
    32% and 20% of vUCB's, FML's and Random's.  ``early_slots`` defaults to
    the first 10% of the horizon.

    Returns
    -------
    The ratio in [0, ∞); ``nan`` when the baseline accumulated none.
    """
    require(
        policy.horizon == baseline.horizon,
        f"horizons differ: {policy.horizon} vs {baseline.horizon}",
    )
    if early_slots is None:
        early_slots = max(1, policy.horizon // 10)
    require(1 <= early_slots <= policy.horizon, "early_slots out of range")
    ours = violation_series(policy, kind=kind)[early_slots - 1]
    theirs = violation_series(baseline, kind=kind)[early_slots - 1]
    if theirs <= 0.0:
        return float("nan")
    return float(ours / theirs)
