"""Energy metrics for sleep-mode scenarios (DESIGN.md §11).

The ``sleep_mode`` scenario's activation layer records the power drawn by
the SCN fleet at every slot (``active_power`` per awake SCN plus
``sleep_power`` per sleeping one) into ``SimulationResult.extras["energy"]``.
This module turns that series into the derived views the scenario reports:
the cumulative energy curve, the headline *energy per accepted decision*
(how many joules the network spends to serve one offloaded task), and a
combined summary row.

Results recorded without an energy series (every non-sleep scenario) raise
:class:`KeyError` with a pointed message rather than inventing zeros.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SimulationResult

__all__ = ["energy_series", "energy_per_decision", "energy_summary"]


def _energy(result: SimulationResult) -> np.ndarray:
    try:
        return np.asarray(result.extras["energy"], dtype=np.float64)
    except KeyError:
        raise KeyError(
            "result has no 'energy' extras series; energy metrics apply to "
            "runs of an energy-aware scenario (e.g. --scenario sleep_mode)"
        ) from None


def energy_series(result: SimulationResult, *, cumulative: bool = True) -> np.ndarray:
    """The recorded per-slot energy draw, cumulative by default."""
    series = _energy(result)
    return np.cumsum(series) if cumulative else series


def energy_per_decision(result: SimulationResult) -> float:
    """Total energy divided by the number of accepted offloading decisions.

    The denominator is floored at one so an all-reject run reports its total
    energy rather than dividing by zero — matching
    :meth:`SimulationResult.summary`.
    """
    total = float(_energy(result).sum())
    accepted = float(np.asarray(result.accepted, dtype=np.float64).sum())
    return total / max(accepted, 1.0)


def energy_summary(result: SimulationResult) -> dict:
    """Headline energy numbers of one run, as a JSON-safe dict."""
    series = _energy(result)
    accepted = float(np.asarray(result.accepted, dtype=np.float64).sum())
    return {
        "total_energy": float(series.sum()),
        "mean_slot_energy": float(series.mean()) if series.size else 0.0,
        "energy_per_decision": float(series.sum()) / max(accepted, 1.0),
        "accepted_decisions": accepted,
    }
