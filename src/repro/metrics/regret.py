"""Regret R(T) and its sub-linearity diagnostics (paper §3.2, Theorem 1).

The regret compares the *expected* compound reward collected by a policy
against the Oracle's on the same workload:

    R(t) = Σ_{s ≤ t} E[reward of Oracle at s] − Σ_{s ≤ t} E[reward of policy at s].

Theorem 1 proves R(T) = o(T); empirically we verify this by estimating the
growth exponent θ in R(t) ≈ C·t^θ over the tail of the run and checking
θ < 1 (``benchmarks/bench_regret_sublinear.py``).
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SimulationResult
from repro.utils.validation import require

__all__ = ["regret_series", "average_regret", "sublinearity_exponent"]


def regret_series(
    policy: SimulationResult, oracle: SimulationResult
) -> np.ndarray:
    """Cumulative regret R(t) for t = 1..T against an oracle run.

    Both runs must share the horizon (and, for the number to be meaningful,
    the workload seed).  Uses the expected-reward series recorded by the
    simulator, which removes realization noise from the comparison.
    """
    require(
        policy.horizon == oracle.horizon,
        f"horizons differ: policy {policy.horizon} vs oracle {oracle.horizon}",
    )
    return np.cumsum(oracle.expected_reward) - np.cumsum(policy.expected_reward)


def average_regret(policy: SimulationResult, oracle: SimulationResult) -> np.ndarray:
    """Per-slot average regret R(t)/t — converges to 0 iff R is sub-linear."""
    series = regret_series(policy, oracle)
    return series / np.arange(1, len(series) + 1)


def sublinearity_exponent(
    series: np.ndarray, *, tail_fraction: float = 0.5
) -> float:
    """Estimate θ in series(t) ≈ C·t^θ by log-log least squares on the tail.

    Only the final ``tail_fraction`` of the horizon enters the fit (the early
    transient is not informative about asymptotics).  Non-positive values are
    clamped to a tiny epsilon before the log — a regret series that dips
    negative (policy beating the oracle through constraint violations) is
    trivially sub-linear.

    Returns
    -------
    The fitted exponent; < 1 indicates sub-linear growth.
    """
    require(0.0 < tail_fraction <= 1.0, f"tail_fraction in (0,1], got {tail_fraction}")
    series = np.asarray(series, dtype=float)
    T = series.shape[0]
    require(T >= 10, f"need at least 10 points to fit an exponent, got {T}")
    start = int(T * (1.0 - tail_fraction))
    t = np.arange(1, T + 1)[start:]
    y = np.maximum(series[start:], 1e-12)
    slope, _ = np.polyfit(np.log(t), np.log(y), 1)
    return float(slope)
