"""Comparison tables over sets of runs (for benches and EXPERIMENTS.md).

Turns a collection of :class:`SimulationResult` objects into the row format
the paper's evaluation reports — total reward, V1, V2, performance ratio,
reward relative to the Oracle — and renders plain-text tables so every
benchmark can print the series/rows it regenerates.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.env.simulator import SimulationResult
from repro.metrics.ratio import performance_ratio

__all__ = ["comparison_rows", "format_table"]


def comparison_rows(
    results: Mapping[str, SimulationResult] | Iterable[SimulationResult],
    *,
    oracle_name: str = "Oracle",
) -> list[dict[str, float | str]]:
    """One summary row per run.

    Columns: policy, total_reward, reward_vs_oracle (ratio; 1.0 for the
    oracle itself, nan if no oracle run present), violation_qos (V1),
    violation_resource (V2), total_violations, performance_ratio.
    """
    if isinstance(results, Mapping):
        items = list(results.items())
    else:
        items = [(r.policy_name, r) for r in results]
    oracle_reward = None
    for name, res in items:
        if name == oracle_name:
            oracle_reward = res.total_reward
    rows: list[dict[str, float | str]] = []
    for name, res in items:
        vs_oracle = (
            res.total_reward / oracle_reward
            if oracle_reward not in (None, 0.0)
            else float("nan")
        )
        rows.append(
            {
                "policy": name,
                "total_reward": res.total_reward,
                "reward_vs_oracle": vs_oracle,
                "violation_qos": float(res.violation_qos.sum()),
                "violation_resource": float(res.violation_resource.sum()),
                "total_violations": res.total_violations,
                "performance_ratio": performance_ratio(res),
            }
        )
    return rows


def format_table(
    rows: Sequence[Mapping[str, float | str]],
    *,
    columns: Sequence[str] | None = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned plain-text table.

    Column order follows ``columns`` when given, else the first row's keys.
    Floats are fixed-point with ``precision`` digits; other values are str().
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(value: float | str) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    table = [[cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[j]) for r in table)) for j, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in table)
    return "\n".join([header, rule, body])
