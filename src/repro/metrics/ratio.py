"""The performance ratio metric (paper §5).

Defined as the cumulative compound reward divided by (1 + cumulative
violations) — "the ratio between total reward and violations".  The +1
regularizes the denominator so violation-free runs are well-defined.  It
rewards exactly the balance LFSC targets: reward-hungry but constraint-blind
baselines (vUCB/FML) are penalized by their violation totals; Random is
penalized on both counts.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import SimulationResult
from repro.metrics.violations import violation_series

__all__ = ["performance_ratio", "performance_ratio_series"]


def performance_ratio(result: SimulationResult) -> float:
    """Final-horizon performance ratio: total reward / (1 + total violations)."""
    return float(result.total_reward / (1.0 + result.total_violations))


def performance_ratio_series(result: SimulationResult) -> np.ndarray:
    """The ratio at every prefix horizon t = 1..T (for convergence plots)."""
    reward = result.cumulative_reward
    violations = violation_series(result, kind="total")
    return reward / (1.0 + violations)
