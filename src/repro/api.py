"""Stable high-level entry points: ``run``, ``replicate``, ``compare``.

The building blocks (:class:`~repro.experiments.runner.ExperimentConfig`,
:func:`~repro.experiments.runner.run_experiment`, the metrics helpers) stay
importable forever, but stitching them together for the common questions —
"run the line-up", "is the ordering seed-robust", "how close is LFSC to the
Oracle" — takes boilerplate that every script used to repeat.  This module
is the supported facade over that boilerplate:

>>> from repro import api
>>> result = api.run(scale="small", horizon=300)
>>> print(result.table())                               # doctest: +SKIP
>>> rep = api.replicate(scale="small", horizon=200, seeds=3)
>>> comp = api.compare("LFSC", "Oracle", scale="small", horizon=300)

The online service (DESIGN.md §10) surfaces here too: ``open_session``
builds a checkpointable slot-by-slot session, ``resume_session`` restores
one bit-identically from a ``repro-checkpoint/v1`` file, ``serve`` starts
the socket daemon, and ``describe_checkpoint`` inspects a snapshot:

>>> sess = api.open_session(scale="tiny", horizon=100)
>>> sess.run(50).save("run.ckpt")                       # doctest: +SKIP
>>> api.resume_session("run.ckpt").run()                # doctest: +SKIP

Each function accepts either a ready :class:`ExperimentConfig` (positional
or ``config=``) or a ``scale`` preset name plus keyword overrides, and
returns a typed result object carrying the resolved config, the raw
per-policy results, and ``rows()``/``table()`` renderers.  The facade adds
no behaviour of its own — results are bit-identical to calling the
underlying functions directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.env.simulator import SimulationResult
from repro.experiments.replication import (
    ReplicatedSummary,
    replicate as _replicate_summaries,
    replication_rows,
    replication_seed_list,
)
from repro.experiments.runner import (
    ExperimentConfig,
    run_experiment,
)
from repro.metrics import comparison_rows, format_table
from repro.policies import DEFAULT_POLICIES, normalize_policy_arg, normalize_specs
from repro.metrics.violations import early_violation_ratio

__all__ = [
    "ComparisonResult",
    "ReplicationResult",
    "RunResult",
    "compare",
    "describe_checkpoint",
    "open_session",
    "replicate",
    "resume_session",
    "run",
    "run_fleet",
    "serve",
]

_SCALES = {
    "paper": ExperimentConfig.paper,
    "small": ExperimentConfig.small,
    "tiny": ExperimentConfig.tiny,
}


def _resolve_config(
    config: ExperimentConfig | None,
    scale: str,
    overrides: Mapping[str, object],
    scenario: "str | Path | None" = None,
) -> ExperimentConfig:
    """An explicit config, a scenario (name or file), or a preset by name.

    ``scenario`` resolves through the registry (DESIGN.md §11): a registered
    name or a TOML/JSON scenario file, yielding the scenario's base config
    with the spec attached; keyword ``overrides`` apply on top.  Mutually
    exclusive with an explicit ``config``; takes precedence over ``scale``.
    """
    if scenario is not None:
        if config is not None:
            raise ValueError("pass either config or scenario, not both")
        from repro import scenarios

        return scenarios.resolve_scenario(scenario).config(**overrides)
    if config is not None:
        return config.with_overrides(**overrides) if overrides else config
    try:
        preset = _SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}"
        ) from None
    return preset(**overrides)


# ---------------------------------------------------------------------------
# Result objects.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunResult:
    """One experiment run: the resolved config and the per-policy results.

    Mapping-style access returns the underlying
    :class:`~repro.env.simulator.SimulationResult` per policy.
    """

    config: ExperimentConfig
    results: dict[str, SimulationResult]

    @property
    def policies(self) -> tuple[str, ...]:
        return tuple(self.results)

    def __getitem__(self, policy: str) -> SimulationResult:
        return self.results[policy]

    def __iter__(self):
        return iter(self.results)

    def rows(self) -> list[dict[str, float | str]]:
        """The paper's comparison rows (reward, violations, ratio)."""
        return comparison_rows(self.results)

    def table(self, *, precision: int = 2) -> str:
        """The comparison table as rendered by ``repro run``."""
        return format_table(self.rows(), precision=precision)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-policy scalar summaries (see ``SimulationResult.summary``)."""
        return {name: res.summary() for name, res in self.results.items()}


@dataclass(frozen=True)
class ReplicationResult:
    """A multi-seed replication: aggregates of every summary metric.

    ``summaries[policy][metric]`` is a
    :class:`~repro.experiments.replication.ReplicatedSummary` (mean, std,
    confidence interval, n).
    """

    config: ExperimentConfig
    seeds: tuple[int, ...]
    confidence: float
    summaries: dict[str, dict[str, ReplicatedSummary]]

    @property
    def policies(self) -> tuple[str, ...]:
        return tuple(self.summaries)

    def __getitem__(self, policy: str) -> dict[str, ReplicatedSummary]:
        return self.summaries[policy]

    def rows(
        self,
        *,
        metrics: Sequence[str] = ("total_reward", "total_violations", "performance_ratio"),
        precision: int = 1,
    ) -> list[dict[str, str]]:
        """Table rows with ``mean ± ci`` strings."""
        return replication_rows(self.summaries, metrics=metrics, precision=precision)

    def table(self, *, precision: int = 1) -> str:
        return format_table(self.rows(precision=precision))


@dataclass(frozen=True)
class ComparisonResult:
    """A head-to-head of one policy against a baseline on shared randomness."""

    config: ExperimentConfig
    policy: str
    baseline: str
    run: RunResult = field(repr=False)
    #: policy total reward / baseline total reward.
    reward_ratio: float
    #: early-stage violation count ratio (paper §5), NaN when undefined.
    early_violation_ratio: float

    def rows(self) -> list[dict[str, float | str]]:
        return self.run.rows()

    def table(self, *, precision: int = 2) -> str:
        return self.run.table(precision=precision)


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def run(
    config: ExperimentConfig | None = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    scale: str = "small",
    scenario: str | Path | None = None,
    workers: int | None = None,
    transport: str = "auto",
    **overrides,
) -> RunResult:
    """Run the named policies on one shared workload.

    Parameters
    ----------
    config:
        A ready :class:`ExperimentConfig`; when omitted, the ``scale``
        preset (``"paper"``/``"small"``/``"tiny"``) is built instead.
        Keyword ``overrides`` (e.g. ``horizon=500``, ``seed=3``,
        ``alpha=14.0``, ``cache_dir="~/.cache/repro"`` for the on-disk
        Oracle memo, ``shared_window=False`` to disable cross-run window
        sharing — DESIGN.md §9) apply on top of either.
    policies:
        Registry policy specs (default: the paper's Fig. 2 line-up) — name
        strings (``"LFSC"``), parameterized spec strings
        (``"linucb(alpha=0.5)"``), :class:`~repro.policies.PolicySpec`
        objects, or pre-built :class:`~repro.policies.PolicyDefinition`
        entries.  Every entry is validated fail-closed up front
        (:func:`repro.policies.normalize_specs`); result keys are the
        canonical spec strings.
    scenario:
        A registered scenario name (``"vehicular"``, ``"sleep_mode"``, …)
        or a TOML/JSON scenario file; resolves to the scenario's config
        with the spec attached (DESIGN.md §11).  Mutually exclusive with
        ``config``.
    workers:
        ``None``/``1`` serial, ``0`` one process per core, ``n`` a pool of n
        — bit-identical results across all settings.
    transport:
        Parallel result transport (``"auto"``/``"shm"``/``"pickle"``).
    """
    cfg = _resolve_config(config, scale, overrides, scenario)
    results = run_experiment(
        cfg, normalize_specs(policies), workers=workers, transport=transport
    )
    return RunResult(config=cfg, results=results)


def replicate(
    config: ExperimentConfig | None = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    scale: str = "small",
    scenario: str | Path | None = None,
    seeds: Sequence[int] | int = 5,
    confidence: float = 0.95,
    workers: int | None = 0,
    transport: str = "auto",
    manifest_dir: str | Path | None = None,
    **overrides,
) -> ReplicationResult:
    """Run the experiment at several seeds and aggregate every summary metric.

    ``seeds`` is either a replication count (seeds derived from
    ``config.seed`` via the frozen stream contract) or an explicit list.
    Other parameters follow :func:`run` (including ``scenario``);
    ``manifest_dir`` writes the sweep's provenance manifest up front.
    """
    cfg = _resolve_config(config, scale, overrides, scenario)
    summaries = _replicate_summaries(
        cfg,
        normalize_specs(policies),
        seeds=seeds,
        confidence=confidence,
        workers=workers,
        transport=transport,
        manifest_dir=manifest_dir,
    )
    return ReplicationResult(
        config=cfg,
        seeds=tuple(replication_seed_list(cfg.seed, seeds)),
        confidence=confidence,
        summaries=summaries,
    )


def compare(
    policy: str = "LFSC",
    baseline: str = "Oracle",
    config: ExperimentConfig | None = None,
    *,
    scale: str = "small",
    scenario: str | Path | None = None,
    workers: int | None = None,
    **overrides,
) -> ComparisonResult:
    """Head-to-head of ``policy`` vs ``baseline`` on identical randomness.

    Returns the reward ratio and the paper's early-stage violation ratio
    alongside the full :class:`RunResult` of both policies.
    """
    cfg = _resolve_config(config, scale, overrides, scenario)
    policy = normalize_policy_arg(policy)
    baseline = normalize_policy_arg(baseline)
    result = run(cfg, (baseline, policy), workers=workers)
    base_reward = result[baseline].total_reward
    ratio = result[policy].total_reward / base_reward if base_reward else float("nan")
    return ComparisonResult(
        config=cfg,
        policy=policy,
        baseline=baseline,
        run=result,
        reward_ratio=float(ratio),
        early_violation_ratio=float(
            early_violation_ratio(result[policy], result[baseline])
        ),
    )


# ---------------------------------------------------------------------------
# Fleet-scale sharded simulation (DESIGN.md §12).
# ---------------------------------------------------------------------------


def run_fleet(
    config=None,
    *,
    shards: int = 1,
    mode: str = "auto",
    verify: bool = False,
    **overrides,
):
    """Run a metro-scale tiled fleet, sharded over worker processes.

    Parameters
    ----------
    config:
        A ready :class:`~repro.fleet.topology.FleetConfig`; when omitted one
        is built from keyword ``overrides`` (e.g. ``tiles_x=4, tiles_y=4,
        scns_per_tile=25, horizon=1000, coverage="mobility"``).
    shards:
        Worker-shard count (clamped to the tile count).  Per-tile series
        are bit-identical at every value — tile streams derive from
        ``(seed, tile)`` under the fleet RNG namespace.
    mode:
        ``"auto"`` (processes when ``shards >= 2`` and supported),
        ``"serial"``, or ``"process"``.
    verify:
        Re-run unsharded (``shards=1``, serial) and assert the per-tile
        series match the sharded run exactly before returning.

    Returns
    -------
    :class:`~repro.fleet.driver.FleetResult` — per-tile series, per-shard
    decision-latency percentiles, migrant/round counts, and throughput
    (``decisions_per_min``).
    """
    from repro.fleet import FleetConfig, fleet_series_equal
    from repro.fleet import run_fleet as _run_fleet

    if config is None:
        cfg = FleetConfig(**overrides)
    elif overrides:
        cfg = config.with_overrides(**overrides)
    else:
        cfg = config
    result = _run_fleet(cfg, shards=shards, mode=mode)
    if verify and result.shards > 1:
        reference = _run_fleet(cfg, shards=1, mode="serial")
        if not fleet_series_equal(result, reference):
            raise AssertionError(
                f"sharded fleet run (shards={result.shards}) diverged from "
                "the unsharded reference"
            )
    return result


# ---------------------------------------------------------------------------
# Online service (DESIGN.md §10).
# ---------------------------------------------------------------------------


def open_session(
    config: ExperimentConfig | None = None,
    *,
    policy: str = "LFSC",
    scale: str = "small",
    scenario: str | Path | None = None,
    record_expected: bool = True,
    validate_assignments: bool = True,
    **overrides,
):
    """A fresh checkpointable :class:`~repro.service.session.OnlineSession`.

    Config resolution matches :func:`run` (explicit config, a ``scenario``
    name/file, or a scale preset plus overrides).  The session advances
    with ``decide()`` / ``feedback()`` / ``run(n)``, snapshots with
    ``save(path)``, and its ``result()`` is bit-identical to the batch
    simulator's per-slot run.
    """
    from repro.service import OnlineSession

    cfg = _resolve_config(config, scale, overrides, scenario)
    return OnlineSession(
        cfg,
        policy=policy,
        record_expected=record_expected,
        validate_assignments=validate_assignments,
    )


def resume_session(path: str | Path):
    """Restore a session from a ``repro-checkpoint/v1`` file.

    The restored session continues bit-identically to one that never
    stopped — same assignments, same realizations, same recorded series
    (``tests/service/test_resume_equivalence.py``).
    """
    from repro.service import OnlineSession

    return OnlineSession.from_checkpoint(path)


def describe_checkpoint(path: str | Path) -> dict:
    """Digest-verify a checkpoint file and summarize its coordinates."""
    from repro.service.session import describe_checkpoint as _describe

    return _describe(path)


def serve(
    config: ExperimentConfig | None = None,
    *,
    policy: str = "LFSC",
    scale: str = "small",
    scenario: str | Path | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 0,
    resume_from: str | Path | None = None,
    **overrides,
):
    """Start a :class:`~repro.service.daemon.PolicyDaemon` (background thread).

    Returns the started daemon; ``daemon.address`` is the bound (host,
    port).  ``resume_from`` restores the session from a checkpoint instead
    of starting fresh (``config``/``policy`` are then taken from the
    snapshot and must not conflict).
    """
    from repro.service import OnlineSession, PolicyDaemon

    if resume_from is not None:
        if config is not None or scenario is not None:
            raise ValueError("pass either config/scenario or resume_from, not both")
        session = OnlineSession.from_checkpoint(resume_from)
    else:
        cfg = _resolve_config(config, scale, overrides, scenario)
        session = OnlineSession(cfg, policy=policy)
    daemon = PolicyDaemon(
        session,
        host=host,
        port=port,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
    daemon.start()
    return daemon
