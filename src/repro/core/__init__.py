"""LFSC — the paper's online learning framework (DESIGN.md S6-S10).

- :mod:`repro.core.hypercube`   — uniform context partition (h_T)^D (§4.2);
- :mod:`repro.core.probability` — Alg. 2, capped exponential-weights
  selection probabilities (Exp3.M-style);
- :mod:`repro.core.greedy`      — Alg. 4, the (c+1)-approximate greedy
  bipartite assignment coordinating all SCNs;
- :mod:`repro.core.multipliers` — Lagrange multipliers for constraints
  (1c)/(1d) with projected dual ascent;
- :mod:`repro.core.estimators`  — importance-weighted unbiased estimates and
  per-hypercube running statistics;
- :mod:`repro.core.update`      — Alg. 3, the weight/multiplier update;
- :mod:`repro.core.lfsc`        — Alg. 1, the LFSC policy tying it together;
- :mod:`repro.core.config`      — tunables incl. theorem-suggested defaults;
- :mod:`repro.core.base`        — the policy ABC shared with the baselines.
"""

from repro.core.base import OffloadingPolicy
from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.core.probability import CappedProbabilities, capped_probabilities
from repro.core.greedy import greedy_select
from repro.core.multipliers import LagrangeMultipliers
from repro.core.estimators import CubeStatistics, importance_weighted
from repro.core.lfsc import LFSCPolicy

__all__ = [
    "OffloadingPolicy",
    "LFSCConfig",
    "ContextPartition",
    "CappedProbabilities",
    "capped_probabilities",
    "greedy_select",
    "LagrangeMultipliers",
    "CubeStatistics",
    "importance_weighted",
    "LFSCPolicy",
]
