"""The learner's uniform hypercube partition of Φ (paper §4.2).

LFSC avoids learning one weight per distinct context (combinatorial
explosion) by partitioning the context space Φ = [0,1]^D into (h_T)^D
identical hypercubes and maintaining one weight per (SCN, hypercube), under
the similarity hypothesis: tasks with similar contexts give similar feedback
at a given SCN.  The partition is shared by LFSC, vUCB, and FML so their
context discretization is identical (as in the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.partition import cell_centers, num_cells, uniform_cell_indices
from repro.utils.validation import check_positive

__all__ = ["ContextPartition"]


@dataclass(frozen=True)
class ContextPartition:
    """Uniform partition of [0,1]^dims into parts^dims hypercubes.

    Parameters
    ----------
    dims:
        Context dimensionality D.
    parts:
        Divisions per dimension — the paper's h_T (evaluation default 3,
        "we divide the input/output data size into three categories").
    """

    dims: int = 3
    parts: int = 3

    #: ``assign`` is a pure function of the context (the partition never
    #: changes), so the windowed simulator may classify contexts slots ahead
    #: of time.  Stateful partitions that refine over a run (e.g.
    #: ``repro.core.adaptive.AdaptivePartition``) must leave this False —
    #: their precomputed cube indices would go stale after a split.
    windowable = True

    def __post_init__(self) -> None:
        check_positive("dims", self.dims)
        check_positive("parts", self.parts)

    @property
    def num_cubes(self) -> int:
        """Total number of hypercubes F = (h_T)^D."""
        return num_cells(self.parts, self.dims)

    @property
    def cube_side(self) -> float:
        """Side length of each hypercube, 1/h_T."""
        return 1.0 / self.parts

    def assign(self, contexts: np.ndarray) -> np.ndarray:
        """Flat hypercube index for each context row (the paper's f_{i,t})."""
        return uniform_cell_indices(contexts, self.parts)

    def centers(self) -> np.ndarray:
        """``(F, D)`` hypercube centers in flat-index order."""
        return cell_centers(self.parts, self.dims)

    @staticmethod
    def theorem_parts(horizon: int, dims: int) -> int:
        """The h_T rate that balances approximation vs. estimation error.

        The contextual-bandit partitioning literature the paper builds on
        sets h_T = ceil(T^{1/(2+D)}): finer cubes reduce the within-cube
        approximation error (Assumption 1's Hölder bound) while coarser
        cubes give each cube more samples.
        """
        check_positive("horizon", horizon)
        check_positive("dims", dims)
        return max(1, int(np.ceil(horizon ** (1.0 / (2.0 + dims)))))
