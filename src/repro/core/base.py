"""The offloading-policy abstract base class.

Implements the contract the simulator expects (see
:class:`repro.env.simulator.PolicyProtocol`) plus small shared conveniences.
LFSC and every baseline derive from :class:`OffloadingPolicy`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation

__all__ = ["OffloadingPolicy"]


class OffloadingPolicy(ABC):
    """Base class for task-offloading policies.

    Subclasses implement :meth:`select` and (optionally) :meth:`_update`;
    :meth:`reset` may be extended but must call ``super().reset(...)``.

    Attributes available after :meth:`reset`:

    - ``self.network`` — the :class:`NetworkConfig` (M, c, α, β);
    - ``self.horizon`` — the announced number of slots T;
    - ``self.rng``     — the policy's private random stream;
    - ``self.t``       — the index of the slot currently being decided.
    """

    #: Human-readable policy name (used in results and plots).
    name: str = "policy"

    def __init__(self) -> None:
        self.network: NetworkConfig | None = None
        self.horizon: int = 0
        self.rng: np.random.Generator = np.random.default_rng(0)
        self.t: int = 0

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        """Prepare internal state for a fresh run."""
        self.network = network
        self.horizon = int(horizon)
        self.rng = rng
        self.t = 0

    @abstractmethod
    def select(self, slot: SlotObservation) -> Assignment:
        """Return this slot's offloading assignment."""

    def update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        """Consume feedback, then advance the slot counter."""
        self._update(slot, feedback)
        self.t += 1

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        """Subclass hook; default is stateless (e.g. the Random baseline)."""

    # -- checkpoint/restore --------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Learning state beyond what :meth:`reset` rebuilds.

        Values may be numpy arrays or JSON scalars; the checkpoint container
        (:mod:`repro.service.checkpoint`) routes each kind to the right
        section.  The RNG stream is captured separately by the session —
        policies must never serialize ``self.rng`` themselves.  Subclasses
        extend the dict via ``super().checkpoint_state()``.
        """
        return {"t": int(self.t)}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore a :meth:`checkpoint_state` snapshot onto a reset policy.

        Called after :meth:`reset`, so only the mutated state needs
        reassigning; a stateless baseline restores just the slot counter.
        """
        self.t = int(state["t"])

    # -- shared helpers -----------------------------------------------------

    def _require_reset(self) -> NetworkConfig:
        if self.network is None:
            raise RuntimeError(
                f"{type(self).__name__}.select() called before reset(); "
                "run it through Simulation.run() or call reset() first"
            )
        return self.network
