"""Alg. 4 — the greedy collaborative assignment across SCNs.

Input is the weighted bipartite graph G = (M, D_t, E): an edge (m, i) exists
when task i is inside SCN m's coverage, weighted by SCN m's selection
probability for i (Alg. 2's output, or a baseline's index).  The greedy rule
repeatedly takes the heaviest remaining edge; the pair is accepted when SCN m
still has spare communication capacity and task i is unassigned (constraint
1b), otherwise the edge is discarded.

The paper proves (Appendix A.2, charging argument) this is a
(c+1)-approximation of the maximum-weight b-matching, and observes it is much
closer to optimal in practice — our benchmarks confirm both.

The hot path is a single argsort over all edges (≈ M·K ≤ 3,000 at paper
scale) followed by a linear pass; per the HPC guides the pass itself stays in
plain Python because each iteration is a couple of array reads — NumPy calls
inside the loop would be slower than scalar indexing at this size.
"""

from __future__ import annotations

import numpy as np

from repro.env.simulator import Assignment
from repro.utils.validation import check_positive

__all__ = ["greedy_select", "edges_from_coverage"]


def edges_from_coverage(
    coverage: list[np.ndarray], weights_per_scn: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-SCN coverage lists into parallel edge arrays.

    Parameters
    ----------
    coverage:
        ``coverage[m]`` — task indices covered by SCN m (the paper's D_{m,t}).
    weights_per_scn:
        ``weights_per_scn[m]`` — edge weight for each covered task, aligned
        with ``coverage[m]``.

    Returns
    -------
    (edge_scn, edge_task, edge_weight):
        Parallel 1-D arrays over all edges of the bipartite graph.
    """
    if len(coverage) != len(weights_per_scn):
        raise ValueError(
            f"coverage lists {len(coverage)} SCNs, weights list {len(weights_per_scn)}"
        )
    scn_parts, task_parts, weight_parts = [], [], []
    for m, (tasks, w) in enumerate(zip(coverage, weights_per_scn)):
        tasks = np.asarray(tasks, dtype=np.int64)
        w = np.asarray(w, dtype=float)
        if tasks.shape != w.shape:
            raise ValueError(
                f"SCN {m}: coverage has {tasks.shape[0]} tasks but {w.shape[0]} weights"
            )
        scn_parts.append(np.full(tasks.shape[0], m, dtype=np.int64))
        task_parts.append(tasks)
        weight_parts.append(w)
    if not scn_parts:
        return (np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0))
    return (
        np.concatenate(scn_parts),
        np.concatenate(task_parts),
        np.concatenate(weight_parts),
    )


def greedy_select(
    coverage: list[np.ndarray],
    weights_per_scn: list[np.ndarray],
    capacity: int,
    num_tasks: int,
) -> Assignment:
    """Run Alg. 4 and return the collaborative assignment Ω.

    Parameters
    ----------
    coverage, weights_per_scn:
        The bipartite graph, per-SCN (see :func:`edges_from_coverage`).
    capacity:
        Communication capacity c — max tasks per SCN (constraint 1a).
    num_tasks:
        Total number of distinct tasks n_t this slot (sizes the
        "already assigned" bookkeeping).

    Notes
    -----
    Ties in edge weight are broken by edge order (stable sort), which is
    deterministic given the inputs; callers wanting randomized tie-breaking
    should jitter the weights.
    """
    check_positive("capacity", capacity)
    edge_scn, edge_task, edge_w = edges_from_coverage(coverage, weights_per_scn)
    if edge_scn.size == 0:
        return Assignment.empty()

    order = np.argsort(-edge_w, kind="stable")
    edge_scn = edge_scn[order]
    edge_task = edge_task[order]

    load = np.zeros(len(coverage), dtype=np.int64)  # C(m) in Alg. 4
    taken = np.zeros(num_tasks, dtype=bool)  # constraint (1b)
    sel_scn: list[int] = []
    sel_task: list[int] = []
    # Linear pass over edges in decreasing weight (Alg. 4 lines 2-8).
    scn_list = edge_scn.tolist()
    task_list = edge_task.tolist()
    for m, i in zip(scn_list, task_list):
        if taken[i] or load[m] >= capacity:
            continue
        taken[i] = True
        load[m] += 1
        sel_scn.append(m)
        sel_task.append(i)
    return Assignment(
        scn=np.asarray(sel_scn, dtype=np.int64),
        task=np.asarray(sel_task, dtype=np.int64),
    )
