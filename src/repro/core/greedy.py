"""Alg. 4 — the greedy collaborative assignment across SCNs.

Input is the weighted bipartite graph G = (M, D_t, E): an edge (m, i) exists
when task i is inside SCN m's coverage, weighted by SCN m's selection
probability for i (Alg. 2's output, or a baseline's index).  The greedy rule
repeatedly takes the heaviest remaining edge; the pair is accepted when SCN m
still has spare communication capacity and task i is unassigned (constraint
1b), otherwise the edge is discarded.

The paper proves (Appendix A.2, charging argument) this is a
(c+1)-approximation of the maximum-weight b-matching, and observes it is much
closer to optimal in practice — our benchmarks confirm both.

The hot path is a single argsort over all edges (≈ M·K ≤ 3,000 at paper
scale) followed by a linear pass; per the HPC guides the pass itself stays in
plain Python because each iteration is a couple of scalar reads — NumPy calls
inside the loop would be slower than scalar indexing at this size.  The
bookkeeping uses a ``bytearray``/list (not ndarrays) for the same reason, the
output arrays are preallocated at the matching-size bound min(n, M·c), and
the pass exits early once that bound is reached.

Two entry points share the kernel: :func:`greedy_select` takes the per-SCN
coverage/weight lists the reference LFSC path produces, and
:func:`greedy_select_edges` takes the flat edge list the batched slot engine
already holds (skipping the concatenation).
"""

from __future__ import annotations

import numpy as np

from repro.core import native as _native
from repro.env.simulator import Assignment
from repro.utils.validation import check_positive

__all__ = ["greedy_select", "greedy_select_edges", "edges_from_coverage"]


def _descending_stable_order(w: np.ndarray) -> np.ndarray:
    """Stable descending argsort of float64 weights.

    For strictly positive finite float64, the IEEE-754 bit pattern viewed as
    uint64 is monotone in the float value, so a stable ascending sort of the
    complemented bits equals ``np.argsort(-w, kind="stable")`` exactly —
    including tie order — while sorting integers (~20% faster at the edge
    counts the slot engine sees).  Anything else (zeros, negatives, NaN)
    falls back to the float sort.
    """
    if w.dtype == np.float64 and w.size and w.min() > 0.0:
        return np.argsort(~w.view(np.uint64), kind="stable")
    return np.argsort(-w, kind="stable")


def edges_from_coverage(
    coverage: list[np.ndarray], weights_per_scn: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-SCN coverage lists into parallel edge arrays.

    Parameters
    ----------
    coverage:
        ``coverage[m]`` — task indices covered by SCN m (the paper's D_{m,t}).
    weights_per_scn:
        ``weights_per_scn[m]`` — edge weight for each covered task, aligned
        with ``coverage[m]``.

    Returns
    -------
    (edge_scn, edge_task, edge_weight):
        Parallel 1-D arrays over all edges of the bipartite graph.
    """
    if len(coverage) != len(weights_per_scn):
        raise ValueError(
            f"coverage lists {len(coverage)} SCNs, weights list {len(weights_per_scn)}"
        )
    scn_parts, task_parts, weight_parts = [], [], []
    for m, (tasks, w) in enumerate(zip(coverage, weights_per_scn)):
        tasks = np.asarray(tasks, dtype=np.int64)
        w = np.asarray(w, dtype=float)
        if tasks.shape != w.shape:
            raise ValueError(
                f"SCN {m}: coverage has {tasks.shape[0]} tasks but {w.shape[0]} weights"
            )
        scn_parts.append(np.full(tasks.shape[0], m, dtype=np.int64))
        task_parts.append(tasks)
        weight_parts.append(w)
    if not scn_parts:
        return (np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0))
    return (
        np.concatenate(scn_parts),
        np.concatenate(task_parts),
        np.concatenate(weight_parts),
    )


def greedy_select_edges(
    edge_scn: np.ndarray,
    edge_task: np.ndarray,
    edge_weight: np.ndarray,
    num_scns: int,
    capacity: int,
    num_tasks: int,
) -> Assignment:
    """Alg. 4 on a flat edge list (the batched slot engine's native layout).

    Parameters
    ----------
    edge_scn, edge_task, edge_weight:
        Parallel 1-D arrays over the bipartite graph's edges (any order).
    num_scns:
        Number of SCNs M (sizes the per-SCN load bookkeeping).
    capacity:
        Communication capacity c — max tasks per SCN (constraint 1a).
    num_tasks:
        Total number of distinct tasks n_t this slot.

    Notes
    -----
    Ties in edge weight are broken by edge order (stable sort), which is
    deterministic given the inputs; callers wanting randomized tie-breaking
    should jitter the weights.
    """
    check_positive("capacity", capacity)
    if edge_scn.size == 0:
        return Assignment.empty()

    order = _descending_stable_order(edge_weight)

    # No assignment can exceed the b-matching size bound min(n, M·c).
    E = edge_scn.shape[0]
    bound = min(num_tasks, num_scns * capacity, E)
    if bound == 0:
        return Assignment.empty()

    if (
        edge_scn.dtype == np.int64
        and edge_task.dtype == np.int64
        and edge_scn.flags.c_contiguous
        and edge_task.flags.c_contiguous
        and order.dtype == np.int64
        and order.flags.c_contiguous
    ):
        # Native pass (repro.core.native): the same accept/reject scan in
        # C, walking `order` directly so the sorted gathers are skipped.
        taken_u8 = np.zeros(num_tasks, dtype=np.uint8)
        rem_i64 = np.full(num_scns, capacity, dtype=np.int64)
        sel_scn_buf = np.empty(bound, dtype=np.int64)
        sel_task_buf = np.empty(bound, dtype=np.int64)
        n_sel = _native.greedy_pass(
            edge_scn, edge_task, order, taken_u8, rem_i64, bound,
            sel_scn_buf, sel_task_buf,
        )
        if n_sel >= 0:
            return Assignment(
                scn=sel_scn_buf[:n_sel].copy(), task=sel_task_buf[:n_sel].copy()
            )

    scn_sorted = edge_scn[order]
    task_sorted = edge_task[order]
    sel_scn: list[int] = []
    sel_task: list[int] = []
    push_scn = sel_scn.append
    push_task = sel_task.append
    taken = bytearray(num_tasks)  # constraint (1b)
    count = 0
    if capacity < 256:
        # Remaining capacity per SCN (Alg. 4's c − C(m)).  Rejection is
        # monotone — a taken task or a full SCN never becomes valid again —
        # so each chunk of the sorted edge stream can be pre-filtered
        # against the current state in one vectorized shot (through
        # zero-copy views onto the bookkeeping buffers) before the scalar
        # pass re-checks the few survivors; this skips the long rejected
        # tail that dominates once the top edges have filled most slots.
        rem = bytearray([capacity] * num_scns)
        taken_np = np.frombuffer(taken, dtype=np.uint8)
        rem_np = np.frombuffer(rem, dtype=np.uint8)
        chunk = max(bound, 256)
        pos = 0
        while pos < E:
            end = min(pos + chunk, E)
            t_chunk = task_sorted[pos:end]
            s_chunk = scn_sorted[pos:end]
            live = np.flatnonzero((taken_np[t_chunk] == 0) & (rem_np[s_chunk] != 0))
            # Linear pass over the surviving edges in decreasing weight
            # (Alg. 4 lines 2-8); earlier accepts within the chunk can
            # invalidate later survivors, hence the scalar re-check.
            for m, i in zip(s_chunk[live].tolist(), t_chunk[live].tolist()):
                if taken[i] or not rem[m]:
                    continue
                taken[i] = 1
                rem[m] -= 1
                push_scn(m)
                push_task(i)
                count += 1
                if count == bound:
                    break
            if count == bound:
                break
            pos = end
    else:
        # Huge-capacity fallback (exceeds a bytearray cell): plain pass.
        load = [0] * num_scns
        for m, i in zip(scn_sorted.tolist(), task_sorted.tolist()):
            if taken[i] or load[m] >= capacity:
                continue
            taken[i] = 1
            load[m] += 1
            push_scn(m)
            push_task(i)
            count += 1
            if count == bound:
                break
    return Assignment(
        scn=np.asarray(sel_scn, dtype=np.int64), task=np.asarray(sel_task, dtype=np.int64)
    )


def greedy_select(
    coverage: list[np.ndarray],
    weights_per_scn: list[np.ndarray],
    capacity: int,
    num_tasks: int,
) -> Assignment:
    """Run Alg. 4 and return the collaborative assignment Ω.

    Parameters
    ----------
    coverage, weights_per_scn:
        The bipartite graph, per-SCN (see :func:`edges_from_coverage`).
    capacity:
        Communication capacity c — max tasks per SCN (constraint 1a).
    num_tasks:
        Total number of distinct tasks n_t this slot (sizes the
        "already assigned" bookkeeping).
    """
    edge_scn, edge_task, edge_w = edges_from_coverage(coverage, weights_per_scn)
    return greedy_select_edges(
        edge_scn, edge_task, edge_w, len(coverage), capacity, num_tasks
    )
