"""Alg. 1 — the LFSC policy (the paper's primary contribution).

Per slot, LFSC:

1. classifies each SCN's covered tasks into context hypercubes and computes
   the capped exponential-weights selection probabilities (Alg. 2,
   :mod:`repro.core.probability`);
2. coordinates all SCNs through the greedy bipartite assignment (Alg. 4,
   :mod:`repro.core.greedy`), preventing duplicate offloading and respecting
   the per-SCN capacity;
3. after observing the bandit feedback (u, v, q) of the processed tasks,
   forms importance-weighted unbiased estimates, updates hypercube weights
   and the per-SCN Lagrange multipliers (Alg. 3, :mod:`repro.core.update`,
   :mod:`repro.core.multipliers`).

Two assignment modes are supported (``LFSCConfig.assignment_mode``): the
default ``"depround"`` samples each SCN's candidate set with the exact
Alg. 2 marginals (the randomization the Exp3.M regret analysis relies on)
before the greedy resolves conflicts; ``"deterministic"`` is the
paper-literal variant that feeds the probabilities directly to the greedy as
edge weights.  ``benchmarks/bench_ablations.py`` compares them.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.config import LFSCConfig
from repro.core.depround import depround
from repro.core.estimators import CubeStatistics, aggregate_by_cube, importance_weighted
from repro.core.greedy import greedy_select
from repro.core.multipliers import LagrangeMultipliers
from repro.core.probability import CappedProbabilities, capped_probabilities
from repro.core.update import (
    apply_weight_update,
    lagrangian_utility,
    recenter_log_weights,
    weight_exponents,
)
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation

__all__ = ["LFSCPolicy"]


class _SlotCache:
    """What select() must remember for the matching update() call."""

    __slots__ = ("t", "coverage", "cubes", "probs")

    def __init__(
        self,
        t: int,
        coverage: list[np.ndarray],
        cubes: list[np.ndarray],
        probs: list[CappedProbabilities],
    ) -> None:
        self.t = t
        self.coverage = coverage
        self.cubes = cubes
        self.probs = probs


class LFSCPolicy(OffloadingPolicy):
    """The online Learning Framework for Small Cells (LFSC).

    Parameters
    ----------
    config:
        Algorithm tunables; ``None`` uses :class:`LFSCConfig` defaults.
        Use :meth:`LFSCConfig.from_theorem` for the Theorem 1 schedule.

    Attributes (after ``reset``)
    ----------------------------
    log_w:
        ``(M, F)`` hypercube log-weights (log of the paper's w^m_f).
    multipliers:
        The per-SCN dual variables (λ₁, λ₂).
    stats:
        Observed-feedback sample means per (SCN, cube) — diagnostics only;
        the decisions use the weights.
    """

    name = "LFSC"

    def __init__(self, config: LFSCConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else LFSCConfig()
        self.log_w: np.ndarray | None = None
        self.multipliers: LagrangeMultipliers | None = None
        self.stats: CubeStatistics | None = None
        self._cache: _SlotCache | None = None
        self.multiplier_history_qos: np.ndarray | None = None
        self.multiplier_history_resource: np.ndarray | None = None

    # -- lifecycle ----------------------------------------------------------

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        cfg = self.config
        F = cfg.partition.num_cubes
        M = network.num_scns
        self.log_w = np.zeros((M, F))  # w = 1 for every (SCN, cube), Alg. 1 init
        self.multipliers = LagrangeMultipliers(
            num_scns=M,
            eta=cfg.dual_step,
            delta=cfg.delta,
            lambda_max=cfg.lambda_max,
        )
        self.stats = CubeStatistics(num_scns=M, num_cubes=F)
        self._cache = None
        self.multiplier_history_qos = np.zeros((horizon, M))
        self.multiplier_history_resource = np.zeros((horizon, M))

    # -- decision (Alg. 2 + Alg. 4) ------------------------------------------

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.log_w is not None
        cfg = self.config
        M = network.num_scns
        c = network.capacity

        coverage: list[np.ndarray] = []
        cubes_per_scn: list[np.ndarray] = []
        probs_per_scn: list[CappedProbabilities] = []
        scores_per_scn: list[np.ndarray] = []

        for m in range(M):
            cov = np.asarray(slot.coverage[m], dtype=np.int64)
            if cov.size > 1 and np.any(np.diff(cov) < 0):
                cov = np.sort(cov)
            cubes = cfg.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
            if cov.size:
                # Normalize by the max over the cubes actually present so the
                # largest weight is exactly 1 (no under/overflow regardless of
                # how far apart the row's log-weights have drifted).
                logs = self.log_w[m][cubes]
                w = np.maximum(np.exp(logs - logs.max()), 1e-300)
                cp = capped_probabilities(w, c, cfg.gamma)
            else:
                cp = CappedProbabilities(
                    p=np.empty(0), capped=np.empty(0, dtype=bool), threshold=np.nan
                )
            coverage.append(cov)
            cubes_per_scn.append(cubes)
            probs_per_scn.append(cp)
            scores_per_scn.append(self._edge_scores(cp, cov, slot))

        self._cache = _SlotCache(slot.t, coverage, cubes_per_scn, probs_per_scn)
        return greedy_select(coverage, scores_per_scn, c, len(slot.tasks))

    def _edge_scores(
        self, cp: CappedProbabilities, cov: np.ndarray, slot: SlotObservation
    ) -> np.ndarray:
        """Greedy edge weights for one SCN's covered tasks.

        depround mode: sampled candidates get score 1 + p (ranking above
        every unsampled edge, ordered by p within the sample); unsampled
        edges keep score p so a SCN whose candidate was stolen by a peer can
        refill its capacity.  deterministic mode: score = p (paper-literal).
        A tiny uniform jitter breaks exact ties uniformly at random.

        Subclasses may override to re-rank edges (e.g. the multi-slot
        priority bonus of :class:`repro.baselines.priority.PriorityAwareLFSC`);
        ``cov`` and ``slot`` identify which tasks the scores refer to.
        """
        if cp.p.size == 0:
            return cp.p
        if self.config.assignment_mode == "depround":
            mask = depround(cp.p, self.rng)
            scores = np.where(mask, 1.0 + cp.p, cp.p)
        else:
            scores = cp.p.copy()
        if self.config.tie_jitter > 0:
            scores = scores + self.rng.uniform(0.0, self.config.tie_jitter, size=scores.shape)
        return scores

    # -- learning (Alg. 3) ----------------------------------------------------

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        network = self._require_reset()
        assert self.log_w is not None and self.multipliers is not None and self.stats is not None
        cfg = self.config
        cache = self._cache
        if cache is None or cache.t != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        M = network.num_scns
        F = cfg.partition.num_cubes
        asn = feedback.assignment

        lam_qos = self.multipliers.qos if cfg.use_lagrangian else np.zeros(M)
        lam_res = self.multipliers.resource if cfg.use_lagrangian else np.zeros(M)

        for m in range(M):
            cov = cache.coverage[m]
            if cov.size == 0:
                continue
            cubes = cache.cubes[m]
            cp = cache.probs[m]

            pair_rows = np.flatnonzero(asn.scn == m)
            sel_tasks = asn.task[pair_rows]
            pos = np.searchsorted(cov, sel_tasks)

            K = cov.size
            selected = np.zeros(K, dtype=bool)
            selected[pos] = True
            # Per-task Lagrangian utility for the processed tasks; the α/c
            # and β/c targets center it at the per-task constraint shares
            # (see core.update.lagrangian_utility).
            util_full = np.zeros(K)
            util_full[pos] = lagrangian_utility(
                feedback.g[pair_rows],
                feedback.v[pair_rows],
                feedback.q[pair_rows],
                float(lam_qos[m]),
                float(lam_res[m]),
                qos_target=network.alpha / network.capacity,
                resource_target=network.beta / network.capacity,
            )
            util_hat = importance_weighted(util_full, selected, cp.p)
            util_f, counts = aggregate_by_cube(util_hat, cubes, F)

            present = np.flatnonzero(counts > 0)
            # Boolean scatter beats np.isin/np.unique on these small sets.
            capped_mask = np.zeros(F, dtype=bool)
            capped_mask[cubes[cp.capped]] = True
            skip = capped_mask[present]
            exponents = weight_exponents(
                util_f[present], cfg.eta, max_exponent=cfg.max_exponent
            )
            apply_weight_update(self.log_w[m], present, exponents, skip)

            if pair_rows.size:
                self.stats.observe(
                    np.full(pair_rows.size, m, dtype=np.int64),
                    cubes[pos],
                    feedback.g[pair_rows],
                    feedback.v[pair_rows],
                    feedback.q[pair_rows],
                )

        recenter_log_weights(self.log_w)

        if cfg.use_lagrangian:
            self.multipliers.update(
                feedback.per_scn_completed(M),
                feedback.per_scn_consumption(M),
                network.alpha,
                network.beta,
            )
        if self.multiplier_history_qos is not None and self.t < self.multiplier_history_qos.shape[0]:
            self.multiplier_history_qos[self.t] = self.multipliers.qos
            self.multiplier_history_resource[self.t] = self.multipliers.resource
        self._cache = None

    # -- diagnostics ----------------------------------------------------------

    def weights_snapshot(self) -> np.ndarray:
        """Current normalized weights per (SCN, cube) — each row sums to 1."""
        if self.log_w is None:
            raise RuntimeError("policy not reset yet")
        shifted = self.log_w - self.log_w.max(axis=1, keepdims=True)
        w = np.exp(shifted)
        return w / w.sum(axis=1, keepdims=True)
