"""Alg. 1 — the LFSC policy (the paper's primary contribution).

Per slot, LFSC:

1. classifies each SCN's covered tasks into context hypercubes and computes
   the capped exponential-weights selection probabilities (Alg. 2,
   :mod:`repro.core.probability`);
2. coordinates all SCNs through the greedy bipartite assignment (Alg. 4,
   :mod:`repro.core.greedy`), preventing duplicate offloading and respecting
   the per-SCN capacity;
3. after observing the bandit feedback (u, v, q) of the processed tasks,
   forms importance-weighted unbiased estimates, updates hypercube weights
   and the per-SCN Lagrange multipliers (Alg. 3, :mod:`repro.core.update`,
   :mod:`repro.core.multipliers`).

Two assignment modes are supported (``LFSCConfig.assignment_mode``): the
default ``"depround"`` samples each SCN's candidate set with the exact
Alg. 2 marginals (the randomization the Exp3.M regret analysis relies on)
before the greedy resolves conflicts; ``"deterministic"`` is the
paper-literal variant that feeds the probabilities directly to the greedy as
edge weights.  ``benchmarks/bench_ablations.py`` compares them.

Two slot engines implement the identical algorithm
(``LFSCConfig.engine``):

- ``"batched"`` (default) — the whole slot is laid out as one flat edge
  list (edge_scn, edge_task, edge_cube, edge_weight) over the bipartite
  coverage graph; hypercubes are assigned once per slot for the full task
  batch, Alg. 2 runs for all M SCNs in one
  :func:`~repro.core.probability.capped_probabilities_batch` call, and the
  Alg. 3 update is a single scatter over (SCN, cube) pairs.
- ``"reference"`` — the paper-shaped per-SCN loop, kept as the readable
  specification and the A/B baseline.

The engines are interchangeable: given the same seed they produce
bit-identical assignments and weight trajectories in both assignment modes
(the batched kernels match the per-SCN arithmetic to the last ulp and
consume the policy RNG in the same order).
``tests/core/test_lfsc_engine_equivalence.py`` enforces this;
``benchmarks/bench_slot_engine.py`` measures the speedup.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.config import LFSCConfig
from repro.obs import runtime as obs_runtime
from repro.core import native as _native
from repro.core.depround import _TOL as _DR_TOL
from repro.core.depround import depround, walk_into
from repro.core.estimators import CubeStatistics, aggregate_by_cube, importance_weighted
from repro.core.greedy import greedy_select, greedy_select_edges
from repro.core.multipliers import LagrangeMultipliers
from repro.core.probability import (
    CappedProbabilities,
    CappedProbabilitiesBatch,
    capped_probabilities,
    capped_probabilities_batch,
    capped_probabilities_batch_into,
)
from repro.core.update import (
    apply_weight_update,
    lagrangian_utility,
    recenter_log_weights,
    weight_exponents,
)
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation

__all__ = ["LFSCPolicy"]

_LOG_W_FLOOR = 1e-300


class _SlotCache:
    """What the reference select() must remember for the matching update()."""

    __slots__ = ("t", "coverage", "cubes", "probs")

    def __init__(
        self,
        t: int,
        coverage: list[np.ndarray],
        cubes: list[np.ndarray],
        probs: list[CappedProbabilities],
    ) -> None:
        self.t = t
        self.coverage = coverage
        self.cubes = cubes
        self.probs = probs


class _EdgeArena:
    """Reusable per-slot scratch buffers for the windowed batched engine.

    One arena per policy, grown on demand and overwritten every slot: the
    windowed ``select()`` stages its edge-length intermediates (log-weight
    gather, Alg. 2 probabilities, scores) here instead of allocating ~10
    fresh arrays per slot, and the matching ``update()`` reuses the
    w̃ buffer for its importance-weighted estimates.  Buffer contents are
    only valid between one ``select()`` and its ``update()``.
    """

    __slots__ = (
        "logs", "p", "wtilde", "scores", "scratch", "capped", "draws",
        "mask", "walk_ids", "walk_vals",
    )

    def __init__(self) -> None:
        self.logs = np.empty(0)
        self.p = np.empty(0)
        self.wtilde = np.empty(0)
        self.scores = np.empty(0)
        self.scratch = np.empty(0)
        self.capped = np.empty(0, dtype=bool)
        self.draws = np.empty(0)
        self.mask = np.empty(0, dtype=np.uint8)
        self.walk_ids = np.empty(0, dtype=np.int64)
        self.walk_vals = np.empty(0)

    def ensure(self, num_edges: int) -> None:
        if self.logs.shape[0] < num_edges:
            size = max(num_edges, 2 * self.logs.shape[0])
            self.logs = np.empty(size)
            self.p = np.empty(size)
            self.wtilde = np.empty(size)
            self.scores = np.empty(size)
            self.scratch = np.empty(size)
            self.capped = np.empty(size, dtype=bool)
            # DepRound + tie-jitter consume at most 2 uniforms per edge.
            self.draws = np.empty(2 * size)
            self.mask = np.empty(size, dtype=np.uint8)
            self.walk_ids = np.empty(size, dtype=np.int64)
            self.walk_vals = np.empty(size)


class _BatchedSlotCache:
    """The batched select()'s slot state: one flat edge list.

    ``coverage``/``cubes``/``probs`` expose the per-SCN views subclasses and
    diagnostics expect from the reference :class:`_SlotCache`; the lists are
    materialized lazily on first access.  ``pre`` carries the windowed
    slot's :class:`~repro.env.window.SlotEdges` when select() took the
    precomputed path, letting update() reuse its sorted key and Alg. 3
    scatter index.
    """

    __slots__ = (
        "t", "offsets", "edge_scn", "edge_task", "edge_cube", "batch",
        "coverage", "pre", "_cubes",
    )

    def __init__(
        self,
        t: int,
        offsets: np.ndarray,
        edge_scn: np.ndarray,
        edge_task: np.ndarray,
        edge_cube: np.ndarray,
        batch: CappedProbabilitiesBatch,
        coverage: list[np.ndarray],
        pre=None,
    ) -> None:
        self.t = t
        self.offsets = offsets
        self.edge_scn = edge_scn
        self.edge_task = edge_task
        self.edge_cube = edge_cube
        self.batch = batch
        self.coverage = coverage
        self.pre = pre
        self._cubes: list[np.ndarray] | None = None

    @property
    def p(self) -> np.ndarray:
        return self.batch.p

    @property
    def capped(self) -> np.ndarray:
        return self.batch.capped

    @property
    def cubes(self) -> list[np.ndarray]:
        if self._cubes is None:
            self._cubes = np.split(self.edge_cube, self.offsets[1:-1])
        return self._cubes

    @property
    def probs(self) -> list[CappedProbabilities]:
        return [self.batch.segment(m) for m in range(self.batch.num_segments)]


class LFSCPolicy(OffloadingPolicy):
    """The online Learning Framework for Small Cells (LFSC).

    Parameters
    ----------
    config:
        Algorithm tunables; ``None`` uses :class:`LFSCConfig` defaults.
        Use :meth:`LFSCConfig.from_theorem` for the Theorem 1 schedule.

    Attributes (after ``reset``)
    ----------------------------
    log_w:
        ``(M, F)`` hypercube log-weights (log of the paper's w^m_f).
    multipliers:
        The per-SCN dual variables (λ₁, λ₂).
    stats:
        Observed-feedback sample means per (SCN, cube) — diagnostics only;
        the decisions use the weights.
    """

    name = "LFSC"

    def __init__(self, config: LFSCConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else LFSCConfig()
        self.log_w: np.ndarray | None = None
        self.multipliers: LagrangeMultipliers | None = None
        self.stats: CubeStatistics | None = None
        self._cache: _SlotCache | _BatchedSlotCache | None = None
        self._arena = _EdgeArena()
        self.multiplier_history_qos: np.ndarray | None = None
        self.multiplier_history_resource: np.ndarray | None = None

    @property
    def context_partition(self):
        """The hypercube partition select() classifies contexts with.

        The windowed simulator reads this (duck-typed) to pre-classify each
        slot's contexts once per window; :meth:`_select_batched` then accepts
        the precomputed cubes only if the slot's partition matches.
        """
        return self.config.partition

    # -- lifecycle ----------------------------------------------------------

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        cfg = self.config
        F = cfg.partition.num_cubes
        M = network.num_scns
        self.log_w = np.zeros((M, F))  # w = 1 for every (SCN, cube), Alg. 1 init
        self.multipliers = LagrangeMultipliers(
            num_scns=M,
            eta=cfg.dual_step,
            delta=cfg.delta,
            lambda_max=cfg.lambda_max,
        )
        self.stats = CubeStatistics(num_scns=M, num_cubes=F)
        self._cache = None
        self.multiplier_history_qos = np.zeros((horizon, M))
        self.multiplier_history_resource = np.zeros((horizon, M))

    # -- decision (Alg. 2 + Alg. 4) ------------------------------------------

    def select(self, slot: SlotObservation) -> Assignment:
        if self.config.engine == "reference":
            return self._select_reference(slot)
        return self._select_batched(slot)

    def _select_reference(self, slot: SlotObservation) -> Assignment:
        """The paper-shaped per-SCN loop (specification / A/B baseline)."""
        network = self._require_reset()
        assert self.log_w is not None
        cfg = self.config
        M = network.num_scns
        c = network.capacity

        coverage: list[np.ndarray] = []
        cubes_per_scn: list[np.ndarray] = []
        probs_per_scn: list[CappedProbabilities] = []
        scores_per_scn: list[np.ndarray] = []

        with obs_runtime.span("lfsc.alg2"):
            for m in range(M):
                cov = np.asarray(slot.coverage[m], dtype=np.int64)
                if cov.size > 1 and np.any(np.diff(cov) < 0):
                    cov = np.sort(cov)
                cubes = cfg.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
                if cov.size:
                    # Normalize by the max over the cubes actually present so
                    # the largest weight is exactly 1 (no under/overflow
                    # regardless of how far apart the row's log-weights have
                    # drifted).
                    logs = self.log_w[m][cubes]
                    w = np.maximum(np.exp(logs - logs.max()), _LOG_W_FLOOR)
                    cp = capped_probabilities(w, c, cfg.gamma)
                else:
                    cp = CappedProbabilities(
                        p=np.empty(0), capped=np.empty(0, dtype=bool), threshold=np.nan
                    )
                coverage.append(cov)
                cubes_per_scn.append(cubes)
                probs_per_scn.append(cp)
                scores_per_scn.append(self._edge_scores(cp, cov, slot))

        self._cache = _SlotCache(slot.t, coverage, cubes_per_scn, probs_per_scn)
        with obs_runtime.span("lfsc.greedy"):
            return greedy_select(coverage, scores_per_scn, c, len(slot.tasks))

    def _select_batched(self, slot: SlotObservation) -> Assignment:
        """One flat edge list for the whole slot (bit-equivalent, ~4x faster).

        Per-edge arithmetic (cube assignment, weight gather/normalization,
        Alg. 2) runs once over all M coverage segments; only the parts that
        must consume the policy RNG in per-SCN order (DepRound sampling,
        tie jitter — see :meth:`_edge_scores`) remain a short loop.
        """
        network = self._require_reset()
        assert self.log_w is not None
        cfg = self.config
        M = network.num_scns
        c = network.capacity

        pre = getattr(slot, "edges", None)
        if pre is not None and pre.flat is not None and (
            pre.partition is cfg.partition or pre.partition == cfg.partition
        ):
            return self._select_batched_pre(slot, pre, network)

        coverage = [np.asarray(cov, dtype=np.int64) for cov in slot.coverage]
        lengths = np.fromiter((cov.shape[0] for cov in coverage), dtype=np.int64, count=M)
        offsets = np.zeros(M + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        E = int(offsets[-1])
        if E == 0:
            empty = np.empty(0, dtype=np.int64)
            empty_batch = CappedProbabilitiesBatch(
                p=np.empty(0),
                capped=np.empty(0, dtype=bool),
                thresholds=np.full(M, np.nan),
                offsets=offsets,
            )
            self._cache = _BatchedSlotCache(
                slot.t, offsets, empty, empty, empty, empty_batch, coverage
            )
            return Assignment.empty()

        with obs_runtime.span("lfsc.alg2"):
            edge_task = np.concatenate(coverage)
            # The greedy/update kernels rely on sorted within-segment task
            # ids; workloads emit them sorted, so the common case is one
            # vectorized check over the whole edge list.
            drops = np.flatnonzero(np.diff(edge_task) < 0)
            if drops.size:
                seg_of_drop = np.searchsorted(offsets, drops, side="right") - 1
                boundary = offsets[seg_of_drop + 1] - 1  # last index of that segment
                for m in np.unique(seg_of_drop[drops != boundary]).tolist():
                    coverage[m] = np.sort(coverage[m])
                    edge_task[offsets[m] : offsets[m + 1]] = coverage[m]

            edge_scn = np.repeat(np.arange(M, dtype=np.int64), lengths)
            # Hypercubes once per slot for the full task batch — the coverage
            # overlap means each task would otherwise be classified ~2x.
            task_cubes = cfg.partition.assign(slot.tasks.contexts)
            edge_cube = task_cubes[edge_task]

            logs = self.log_w[edge_scn, edge_cube]
            # Per-segment max (order-independent, so reduceat is exact);
            # empty segments produce garbage lanes that np.repeat(…, lengths)
            # drops.
            seg_start = np.minimum(offsets[:-1], E - 1)
            seg_max = np.maximum.reduceat(logs, seg_start)
            w = np.maximum(np.exp(logs - np.repeat(seg_max, lengths)), _LOG_W_FLOOR)
            cpb = capped_probabilities_batch(w, offsets, c, cfg.gamma)

        # DepRound and the tie jitter draw from the policy RNG per SCN (in
        # SCN order) so both engines consume the identical stream; this loop
        # also routes through the subclass _edge_scores hook.  When the hook
        # is not overridden, score the slices directly (same arithmetic and
        # draws, minus the per-segment view construction).
        scores = np.empty(E)
        bounds = offsets.tolist()
        with obs_runtime.span("lfsc.depround"):
            if type(self)._edge_scores is LFSCPolicy._edge_scores:
                use_depround = cfg.assignment_mode == "depround"
                jitter = cfg.tie_jitter
                rng = self.rng
                p = cpb.p
                for m in range(M):
                    s, e = bounds[m], bounds[m + 1]
                    if s == e:
                        continue
                    seg = p[s:e]
                    out = scores[s:e]
                    if use_depround:
                        np.add(seg, depround(seg, rng), out=out)
                        if jitter > 0:
                            out += jitter * rng.random(e - s)
                    elif jitter > 0:
                        np.add(seg, jitter * rng.random(e - s), out=out)
                    else:
                        out[...] = seg
            else:
                for m in range(M):
                    scores[bounds[m] : bounds[m + 1]] = self._edge_scores(
                        cpb.segment(m), coverage[m], slot
                    )

        self._cache = _BatchedSlotCache(
            slot.t, offsets, edge_scn, edge_task, edge_cube, cpb, coverage
        )
        ctx = obs_runtime.active()
        if ctx is not None:
            ctx.set_slot_field("edges", E)
        with obs_runtime.span("lfsc.greedy"):
            return greedy_select_edges(edge_scn, edge_task, scores, M, c, len(slot.tasks))

    def _select_batched_pre(self, slot: SlotObservation, pre, network) -> Assignment:
        """The batched slot kernel on a window-precomputed edge list.

        The slot's layout (edge arrays, segment offsets, hypercube gather
        index — see :class:`repro.env.window.SlotEdges`) arrives prebuilt, so
        this path is pure per-slot arithmetic: gather log-weights through the
        precomputed flat index, run Alg. 2 into the reusable arena, and draw
        DepRound/jitter per SCN in the frozen stream order.  Every staged
        operation mirrors :meth:`_select_batched` exactly (same ufuncs, same
        operand values, same RNG consumption), so trajectories are
        bit-identical to the per-slot path.
        """
        assert self.log_w is not None
        cfg = self.config
        M = network.num_scns
        c = network.capacity
        E = pre.num_edges
        coverage = slot.coverage

        if E == 0:
            empty = np.empty(0, dtype=np.int64)
            empty_batch = CappedProbabilitiesBatch(
                p=np.empty(0),
                capped=np.empty(0, dtype=bool),
                thresholds=np.full(M, np.nan),
                offsets=pre.offsets,
            )
            self._cache = _BatchedSlotCache(
                slot.t, pre.offsets, empty, empty, empty, empty_batch, coverage, pre=pre
            )
            return Assignment.empty()

        arena = self._arena
        arena.ensure(E)
        with obs_runtime.span("lfsc.alg2"):
            # log_w is C-contiguous (M, F), so the flat take equals the
            # fancy-index gather log_w[edge_scn, edge_cube] exactly.
            logs = arena.logs[:E]
            np.take(self.log_w.reshape(-1), pre.flat, out=logs)
            seg_max = np.maximum.reduceat(logs, pre.seg_start)
            edge_max = arena.scratch[:E]
            np.take(seg_max, pre.scn, out=edge_max)
            np.subtract(logs, edge_max, out=logs)
            np.exp(logs, out=logs)
            w = np.maximum(logs, _LOG_W_FLOOR, out=logs)
            cpb = capped_probabilities_batch_into(
                w,
                pre.offsets,
                c,
                cfg.gamma,
                lengths=pre.lengths,
                lengths_f=pre.lengths_f,
                bounds=pre.bounds,
                seg_start=pre.seg_start,
                edge_scn=pre.scn,
                seg_len_edge=pre.seg_len_edge,
                out_p=arena.p[:E],
                out_capped=arena.capped[:E],
                out_wtilde=arena.wtilde[:E],
                scratch=arena.scratch[:E],
            )

        scores = arena.scores[:E]
        bounds = pre.bounds
        with obs_runtime.span("lfsc.depround"):
            if type(self)._edge_scores is LFSCPolicy._edge_scores:
                self._score_edges_fused(pre, cpb.p, scores)
            else:
                for m in range(M):
                    scores[bounds[m] : bounds[m + 1]] = self._edge_scores(
                        cpb.segment(m), coverage[m], slot
                    )

        self._cache = _BatchedSlotCache(
            slot.t, pre.offsets, pre.scn, pre.task, pre.cube, cpb, coverage, pre=pre
        )
        ctx = obs_runtime.active()
        if ctx is not None:
            ctx.set_slot_field("edges", E)
        with obs_runtime.span("lfsc.greedy"):
            return greedy_select_edges(pre.scn, pre.task, scores, M, c, len(slot.tasks))

    def _score_edges_fused(self, pre, p: np.ndarray, scores: np.ndarray) -> None:
        """Default edge scoring for a whole slot in one fused pass.

        Produces bit-identical scores and consumes the policy RNG bitwise
        identically to calling :meth:`_edge_scores` segment by segment:

        - every segment's DepRound draw count is a pure function of its
          probabilities (:func:`repro.core.depround.draw_count`, here
          evaluated for all segments at once), and the tie-jitter count is
          the segment length, so the whole slot's uniforms — in the exact
          per-segment interleaved order — can be taken in ONE generator
          call (consecutive ``rng.random`` calls consume the stream exactly
          like one concatenated call);
        - the DepRound walks then run per segment — through the native
          kernel (:mod:`repro.core.native`) when the host has one, else the
          Python :func:`~repro.core.depround.walk_into`, bit-identical
          either way — and the mask/jitter arithmetic is applied across the
          full edge list (elementwise the same operations as the
          per-segment ufuncs).
        """
        cfg = self.config
        rng = self.rng
        jitter = cfg.tie_jitter
        E = p.shape[0]
        M = pre.lengths.shape[0]
        arena = self._arena

        if cfg.assignment_mode != "depround":
            if jitter > 0:
                jd = arena.draws[:E]
                rng.random(out=jd)
                np.multiply(jd, jitter, out=jd)
                np.add(p, jd, out=scores)
            else:
                np.copyto(scores, p)
            return

        offsets = pre.offsets
        lengths = pre.lengths
        # Per-segment extrema in one reduceat pair (empty segments produce
        # garbage lanes that every consumer below masks out).
        p_lo = np.minimum.reduceat(p, pre.seg_start)
        p_hi = np.maximum.reduceat(p, pre.seg_start)
        nonempty = lengths > 0
        if bool((((p_lo < -_DR_TOL) | (p_hi > 1.0 + _DR_TOL)) & nonempty).any()):
            raise ValueError("probabilities must lie in [0, 1]")

        # draw_count, vectorized: a segment whose extrema are strictly
        # fractional draws once per coordinate; otherwise once per strictly
        # fractional coordinate.
        common = nonempty & (p_lo > _DR_TOL) & (p_hi < 1.0 - _DR_TOL)
        if bool(common.all()):
            dep_cnt = lengths
        else:
            frac = ((p > _DR_TOL) & (p < 1.0 - _DR_TOL)).astype(np.int64)
            dep_cnt = np.where(common, lengths, np.add.reduceat(frac, pre.seg_start))
            dep_cnt[~nonempty] = 0

        # Pooled layout: segment m's DepRound draws, then (in jitter runs)
        # its jitter draws, exactly the per-segment call order.
        ext = dep_cnt + lengths if jitter > 0 else dep_cnt
        cum = np.zeros(M + 1, dtype=np.int64)
        np.cumsum(ext, out=cum[1:])
        dep_start = cum[:-1]
        total = int(cum[-1])
        buf = arena.draws[:total]
        if total:
            rng.random(out=buf)

        mask = arena.mask[:E]
        mask[:] = 0
        if not _native.walk_segments(
            np.ascontiguousarray(p), offsets, buf, dep_start, p_lo, p_hi,
            mask, arena.walk_ids, arena.walk_vals, _DR_TOL,
        ):
            # Portable fallback: the same walks on presliced Python lists.
            vals = p.tolist()
            draws = buf.tolist()
            out_list: list[bool] = [False] * E
            bounds = pre.bounds
            lo_l = p_lo.tolist()
            hi_l = p_hi.tolist()
            cnt_l = dep_cnt.tolist()
            start_l = dep_start.tolist()
            for m in range(M):
                s, e = bounds[m], bounds[m + 1]
                if s == e:
                    continue
                d0 = start_l[m]
                walk_into(
                    vals[s:e], draws[d0 : d0 + cnt_l[m]], out_list, s,
                    lo_l[m], hi_l[m],
                )
            mask[:] = out_list

        np.add(p, mask, out=scores)
        if jitter > 0:
            # Each segment's jitter draws sit contiguously in the pooled
            # buffer right after its DepRound draws; gather them per edge.
            idx = np.repeat(dep_start + dep_cnt - offsets[:-1], lengths)
            idx += np.arange(E, dtype=np.int64)
            jd = arena.scratch[:E]
            np.take(buf, idx, out=jd)
            np.multiply(jd, jitter, out=jd)
            np.add(scores, jd, out=scores)

    def _edge_scores(
        self, cp: CappedProbabilities, cov: np.ndarray, slot: SlotObservation
    ) -> np.ndarray:
        """Greedy edge weights for one SCN's covered tasks.

        depround mode: sampled candidates get score 1 + p (ranking above
        every unsampled edge, ordered by p within the sample); unsampled
        edges keep score p so a SCN whose candidate was stolen by a peer can
        refill its capacity.  deterministic mode: score = p (paper-literal).
        A tiny uniform jitter breaks exact ties uniformly at random.

        Subclasses may override to re-rank edges (e.g. the multi-slot
        priority bonus of :class:`repro.baselines.priority.PriorityAwareLFSC`);
        ``cov`` and ``slot`` identify which tasks the scores refer to.  Both
        slot engines call this hook once per SCN, in SCN order.
        """
        if cp.p.size == 0:
            return cp.p
        if self.config.assignment_mode == "depround":
            mask = depround(cp.p, self.rng)
            scores = cp.p + mask  # sampled edges get p + 1, unsampled keep p
        else:
            scores = cp.p.copy()
        if self.config.tie_jitter > 0:
            scores = scores + self.config.tie_jitter * self.rng.random(scores.shape[0])
        return scores

    # -- learning (Alg. 3) ----------------------------------------------------

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        network = self._require_reset()
        assert self.log_w is not None and self.multipliers is not None and self.stats is not None
        cfg = self.config
        cache = self._cache
        if cache is None or cache.t != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        M = network.num_scns

        with obs_runtime.span("lfsc.update"):
            if isinstance(cache, _BatchedSlotCache):
                self._update_batched(slot, feedback, cache)
            else:
                self._update_reference(slot, feedback, cache)

            recenter_log_weights(self.log_w)

        if cfg.use_lagrangian:
            with obs_runtime.span("lfsc.multipliers"):
                self.multipliers.update(
                    feedback.per_scn_completed(M),
                    feedback.per_scn_consumption(M),
                    network.alpha,
                    network.beta,
                )
        if self.multiplier_history_qos is not None and self.t < self.multiplier_history_qos.shape[0]:
            self.multiplier_history_qos[self.t] = self.multipliers.qos
            self.multiplier_history_resource[self.t] = self.multipliers.resource
        self._cache = None

    def _update_reference(
        self, slot: SlotObservation, feedback: SlotFeedback, cache: _SlotCache
    ) -> None:
        network = self._require_reset()
        cfg = self.config
        M = network.num_scns
        F = cfg.partition.num_cubes
        asn = feedback.assignment

        lam_qos = self.multipliers.qos if cfg.use_lagrangian else np.zeros(M)
        lam_res = self.multipliers.resource if cfg.use_lagrangian else np.zeros(M)

        for m in range(M):
            cov = cache.coverage[m]
            if cov.size == 0:
                continue
            cubes = cache.cubes[m]
            cp = cache.probs[m]

            pair_rows = np.flatnonzero(asn.scn == m)
            sel_tasks = asn.task[pair_rows]
            pos = np.searchsorted(cov, sel_tasks)

            K = cov.size
            selected = np.zeros(K, dtype=bool)
            selected[pos] = True
            # Per-task Lagrangian utility for the processed tasks; the α/c
            # and β/c targets center it at the per-task constraint shares
            # (see core.update.lagrangian_utility).
            util_full = np.zeros(K)
            util_full[pos] = lagrangian_utility(
                feedback.g[pair_rows],
                feedback.v[pair_rows],
                feedback.q[pair_rows],
                float(lam_qos[m]),
                float(lam_res[m]),
                qos_target=network.alpha / network.capacity,
                resource_target=network.beta / network.capacity,
            )
            util_hat = importance_weighted(util_full, selected, cp.p)
            util_f, counts = aggregate_by_cube(util_hat, cubes, F)

            present = np.flatnonzero(counts > 0)
            # Boolean scatter beats np.isin/np.unique on these small sets.
            capped_mask = np.zeros(F, dtype=bool)
            capped_mask[cubes[cp.capped]] = True
            skip = capped_mask[present]
            exponents = weight_exponents(
                util_f[present], cfg.eta, max_exponent=cfg.max_exponent
            )
            apply_weight_update(self.log_w[m], present, exponents, skip)

            if pair_rows.size:
                self.stats.observe(
                    np.full(pair_rows.size, m, dtype=np.int64),
                    cubes[pos],
                    feedback.g[pair_rows],
                    feedback.v[pair_rows],
                    feedback.q[pair_rows],
                )

    def _update_batched(
        self, slot: SlotObservation, feedback: SlotFeedback, cache: _BatchedSlotCache
    ) -> None:
        """Alg. 3 as one scatter over the slot's flat edge list.

        Reproduces :meth:`_update_reference` bit-for-bit: the per-(SCN, cube)
        accumulation visits edges in the same order the per-SCN loop does —
        whether through the native scatter kernel
        (:func:`repro.core.native.scatter_update`) or the bincount fallback —
        and every elementwise operation matches the reference arithmetic
        exactly.
        """
        network = self._require_reset()
        cfg = self.config
        M = network.num_scns
        F = cfg.partition.num_cubes
        asn = feedback.assignment

        edge_scn, edge_task, edge_cube = cache.edge_scn, cache.edge_task, cache.edge_cube
        E = edge_task.shape[0]
        if E == 0:
            return

        lam_qos = self.multipliers.qos if cfg.use_lagrangian else np.zeros(M)
        lam_res = self.multipliers.resource if cfg.use_lagrangian else np.zeros(M)

        # Windowed slots arrive with the sorted pair key and the Alg. 3
        # scatter index prebuilt; the arena's w̃ buffer (dead after select)
        # doubles as the estimate vector.
        pre = cache.pre
        if pre is not None:
            util_hat = self._arena.wtilde[:E]
            util_hat[:] = 0.0
        else:
            util_hat = np.zeros(E)
        if len(asn):
            # Locate each assigned pair in the edge list: keys are strictly
            # increasing (segments in SCN order, tasks sorted within).
            n = np.int64(len(slot.tasks))
            edge_key = pre.key if pre is not None else edge_scn * n + edge_task
            pos = np.searchsorted(edge_key, asn.scn * n + asn.task)
            if not np.array_equal(edge_key[pos], asn.scn * n + asn.task):
                raise RuntimeError("assignment contains a pair outside the slot's edge list")
            util = lagrangian_utility(
                feedback.g,
                feedback.v,
                feedback.q,
                lam_qos[asn.scn],
                lam_res[asn.scn],
                qos_target=network.alpha / network.capacity,
                resource_target=network.beta / network.capacity,
            )
            # Importance weighting: unselected edges keep estimate 0.
            util_hat[pos] = util / cache.p[pos]

        flat = pre.flat if pre is not None else edge_scn * F + edge_cube
        sums = np.zeros(M * F)
        counts = np.zeros(M * F, dtype=np.int64)
        if not _native.scatter_update(flat, util_hat, sums, counts):
            sums = np.bincount(flat, weights=util_hat, minlength=M * F)
            counts = np.bincount(flat, minlength=M * F)
        present = np.flatnonzero(counts)
        means = sums[present] / counts[present]
        exponents = weight_exponents(means, cfg.eta, max_exponent=cfg.max_exponent)
        # Capped cubes (Alg. 2's S') are excluded from the update — their
        # selection was deterministic, so the estimate carries no signal.
        capped_flat = np.zeros(M * F, dtype=bool)
        capped_flat[flat[cache.capped]] = True
        keep = ~capped_flat[present]
        upd = present[keep]
        self.log_w[upd // F, upd % F] += exponents[keep]

        if len(asn):
            self.stats.observe(asn.scn, edge_cube[pos], feedback.g, feedback.v, feedback.q)

    # -- checkpoint/restore ----------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Every mutable learning quantity of Alg. 1-3 (see base class).

        Only legal at a slot boundary: between ``select()`` and ``update()``
        the policy holds per-slot scratch (``_cache``) that references the
        live slot and cannot be serialized, so checkpointing there would
        break the resume bit-identity guarantee.
        """
        if self._cache is not None:
            raise RuntimeError(
                "cannot checkpoint between select() and update(): "
                "finish the slot's feedback first"
            )
        if self.log_w is None or self.multipliers is None or self.stats is None:
            raise RuntimeError("policy not reset yet — nothing to checkpoint")
        state = super().checkpoint_state()
        state["log_w"] = self.log_w.copy()
        state["mult_qos"] = self.multipliers.qos.copy()
        state["mult_resource"] = self.multipliers.resource.copy()
        for name, value in self.stats.state_dict().items():
            state[f"stats_{name}"] = value
        if self.multiplier_history_qos is not None:
            state["mult_history_qos"] = self.multiplier_history_qos.copy()
            state["mult_history_resource"] = self.multiplier_history_resource.copy()
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        if self.log_w is None or self.multipliers is None or self.stats is None:
            raise RuntimeError("restore requires a reset policy (call reset() first)")
        super().restore_checkpoint_state(state)
        log_w = np.ascontiguousarray(np.asarray(state["log_w"], dtype=float))
        if log_w.shape != self.log_w.shape:
            raise ValueError(
                f"log_w has shape {log_w.shape}, expected {self.log_w.shape}"
            )
        self.log_w = log_w
        self.multipliers.load_state_dict(
            {"qos": state["mult_qos"], "resource": state["mult_resource"]}
        )
        self.stats.load_state_dict(
            {
                name: state[f"stats_{name}"]
                for name in ("counts", "mean_g", "mean_v", "mean_q")
            }
        )
        if "mult_history_qos" in state:
            self.multiplier_history_qos = np.array(state["mult_history_qos"], dtype=float)
            self.multiplier_history_resource = np.array(
                state["mult_history_resource"], dtype=float
            )
        self._cache = None

    # -- diagnostics ----------------------------------------------------------

    def weights_snapshot(self) -> np.ndarray:
        """Current normalized weights per (SCN, cube) — each row sums to 1."""
        if self.log_w is None:
            raise RuntimeError("policy not reset yet")
        shifted = self.log_w - self.log_w.max(axis=1, keepdims=True)
        w = np.exp(shifted)
        return w / w.sum(axis=1, keepdims=True)
