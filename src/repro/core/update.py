"""Alg. 3 — the exponential weight update (pure functions).

After a slot's feedback, each SCN updates its hypercube log-weights by

    w_f ← w_f · exp( η · ( ĝ_f + λ₁ v̂_f − λ₂ q̂_f ) )     for f ∉ S'

where ĝ_f, v̂_f, q̂_f are the hypercube-averaged importance-weighted
estimates, λ₁/λ₂ are the SCN's Lagrange multipliers for the QoS (1c) and
resource (1d) constraints, and S' is Alg. 2's capped set (whose selection was
deterministic, so the estimates carry no signal — paper Alg. 3 line 12).

Weights are kept in log space: exponential-weights iterates overflow floats
within a few thousand slots otherwise.  Only relative weights matter to
Alg. 2, so each SCN's log-weight row is recentered whenever its maximum
drifts beyond a threshold.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lagrangian_utility",
    "weight_exponents",
    "apply_weight_update",
    "recenter_log_weights",
]


def lagrangian_utility(
    g: np.ndarray,
    v: np.ndarray,
    q: np.ndarray,
    lambda_qos: float,
    lambda_resource: float,
    *,
    qos_target: float = 0.0,
    resource_target: float = 0.0,
) -> np.ndarray:
    """Per-task Lagrangian utility  g + λ₁(v − a) − λ₂(q − b).

    Signs: high completion likelihood v helps satisfy (1c), so λ₁ rewards
    it; high consumption q hurts (1d), so λ₂ penalizes it.  The centering
    constants a = α/c and b = β/c (the per-accepted-task constraint shares)
    shift every task's utility equally, so the Lagrangian's argmax over
    assignments is unchanged — but they matter for the *learning dynamics*:
    the shift rides the selection indicator through the importance-weighted
    estimate, making tasks that pull their SCN toward feasibility drift up
    and tasks that push it away drift down, instead of every selected task
    drifting down whenever λ₂q > g + λ₁v (which turns exponential weights
    into aimless cycling).
    """
    return (
        np.asarray(g, dtype=float)
        + lambda_qos * (np.asarray(v, dtype=float) - qos_target)
        - lambda_resource * (np.asarray(q, dtype=float) - resource_target)
    )


def weight_exponents(
    utility_hat: np.ndarray,
    eta: float,
    *,
    max_exponent: float = 10.0,
) -> np.ndarray:
    """The per-cube exponent η·û, clipped for numerical stability.

    ``utility_hat`` is the hypercube-averaged importance-weighted
    Lagrangian utility (:func:`lagrangian_utility` estimates).
    """
    raw = eta * np.asarray(utility_hat, dtype=float)
    return np.clip(raw, -max_exponent, max_exponent)


def apply_weight_update(
    log_w_row: np.ndarray,
    cube_indices: np.ndarray,
    exponents: np.ndarray,
    skip: np.ndarray,
) -> None:
    """Add ``exponents`` to the cubes' log-weights in place, skipping S'.

    Parameters
    ----------
    log_w_row:
        ``(F,)`` log-weights of one SCN, modified in place.
    cube_indices:
        ``(k,)`` indices of the cubes observed this slot (unique).
    exponents:
        ``(k,)`` update exponents aligned with ``cube_indices``.
    skip:
        ``(k,)`` boolean — True for cubes in the capped set S' (no update).
    """
    cube_indices = np.asarray(cube_indices, dtype=np.int64)
    exponents = np.asarray(exponents, dtype=float)
    skip = np.asarray(skip, dtype=bool)
    if not (cube_indices.shape == exponents.shape == skip.shape):
        raise ValueError(
            f"aligned inputs required: cubes {cube_indices.shape}, "
            f"exponents {exponents.shape}, skip {skip.shape}"
        )
    keep = ~skip
    log_w_row[cube_indices[keep]] += exponents[keep]


def recenter_log_weights(
    log_w: np.ndarray, *, threshold: float = 50.0, floor: float = -200.0
) -> None:
    """Recenter each SCN's log-weight row and bound its spread.

    Subtracting the row maximum leaves all probability computations (which
    normalize within the row) unchanged while keeping exp() in range; the
    floor caps how far a cube can sink below its row's best, so a cube
    written off early can climb back within a bounded number of slots (and
    the spread can never reach the exp() underflow regime).  Operates in
    place on the ``(M, F)`` matrix.
    """
    row_max = log_w.max(axis=1)
    drifted = np.abs(row_max) > threshold
    if np.any(drifted):
        log_w[drifted] -= row_max[drifted, None]
        row_max = row_max.copy()
        row_max[drifted] = 0.0
    np.maximum(log_w, (row_max + floor)[:, None], out=log_w)
