"""Dependent rounding (DepRound) for multiple-play bandit sampling.

Exp3.M turns a marginal probability vector p ∈ [0,1]^K with Σp = c into a
random subset of exactly c arms whose inclusion marginals are exactly p.
DepRound does this in O(K): repeatedly take two fractional coordinates and
move probability mass between them in the direction that keeps both in
[0, 1], choosing the direction randomly with odds that preserve expectations;
each step fixes at least one coordinate at 0 or 1.

LFSC's default assignment mode samples each SCN's candidate set this way
before the greedy coordination resolves conflicts (see
:class:`repro.core.config.LFSCConfig.assignment_mode`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["depround"]

_TOL = 1e-9


def depround(p: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample a subset with inclusion marginals ``p`` and fixed size Σp.

    Parameters
    ----------
    p:
        ``(K,)`` probabilities in [0, 1].  Σp should be (nearly) integral;
        a residual fractional coordinate due to floating-point error is
        resolved by one final Bernoulli draw, preserving its marginal.
    rng:
        Random stream.

    Returns
    -------
    ``(K,)`` boolean selection mask with ``mask.sum() ∈ {floor(Σp), ceil(Σp)}``
    and ``E[mask] = p`` exactly.
    """
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"p must be 1-D, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)

    # Hot path of every LFSC slot (called once per SCN): the whole walk runs
    # on Python lists and floats — one .tolist() up front beats per-element
    # ndarray scalar access by ~100x, and the fixed coordinates go straight
    # into the output list instead of back through a scatter write.  At the
    # K ≲ a-few-hundred sizes this sees, Python min/max over the list beat
    # the two ndarray reductions' call overhead.  All uniform draws are
    # taken up front (each iteration fixes >= 1 coordinate, so at most
    # len(fractional) draws are ever needed).
    values: list[float] = arr.tolist()
    lo = min(values)
    hi = max(values)
    if lo < -_TOL or hi > 1.0 + _TOL:
        raise ValueError("probabilities must lie in [0, 1]")
    out: list[bool] = [False] * n
    # Each walk step pairs the carry (held in the pi/ci registers — value
    # and original index) with the element below; moving alpha or beta pins
    # at least one of the two at 0 or 1, and the fractional survivor becomes
    # the next carry.  Positions below the carry are never mutated, so the
    # walk is a pure downward scan with zero list writes.
    if lo > _TOL and hi < 1.0 - _TOL:
        # Common case (Alg. 2's gamma floor and the p<1 cap keep every entry
        # strictly fractional): every coordinate participates and its stack
        # position equals its index, so the walk needs no id bookkeeping.
        vals = values
        top = n - 1
        draws = rng.random(n).tolist()
        draw_at = 0
        pi = vals[top]
        ci = top
        while top >= 1:
            j = top - 1
            pj = vals[j]
            alpha = 1.0 - pi if 1.0 - pi < pj else pj  # move mass j -> i
            beta = pi if pi < 1.0 - pj else 1.0 - pj  # move mass i -> j
            if draws[draw_at] < beta / (alpha + beta):
                pi += alpha
                pj -= alpha
            else:
                pi -= beta
                pj += beta
            draw_at += 1
            if _TOL < pi < 1.0 - _TOL:
                # Carry survives: pj is pinned, carry slides down one slot.
                out[j] = pj > 0.5
                top = j
            elif _TOL < pj < 1.0 - _TOL:
                # pj becomes the new carry in place.
                out[ci] = pi > 0.5
                ci = j
                pi = pj
                top = j
            else:
                # Both pinned (combined mass was integral): fresh pair next.
                out[ci] = pi > 0.5
                out[j] = pj > 0.5
                top = j - 1
                if top >= 0:
                    ci = top
                    pi = vals[top]
        if top == 0:
            # One residual fractional coordinate (float round-off): Bernoulli.
            u = draws[draw_at] if draw_at < n else rng.random()
            out[ci] = u < pi
        return np.asarray(out, dtype=bool)

    # General path: strip the already-integral coordinates, keeping the
    # original index of each fractional one.
    ids: list[int] = []
    vals = []
    for i, v in enumerate(values):
        if v > _TOL:
            if v < 1.0 - _TOL:
                ids.append(i)
                vals.append(v)
            else:
                out[i] = True
    top = len(ids) - 1
    if top < 0:
        return np.asarray(out, dtype=bool)
    draws = rng.random(top + 1).tolist()
    draw_at = 0
    pi = vals[top]
    ci = ids[top]
    while top >= 1:
        j = top - 1
        pj = vals[j]
        alpha = 1.0 - pi if 1.0 - pi < pj else pj  # move mass j -> i
        beta = pi if pi < 1.0 - pj else 1.0 - pj  # move mass i -> j
        if draws[draw_at] < beta / (alpha + beta):
            pi += alpha
            pj -= alpha
        else:
            pi -= beta
            pj += beta
        draw_at += 1
        if _TOL < pi < 1.0 - _TOL:
            # Carry survives: pj is pinned, carry slides down one slot.
            out[ids[j]] = pj > 0.5
            top = j
        elif _TOL < pj < 1.0 - _TOL:
            # pj becomes the new carry in place.
            out[ci] = pi > 0.5
            ci = ids[j]
            pi = pj
            top = j
        else:
            # Both pinned (combined mass was integral): fresh pair next.
            out[ci] = pi > 0.5
            out[ids[j]] = pj > 0.5
            top = j - 1
            if top >= 0:
                ci = ids[top]
                pi = vals[top]
    if top == 0:
        # One residual fractional coordinate (float round-off): Bernoulli.
        u = draws[draw_at] if draw_at < len(draws) else rng.random()
        out[ci] = u < pi
    return np.asarray(out, dtype=bool)
