"""Dependent rounding (DepRound) for multiple-play bandit sampling.

Exp3.M turns a marginal probability vector p ∈ [0,1]^K with Σp = c into a
random subset of exactly c arms whose inclusion marginals are exactly p.
DepRound does this in O(K): repeatedly take two fractional coordinates and
move probability mass between them in the direction that keeps both in
[0, 1], choosing the direction randomly with odds that preserve expectations;
each step fixes at least one coordinate at 0 or 1.

LFSC's default assignment mode samples each SCN's candidate set this way
before the greedy coordination resolves conflicts (see
:class:`repro.core.config.LFSCConfig.assignment_mode`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["depround"]

_TOL = 1e-9


def depround(p: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample a subset with inclusion marginals ``p`` and fixed size Σp.

    Parameters
    ----------
    p:
        ``(K,)`` probabilities in [0, 1].  Σp should be (nearly) integral;
        a residual fractional coordinate due to floating-point error is
        resolved by one final Bernoulli draw, preserving its marginal.
    rng:
        Random stream.

    Returns
    -------
    ``(K,)`` boolean selection mask with ``mask.sum() ∈ {floor(Σp), ceil(Σp)}``
    and ``E[mask] = p`` exactly.
    """
    work = np.asarray(p, dtype=float).copy()
    if work.ndim != 1:
        raise ValueError(f"p must be 1-D, got shape {work.shape}")
    if np.any(work < -_TOL) or np.any(work > 1.0 + _TOL):
        raise ValueError("probabilities must lie in [0, 1]")
    np.clip(work, 0.0, 1.0, out=work)

    # Hot path of every LFSC slot: run the pairing walk on Python scalars
    # (ndarray scalar indexing costs ~100x a list access) with all uniform
    # draws taken up front (each iteration fixes >= 1 coordinate, so at most
    # len(fractional) draws are ever needed).
    frac_pos = np.flatnonzero((work > _TOL) & (work < 1.0 - _TOL))
    ids: list[int] = frac_pos.tolist()
    vals: list[float] = work[frac_pos].tolist()
    draws = rng.random(len(ids)).tolist() if len(ids) else []
    draw_at = 0
    while len(ids) >= 2:
        pi = vals[-1]
        pj = vals[-2]
        alpha = 1.0 - pi if 1.0 - pi < pj else pj  # move mass j -> i
        beta = pi if pi < 1.0 - pj else 1.0 - pj  # move mass i -> j
        if draws[draw_at] < beta / (alpha + beta):
            pi += alpha
            pj -= alpha
        else:
            pi -= beta
            pj += beta
        draw_at += 1
        i = ids.pop()
        vals.pop()
        j = ids.pop()
        vals.pop()
        if _TOL < pi < 1.0 - _TOL:
            ids.append(i)
            vals.append(pi)
        else:
            work[i] = pi
        if _TOL < pj < 1.0 - _TOL:
            ids.append(j)
            vals.append(pj)
        else:
            work[j] = pj
    if ids:
        # One residual fractional coordinate (float round-off): Bernoulli.
        value = vals[0]
        u = draws[draw_at] if draw_at < len(draws) else rng.random()
        work[ids[0]] = 1.0 if u < value else 0.0
    return work > 0.5
