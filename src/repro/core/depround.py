"""Dependent rounding (DepRound) for multiple-play bandit sampling.

Exp3.M turns a marginal probability vector p ∈ [0,1]^K with Σp = c into a
random subset of exactly c arms whose inclusion marginals are exactly p.
DepRound does this in O(K): repeatedly take two fractional coordinates and
move probability mass between them in the direction that keeps both in
[0, 1], choosing the direction randomly with odds that preserve expectations;
each step fixes at least one coordinate at 0 or 1.

LFSC's default assignment mode samples each SCN's candidate set this way
before the greedy coordination resolves conflicts (see
:class:`repro.core.config.LFSCConfig.assignment_mode`).

Two entry points share the walk: :func:`depround` is the per-SCN call the
reference engine and the property tests exercise, and
:func:`draw_count` + :func:`walk_into` expose the pieces the windowed
batched engine fuses across a whole slot — it precomputes every segment's
uniform draw count, takes all draws in one generator call (bitwise the
same stream as per-segment calls), and walks each segment on presliced
lists.
"""

from __future__ import annotations

import numpy as np

__all__ = ["depround", "draw_count", "walk_into"]

_TOL = 1e-9


def draw_count(values: list[float], lo: float, hi: float) -> int:
    """Number of uniforms :func:`walk_into` consumes for this segment.

    The count is a pure function of the probabilities (all draws are taken
    up front and each pairing step fixes at least one coordinate, so the
    walk never needs more than one draw per fractional coordinate) — which
    is what lets the batched engine pool every segment's draws into a
    single generator call without changing the stream.
    """
    if lo > _TOL and hi < 1.0 - _TOL:
        return len(values)
    n = 0
    for v in values:
        if _TOL < v < 1.0 - _TOL:
            n += 1
    return n


def walk_into(
    values: list[float],
    draws: list[float],
    out: list[bool],
    base: int,
    lo: float,
    hi: float,
) -> None:
    """Run one segment's DepRound walk, writing ``out[base + i]``.

    ``values`` are the segment's probabilities (already validated to lie in
    [0, 1] up to tolerance), ``draws`` exactly :func:`draw_count` uniforms,
    ``lo``/``hi`` the segment's extrema.  ``out`` entries default False;
    only selected coordinates are written True.
    """
    n = len(values)
    if n == 0:
        return
    # Each walk step pairs the carry (held in the pi/ci registers — value
    # and original index) with the element below; moving alpha or beta pins
    # at least one of the two at 0 or 1, and the fractional survivor becomes
    # the next carry.  Positions below the carry are never mutated, so the
    # walk is a pure downward scan with zero list writes.
    if lo > _TOL and hi < 1.0 - _TOL:
        # Common case (Alg. 2's gamma floor and the p<1 cap keep every entry
        # strictly fractional): every coordinate participates and its stack
        # position equals its index, so the walk needs no id bookkeeping.
        vals = values
        top = n - 1
        draw_at = 0
        pi = vals[top]
        ci = top
        while top >= 1:
            j = top - 1
            pj = vals[j]
            alpha = 1.0 - pi if 1.0 - pi < pj else pj  # move mass j -> i
            beta = pi if pi < 1.0 - pj else 1.0 - pj  # move mass i -> j
            if draws[draw_at] < beta / (alpha + beta):
                pi += alpha
                pj -= alpha
            else:
                pi -= beta
                pj += beta
            draw_at += 1
            if _TOL < pi < 1.0 - _TOL:
                # Carry survives: pj is pinned, carry slides down one slot.
                if pj > 0.5:
                    out[base + j] = True
                top = j
            elif _TOL < pj < 1.0 - _TOL:
                # pj becomes the new carry in place.
                if pi > 0.5:
                    out[base + ci] = True
                ci = j
                pi = pj
                top = j
            else:
                # Both pinned (combined mass was integral): fresh pair next.
                if pi > 0.5:
                    out[base + ci] = True
                if pj > 0.5:
                    out[base + j] = True
                top = j - 1
                if top >= 0:
                    ci = top
                    pi = vals[top]
        if top == 0:
            # One residual fractional coordinate (float round-off): Bernoulli.
            # The walk runs at most n−1 pairing steps, so a draw is left.
            if draws[draw_at] < pi:
                out[base + ci] = True
        return

    # General path: strip the already-integral coordinates, keeping the
    # original index of each fractional one.
    ids: list[int] = []
    vals = []
    for i, v in enumerate(values):
        if v > _TOL:
            if v < 1.0 - _TOL:
                ids.append(i)
                vals.append(v)
            else:
                out[base + i] = True
    top = len(ids) - 1
    if top < 0:
        return
    draw_at = 0
    pi = vals[top]
    ci = ids[top]
    while top >= 1:
        j = top - 1
        pj = vals[j]
        alpha = 1.0 - pi if 1.0 - pi < pj else pj  # move mass j -> i
        beta = pi if pi < 1.0 - pj else 1.0 - pj  # move mass i -> j
        if draws[draw_at] < beta / (alpha + beta):
            pi += alpha
            pj -= alpha
        else:
            pi -= beta
            pj += beta
        draw_at += 1
        if _TOL < pi < 1.0 - _TOL:
            # Carry survives: pj is pinned, carry slides down one slot.
            if pj > 0.5:
                out[base + ids[j]] = True
            top = j
        elif _TOL < pj < 1.0 - _TOL:
            # pj becomes the new carry in place.
            if pi > 0.5:
                out[base + ci] = True
            ci = ids[j]
            pi = pj
            top = j
        else:
            # Both pinned (combined mass was integral): fresh pair next.
            if pi > 0.5:
                out[base + ci] = True
            if pj > 0.5:
                out[base + ids[j]] = True
            top = j - 1
            if top >= 0:
                ci = ids[top]
                pi = vals[top]
    if top == 0:
        # One residual fractional coordinate (float round-off): Bernoulli.
        if draws[draw_at] < pi:
            out[base + ci] = True


def depround(
    p: np.ndarray,
    rng: np.random.Generator,
    *,
    lo: float | None = None,
    hi: float | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Sample a subset with inclusion marginals ``p`` and fixed size Σp.

    Parameters
    ----------
    p:
        ``(K,)`` probabilities in [0, 1].  Σp should be (nearly) integral;
        a residual fractional coordinate due to floating-point error is
        resolved by one final Bernoulli draw, preserving its marginal.
    rng:
        Random stream.
    lo, hi:
        Optional precomputed ``min(p)`` / ``max(p)`` — batch callers compute
        both for every segment of a slot in one ``reduceat`` pair and pass
        them in, skipping the per-call scans.  Must equal the true extrema;
        path selection and validation are unchanged.
    scratch:
        Optional float64 buffer of length >= K; the uniform draws land in
        ``scratch[:count]`` instead of a fresh allocation.  Draw order and
        values are bit-identical either way (``rng.random(out=...)`` and
        ``rng.random(n)`` consume the stream identically).

    Returns
    -------
    ``(K,)`` boolean selection mask with ``mask.sum() ∈ {floor(Σp), ceil(Σp)}``
    and ``E[mask] = p`` exactly.
    """
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"p must be 1-D, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)

    # Hot path of every LFSC slot (called once per SCN): the whole walk runs
    # on Python lists and floats — one .tolist() up front beats per-element
    # ndarray scalar access by ~100x, and the fixed coordinates go straight
    # into the output list instead of back through a scatter write.  At the
    # K ≲ a-few-hundred sizes this sees, Python min/max over the list beat
    # the two ndarray reductions' call overhead.
    values: list[float] = arr.tolist()
    if lo is None:
        lo = min(values)
    if hi is None:
        hi = max(values)
    if lo < -_TOL or hi > 1.0 + _TOL:
        raise ValueError("probabilities must lie in [0, 1]")
    count = draw_count(values, lo, hi)
    if count == 0:
        draws: list[float] = []
    elif scratch is None:
        draws = rng.random(count).tolist()
    else:
        buf = scratch[:count]
        rng.random(out=buf)
        draws = buf.tolist()
    out: list[bool] = [False] * n
    walk_into(values, draws, out, 0, lo, hi)
    return np.asarray(out, dtype=bool)
