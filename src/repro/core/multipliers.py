"""Lagrange multipliers for the QoS and resource constraints (paper §4.1).

LFSC folds constraints (1c) (completed tasks ≥ α) and (1d) (consumption ≤ β)
into the learning objective via per-SCN multipliers λ₁^m, λ₂^m.  When a
constraint is being violated its multiplier grows, shifting weight toward
hypercubes that help satisfy it; when it is comfortably met the multiplier
decays toward zero.  The update (Alg. 3 lines 15-17) is projected dual
ascent with a regularization decay δ:

    λ₁ ← [ (1 − η δ) λ₁ + η (α − completed_t) ]₊
    λ₂ ← [ (1 − η δ) λ₂ + η (consumption_t − β) ]₊

Both are clipped above by λ_max (the induction bound λ ≤ 1/(η δ) from the
regret proof) to keep the weight update's exponent bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = ["LagrangeMultipliers"]


@dataclass
class LagrangeMultipliers:
    """Per-SCN dual variables (λ₁, λ₂) with the Alg. 3 update rule.

    Parameters
    ----------
    num_scns:
        Number of SCNs M.
    eta:
        Dual step size η (usually LFSC's learning rate).
    delta:
        Regularization decay δ > 0 — keeps multipliers bounded.
    lambda_max:
        Hard upper clip; defaults to 1/(η δ), the proof's induction bound.
    """

    num_scns: int
    eta: float
    delta: float
    lambda_max: float | None = None
    qos: np.ndarray = field(init=False)
    resource: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("eta", self.eta)
        check_positive("delta", self.delta)
        if self.lambda_max is None:
            self.lambda_max = 1.0 / (self.eta * self.delta)
        require(self.lambda_max > 0, f"lambda_max must be > 0, got {self.lambda_max}")
        self.qos = np.zeros(self.num_scns)
        self.resource = np.zeros(self.num_scns)

    def update(
        self,
        completed: np.ndarray,
        consumption: np.ndarray,
        alpha: float,
        beta: float,
    ) -> None:
        """One dual-ascent step from this slot's realized per-SCN totals.

        Parameters
        ----------
        completed:
            ``(M,)`` — realized completed-task count Σ_i v_i per SCN.
        consumption:
            ``(M,)`` — realized resource use Σ_i q_i per SCN.
        alpha, beta:
            The constraint levels of (1c) and (1d).
        """
        completed = np.asarray(completed, dtype=float)
        consumption = np.asarray(consumption, dtype=float)
        if completed.shape != (self.num_scns,) or consumption.shape != (self.num_scns,):
            raise ValueError(
                f"expected per-SCN vectors of shape ({self.num_scns},), got "
                f"{completed.shape} and {consumption.shape}"
            )
        decay = 1.0 - self.eta * self.delta
        self.qos = np.clip(
            decay * self.qos + self.eta * (alpha - completed), 0.0, self.lambda_max
        )
        self.resource = np.clip(
            decay * self.resource + self.eta * (consumption - beta), 0.0, self.lambda_max
        )

    def reset(self) -> None:
        """Zero both multiplier vectors (fresh run)."""
        self.qos = np.zeros(self.num_scns)
        self.resource = np.zeros(self.num_scns)

    def state_dict(self) -> dict[str, np.ndarray]:
        """The dual variables, copied (for checkpoint/restore)."""
        return {"qos": self.qos.copy(), "resource": self.resource.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` values (shape-checked)."""
        for name in ("qos", "resource"):
            value = np.asarray(state[name], dtype=float)
            if value.shape != (self.num_scns,):
                raise ValueError(
                    f"multiplier {name!r} has shape {value.shape}, expected ({self.num_scns},)"
                )
            setattr(self, name, value.copy())
