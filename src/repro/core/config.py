"""LFSC tunables, including the theorem-suggested schedules (paper Thm. 1).

Theorem 1 fixes the exploration rate γ, the learning rate η, and the
multiplier decay δ as functions of the horizon T, the per-SCN coverage bound
K_m, and the capacity c, to obtain the sub-linear regret/violation bounds:

    γ  = min(1, sqrt( K ln(K/c) / ((e−1) c T) ))      (Exp3.M exploration)
    η  = γ / K                                        (weight learning rate)
    δ  = 1 / sqrt(T)                                  (multiplier decay)

:meth:`LFSCConfig.from_theorem` computes these; every field can be
overridden for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.hypercube import ContextPartition
from repro.utils.validation import check_positive, require

__all__ = ["LFSCConfig"]


@dataclass(frozen=True)
class LFSCConfig:
    """All knobs of the LFSC policy.

    Attributes
    ----------
    partition:
        The hypercube partition of the context space (h_T per dimension).
    gamma:
        Exploration rate γ ∈ (0, 1] of Alg. 2.
    eta:
        Learning rate η of the exponential weight update (Alg. 3).
    eta_dual:
        Step size of the Lagrange-multiplier update; defaults to ``eta``
        when None.  The theorem schedule uses 1/sqrt(T) so the duals adapt
        on the constraint timescale rather than the weight timescale.
    delta:
        Multiplier regularization decay δ.
    lambda_max:
        Upper clip for both multipliers (numerical guard; the proof's
        induction bound is 1/(η δ), far above anything reached in practice).
    assignment_mode:
        ``"depround"`` (default) — sample each SCN's candidate set by
        dependent rounding with the Alg. 2 marginals, then run the greedy
        coordination (keeps the Exp3.M exploration guarantees the regret
        proof relies on).  ``"deterministic"`` — the paper-literal variant:
        greedy directly on the probability weights (no sampling).  The two
        are compared in ``benchmarks/bench_ablations.py``.
    tie_jitter:
        Relative uniform jitter applied to greedy edge weights to break
        ties uniformly at random (0 disables; deterministic mode relies on
        it early on, when all weights are equal).
    max_exponent:
        Per-slot clip on the weight-update exponent (numerical guard).
    use_lagrangian:
        Ablation switch: False freezes both multipliers at 0, reducing
        LFSC to pure constrained-blind Exp3.M + greedy.
    engine:
        Slot-engine implementation: ``"batched"`` (default) runs the flat
        edge-list kernels (one Alg. 2 / Alg. 3 pass over all SCNs);
        ``"reference"`` runs the paper-shaped per-SCN loop.  Both produce
        bit-identical trajectories under the same seed — the reference
        path is kept for readability and A/B benchmarking
        (``benchmarks/bench_slot_engine.py``).
    """

    partition: ContextPartition = field(default_factory=ContextPartition)
    gamma: float = 0.05
    eta: float = 1e-3
    eta_dual: float | None = None
    delta: float = 0.01
    lambda_max: float = 50.0
    assignment_mode: str = "depround"
    tie_jitter: float = 1e-9
    max_exponent: float = 10.0
    use_lagrangian: bool = True
    engine: str = "batched"

    def __post_init__(self) -> None:
        require(0.0 < self.gamma <= 1.0, f"gamma must be in (0,1], got {self.gamma}")
        check_positive("eta", self.eta)
        if self.eta_dual is not None:
            check_positive("eta_dual", self.eta_dual)
        check_positive("delta", self.delta)
        check_positive("lambda_max", self.lambda_max)
        check_positive("max_exponent", self.max_exponent)
        require(self.tie_jitter >= 0.0, f"tie_jitter must be >= 0, got {self.tie_jitter}")
        require(
            self.assignment_mode in ("depround", "deterministic"),
            f"assignment_mode must be 'depround' or 'deterministic', got {self.assignment_mode!r}",
        )
        require(
            self.engine in ("batched", "reference"),
            f"engine must be 'batched' or 'reference', got {self.engine!r}",
        )

    @property
    def dual_step(self) -> float:
        """The multiplier step size actually used."""
        return self.eta if self.eta_dual is None else self.eta_dual

    def with_overrides(self, **changes) -> "LFSCConfig":
        """A copy with the given fields replaced (for sweeps/ablations)."""
        return replace(self, **changes)

    @staticmethod
    def from_theorem(
        max_coverage: int,
        capacity: int,
        horizon: int,
        *,
        dims: int = 3,
        parts: int | None = None,
        **overrides,
    ) -> "LFSCConfig":
        """The Theorem 1 schedule for a given problem size.

        Parameters
        ----------
        max_coverage:
            K — upper bound on |D_{m,t}| (e.g. ``workload.max_coverage_size()``).
        capacity:
            The communication capacity c.
        horizon:
            The run length T.
        dims, parts:
            Context dimensionality and partition granularity; ``parts=None``
            uses the paper's evaluation default h_T = 3.
        overrides:
            Any :class:`LFSCConfig` field to override after the schedule.
        """
        check_positive("max_coverage", max_coverage)
        check_positive("capacity", capacity)
        check_positive("horizon", horizon)
        K = max(max_coverage, capacity + 1)
        ratio = max(K / capacity, np.e)  # keep ln(K/c) >= 1 for tiny problems
        gamma = min(
            1.0, float(np.sqrt(K * np.log(ratio) / ((np.e - 1.0) * capacity * horizon)))
        )
        eta = gamma / K
        delta = 1.0 / np.sqrt(horizon)
        params = dict(
            partition=ContextPartition(dims=dims, parts=parts if parts else 3),
            gamma=gamma,
            eta=eta,
            eta_dual=1.0 / np.sqrt(horizon),
            delta=delta,
            # Keep the duals within an order of magnitude of the reward scale
            # (g <= 1/q_min); far larger caps make the utility constraint-
            # dominated and slow convergence, far smaller ones under-penalize
            # violations.  10 is the calibrated sweet spot (see EXPERIMENTS.md).
            lambda_max=10.0,
        )
        params.update(overrides)
        return LFSCConfig(**params)  # type: ignore[arg-type]
