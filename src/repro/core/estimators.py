"""Unbiased importance-weighted estimates and per-hypercube statistics.

Alg. 3 lines 2-8: after the slot's assignment is processed, each of SCN m's
*covered* tasks i gets the unbiased estimates

    ĝ_i = g_i · 1(i selected by m) / p_i,     (same for v̂_i and q̂_i)

so that E[ĝ_i] = E[g_i] regardless of the randomized selection, and each
hypercube f aggregates the estimates of its tasks present this slot:

    ĝ_f = Σ_{i: f_i = f} ĝ_i / |{i: f_i = f}|.

:class:`CubeStatistics` additionally maintains running sample means and
counts per (SCN, hypercube) from *observed* feedback only — that is what the
vUCB and FML baselines learn from, and what LFSC exposes for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["importance_weighted", "aggregate_by_cube", "CubeStatistics"]


def importance_weighted(
    values: np.ndarray, selected: np.ndarray, probabilities: np.ndarray
) -> np.ndarray:
    """Per-task unbiased estimates x̂_i = x_i·1(selected)/p_i.

    Parameters
    ----------
    values:
        ``(K,)`` realized values; entries for unselected tasks are ignored
        (may be anything, typically 0).
    selected:
        ``(K,)`` boolean mask of selection by this SCN.
    probabilities:
        ``(K,)`` the selection probabilities used, all in (0, 1].
    """
    values = np.asarray(values, dtype=float)
    selected = np.asarray(selected, dtype=bool)
    p = np.asarray(probabilities, dtype=float)
    if not (values.shape == selected.shape == p.shape):
        raise ValueError(
            f"shape mismatch: values {values.shape}, selected {selected.shape}, p {p.shape}"
        )
    if np.any(p[selected] <= 0.0):
        raise ValueError("selected tasks must have strictly positive probability")
    out = np.zeros_like(values)
    out[selected] = values[selected] / p[selected]
    return out


def aggregate_by_cube(
    per_task: np.ndarray, cube_idx: np.ndarray, num_cubes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Average per-task estimates over the hypercube they fall into.

    Returns
    -------
    (mean, count):
        ``mean[f]`` = Σ_{i: f_i=f} per_task_i / count_f (0 where count 0),
        ``count[f]`` = number of this slot's tasks in cube f.
    """
    check_positive("num_cubes", num_cubes)
    per_task = np.asarray(per_task, dtype=float)
    cube_idx = np.asarray(cube_idx, dtype=np.int64)
    sums = np.bincount(cube_idx, weights=per_task, minlength=num_cubes)
    counts = np.bincount(cube_idx, minlength=num_cubes)
    means = np.divide(sums, counts, out=np.zeros(num_cubes), where=counts > 0)
    return means, counts


@dataclass
class CubeStatistics:
    """Running sample means per (SCN, hypercube) from observed feedback.

    Tracks, for every SCN m and cube f, the number of processed tasks
    N(m, f) and the sample means of the compound reward g, the completion
    indicator v, and the consumption q.  Updates are vectorized over the
    batch of (scn, cube, value) observations of a slot.
    """

    num_scns: int
    num_cubes: int
    counts: np.ndarray = field(init=False)
    mean_g: np.ndarray = field(init=False)
    mean_v: np.ndarray = field(init=False)
    mean_q: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("num_cubes", self.num_cubes)
        shape = (self.num_scns, self.num_cubes)
        self.counts = np.zeros(shape, dtype=np.int64)
        self.mean_g = np.zeros(shape)
        self.mean_v = np.zeros(shape)
        self.mean_q = np.zeros(shape)

    def observe(
        self,
        scn_idx: np.ndarray,
        cube_idx: np.ndarray,
        g: np.ndarray,
        v: np.ndarray,
        q: np.ndarray,
    ) -> None:
        """Fold one slot's processed-task observations into the means.

        Multiple observations may share one (scn, cube) pair within the
        batch; the incremental-mean update handles that by aggregating the
        batch per pair first.
        """
        scn_idx = np.asarray(scn_idx, dtype=np.int64)
        cube_idx = np.asarray(cube_idx, dtype=np.int64)
        if scn_idx.shape != cube_idx.shape:
            raise ValueError("scn_idx and cube_idx must align")
        if scn_idx.size == 0:
            return
        flat = scn_idx * self.num_cubes + cube_idx
        size = self.num_scns * self.num_cubes
        batch_counts = np.bincount(flat, minlength=size)
        touched = np.flatnonzero(batch_counts)
        for mean, values in ((self.mean_g, g), (self.mean_v, v), (self.mean_q, q)):
            batch_sums = np.bincount(flat, weights=np.asarray(values, dtype=float), minlength=size)
            flat_mean = mean.reshape(-1)
            old_n = self.counts.reshape(-1)[touched]
            new_n = old_n + batch_counts[touched]
            flat_mean[touched] = (
                flat_mean[touched] * old_n + batch_sums[touched]
            ) / new_n
        self.counts.reshape(-1)[touched] += batch_counts[touched]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Counts and running means, copied (for checkpoint/restore)."""
        return {
            "counts": self.counts.copy(),
            "mean_g": self.mean_g.copy(),
            "mean_v": self.mean_v.copy(),
            "mean_q": self.mean_q.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` values (shape-checked)."""
        shape = (self.num_scns, self.num_cubes)
        for name, dtype in (
            ("counts", np.int64), ("mean_g", float), ("mean_v", float), ("mean_q", float),
        ):
            value = np.asarray(state[name], dtype=dtype)
            if value.shape != shape:
                raise ValueError(
                    f"statistic {name!r} has shape {value.shape}, expected {shape}"
                )
            setattr(self, name, value.copy())

    def total_observations(self) -> int:
        """Total number of processed-task observations so far."""
        return int(self.counts.sum())

    def ucb_index(self, t: int, *, exploration: float = 2.0) -> np.ndarray:
        """UCB1 index per (SCN, cube): mean_g + sqrt(exploration·ln t / N).

        Unvisited cubes get +inf so they are tried first (standard UCB1).
        """
        if t < 1:
            t = 1
        with np.errstate(divide="ignore", invalid="ignore"):
            bonus = np.sqrt(exploration * np.log(t) / self.counts)
        index = self.mean_g + bonus
        index[self.counts == 0] = np.inf
        return index
