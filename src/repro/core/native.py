"""Optional C kernel for the DepRound walk, compiled on demand.

The windowed batched engine fuses every segment's DepRound walk into one
pass (:meth:`repro.core.lfsc.LFSCPolicy._score_edges_fused`), but the walk
itself is an inherently sequential carry scan — ~one pairing step per edge —
that no NumPy expression can reproduce bit-identically.  At paper scale the
pure-Python scan is the single largest slot cost left, so this module
compiles a C transliteration of :func:`repro.core.depround.walk_into` at
first use with whatever C compiler the host already has (``cc``/``gcc``/
``clang`` — nothing is downloaded or installed) and drives it through
:mod:`ctypes`.

Bit-identicality: the kernel performs the exact IEEE-754 double operations
of the Python walk in the same order — comparisons, additions, subtractions
and one division per step, no multiplications — and is built with
``-ffp-contract=off`` so no toolchain may fuse operations.  The windowed
equivalence suite (``tests/env/test_window.py``) pins the native path
against the pure-Python per-slot trajectories.

Fallback: any failure — no compiler, sandboxed tmpdir, load error, or
``REPRO_NATIVE=0`` in the environment — silently disables the kernel and
callers keep using the Python walk.  The compiled object is cached under a
per-user directory (override with ``REPRO_NATIVE_CACHE``) keyed by a hash
of the source, so each machine compiles once, not once per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

__all__ = ["available", "greedy_pass", "scatter_update", "walk_segments"]

_SOURCE = r"""
#include <stddef.h>

/* DepRound walks for every segment of a slot in one call.  Mirrors
 * repro.core.depround.walk_into statement for statement: the same IEEE
 * double operations in the same order, so results are bit-identical to
 * the Python walk.  `out` entries default 0; only selections are written.
 */
void walk_segments(const double *p,
                   const long long *seg_start,
                   long long num_segs,
                   const double *draws,
                   const long long *draw_start,
                   const double *lo,
                   const double *hi,
                   unsigned char *out,
                   double tol,
                   long long *ids_scratch,
                   double *vals_scratch)
{
    for (long long s = 0; s < num_segs; s++) {
        long long base = seg_start[s];
        long long n = seg_start[s + 1] - base;
        if (n == 0)
            continue;
        const double *vals = p + base;
        const double *dr = draws + draw_start[s];
        long long draw_at = 0;
        if (lo[s] > tol && hi[s] < 1.0 - tol) {
            /* Common path: every coordinate strictly fractional. */
            long long top = n - 1;
            double pi = vals[top];
            long long ci = top;
            while (top >= 1) {
                long long j = top - 1;
                double pj = vals[j];
                double ompi = 1.0 - pi;
                double ompj = 1.0 - pj;
                double alpha = ompi < pj ? ompi : pj;
                double beta = pi < ompj ? pi : ompj;
                if (dr[draw_at] < beta / (alpha + beta)) {
                    pi += alpha;
                    pj -= alpha;
                } else {
                    pi -= beta;
                    pj += beta;
                }
                draw_at++;
                if (tol < pi && pi < 1.0 - tol) {
                    if (pj > 0.5)
                        out[base + j] = 1;
                    top = j;
                } else if (tol < pj && pj < 1.0 - tol) {
                    if (pi > 0.5)
                        out[base + ci] = 1;
                    ci = j;
                    pi = pj;
                    top = j;
                } else {
                    if (pi > 0.5)
                        out[base + ci] = 1;
                    if (pj > 0.5)
                        out[base + j] = 1;
                    top = j - 1;
                    if (top >= 0) {
                        ci = top;
                        pi = vals[top];
                    }
                }
            }
            if (top == 0) {
                if (dr[draw_at] < pi)
                    out[base + ci] = 1;
            }
            continue;
        }
        /* General path: strip the integral coordinates first. */
        long long nf = 0;
        for (long long i = 0; i < n; i++) {
            double v = vals[i];
            if (v > tol) {
                if (v < 1.0 - tol) {
                    ids_scratch[nf] = i;
                    vals_scratch[nf] = v;
                    nf++;
                } else {
                    out[base + i] = 1;
                }
            }
        }
        long long top = nf - 1;
        if (top < 0)
            continue;
        double pi = vals_scratch[top];
        long long ci = ids_scratch[top];
        while (top >= 1) {
            long long j = top - 1;
            double pj = vals_scratch[j];
            double ompi = 1.0 - pi;
            double ompj = 1.0 - pj;
            double alpha = ompi < pj ? ompi : pj;
            double beta = pi < ompj ? pi : ompj;
            if (dr[draw_at] < beta / (alpha + beta)) {
                pi += alpha;
                pj -= alpha;
            } else {
                pi -= beta;
                pj += beta;
            }
            draw_at++;
            if (tol < pi && pi < 1.0 - tol) {
                if (pj > 0.5)
                    out[base + ids_scratch[j]] = 1;
                top = j;
            } else if (tol < pj && pj < 1.0 - tol) {
                if (pi > 0.5)
                    out[base + ci] = 1;
                ci = ids_scratch[j];
                pi = pj;
                top = j;
            } else {
                if (pi > 0.5)
                    out[base + ci] = 1;
                if (pj > 0.5)
                    out[base + ids_scratch[j]] = 1;
                top = j - 1;
                if (top >= 0) {
                    ci = ids_scratch[top];
                    pi = vals_scratch[top];
                }
            }
        }
        if (top == 0) {
            if (dr[draw_at] < pi)
                out[base + ci] = 1;
        }
    }
}

/* Alg. 4's greedy pass over edges in descending-weight order (`order` is
 * the stable argsort the caller computed).  Pure integer bookkeeping —
 * identical accept/reject decisions to the Python pass by construction.
 */
long long greedy_pass(const long long *edge_scn,
                      const long long *edge_task,
                      const long long *order,
                      long long num_edges,
                      unsigned char *taken,
                      long long *rem,
                      long long bound,
                      long long *sel_scn,
                      long long *sel_task)
{
    long long count = 0;
    for (long long k = 0; k < num_edges; k++) {
        long long e = order[k];
        long long i = edge_task[e];
        long long m = edge_scn[e];
        if (taken[i] || rem[m] == 0)
            continue;
        taken[i] = 1;
        rem[m]--;
        sel_scn[count] = m;
        sel_task[count] = i;
        count++;
        if (count == bound)
            break;
    }
    return count;
}

/* Alg. 3's statistics scatter: accumulate each observed edge's utility
 * estimate into its flat (scn, cube) cell.  Additions happen in edge
 * order — exactly the element-order accumulation np.bincount performs —
 * so the sums are bit-identical to the two-bincount formulation this
 * replaces, while touching the E edges once instead of twice over M*F
 * cells.
 */
void scatter_update(const long long *flat,
                    long long num_edges,
                    const double *weights,
                    double *sums,
                    long long *counts)
{
    for (long long e = 0; e < num_edges; e++) {
        long long c = flat[e];
        sums[c] += weights[e];
        counts[c] += 1;
    }
}
"""

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_tried = False

_PD = ctypes.POINTER(ctypes.c_double)
_PL = ctypes.POINTER(ctypes.c_longlong)
_PB = ctypes.POINTER(ctypes.c_ubyte)


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _build_and_load() -> ctypes.CDLL:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_walk_{digest}.so")
    if not os.path.exists(so_path):
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler on PATH")
        os.makedirs(cache, mode=0o700, exist_ok=True)
        src_path = os.path.join(cache, f"repro_walk_{digest}.c")
        with open(src_path, "w") as f:
            f.write(_SOURCE)
        # -ffp-contract=off: forbid fused multiply-add contraction so the
        # arithmetic matches the Python walk on every target (the walk has
        # no multiplies today, but the flag keeps that a non-assumption).
        # Deliberately no -march/-ffast-math: bit-exact IEEE only.
        tmp_out = so_path + f".tmp{os.getpid()}"
        subprocess.run(
            [
                compiler, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                src_path, "-o", tmp_out,
            ],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_out, so_path)  # atomic: concurrent builders converge
    lib = ctypes.CDLL(so_path)
    lib.walk_segments.restype = None
    lib.walk_segments.argtypes = [
        _PD, _PL, ctypes.c_longlong, _PD, _PL, _PD, _PD, _PB,
        ctypes.c_double, _PL, _PD,
    ]
    lib.greedy_pass.restype = ctypes.c_longlong
    lib.greedy_pass.argtypes = [
        _PL, _PL, _PL, ctypes.c_longlong, _PB, _PL, ctypes.c_longlong,
        _PL, _PL,
    ]
    lib.scatter_update.restype = None
    lib.scatter_update.argtypes = [_PL, ctypes.c_longlong, _PD, _PD, _PL]
    return lib


def _load() -> ctypes.CDLL | None:
    global _lib, _tried
    if _tried:
        return _lib
    with _lock:
        if _tried:
            return _lib
        if os.environ.get("REPRO_NATIVE", "1").lower() in ("0", "false", "off"):
            _lib = None
        else:
            try:
                _lib = _build_and_load()
            except Exception:
                _lib = None
        _tried = True
    return _lib


def available() -> bool:
    """True when the compiled walk kernel is usable on this host."""
    return _load() is not None


def walk_segments(
    p: np.ndarray,
    offsets: np.ndarray,
    draws: np.ndarray,
    draw_start: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    out: np.ndarray,
    ids_scratch: np.ndarray,
    vals_scratch: np.ndarray,
    tol: float,
) -> bool:
    """Run every segment's DepRound walk in one native call.

    Parameters mirror the fused scorer's pooled layout: ``p`` (E,) float64
    probabilities, ``offsets`` (M+1,) int64 segment bounds, ``draws`` the
    pooled uniforms with segment s's DepRound draws at
    ``draws[draw_start[s]:]``, ``lo``/``hi`` (M,) per-segment extrema
    (unread for empty segments), ``out`` (E,) uint8 zeroed by the caller
    (selections are written as 1), and two scratch arrays of length >= the
    longest segment for the general path's strip.  All arrays must be
    C-contiguous with the stated dtypes.

    Returns False (doing nothing) when the kernel is unavailable, so the
    caller can fall back to the Python walk.
    """
    lib = _load()
    if lib is None:
        return False
    lib.walk_segments(
        p.ctypes.data_as(_PD),
        offsets.ctypes.data_as(_PL),
        ctypes.c_longlong(offsets.shape[0] - 1),
        draws.ctypes.data_as(_PD),
        draw_start.ctypes.data_as(_PL),
        lo.ctypes.data_as(_PD),
        hi.ctypes.data_as(_PD),
        out.ctypes.data_as(_PB),
        ctypes.c_double(tol),
        ids_scratch.ctypes.data_as(_PL),
        vals_scratch.ctypes.data_as(_PD),
    )
    return True


def greedy_pass(
    edge_scn: np.ndarray,
    edge_task: np.ndarray,
    order: np.ndarray,
    taken: np.ndarray,
    rem: np.ndarray,
    bound: int,
    sel_scn: np.ndarray,
    sel_task: np.ndarray,
) -> int:
    """Alg. 4's accept/reject pass over edges in ``order``.

    ``taken`` is (num_tasks,) uint8 zeroed, ``rem`` (num_scns,) int64 filled
    with the capacity, ``sel_scn``/``sel_task`` int64 output buffers of
    length >= ``bound``.  Returns the number of accepted edges, or -1 when
    the kernel is unavailable (caller falls back to the Python pass).  All
    arrays must be C-contiguous int64/uint8 as stated.
    """
    lib = _load()
    if lib is None:
        return -1
    return lib.greedy_pass(
        edge_scn.ctypes.data_as(_PL),
        edge_task.ctypes.data_as(_PL),
        order.ctypes.data_as(_PL),
        ctypes.c_longlong(edge_scn.shape[0]),
        taken.ctypes.data_as(_PB),
        rem.ctypes.data_as(_PL),
        ctypes.c_longlong(bound),
        sel_scn.ctypes.data_as(_PL),
        sel_task.ctypes.data_as(_PL),
    )


def scatter_update(
    flat: np.ndarray,
    weights: np.ndarray,
    sums: np.ndarray,
    counts: np.ndarray,
) -> bool:
    """Alg. 3's statistics scatter: ``sums[flat[e]] += weights[e]`` per edge.

    ``flat`` (E,) int64 flat cell indices, ``weights`` (E,) float64, and two
    accumulators the caller allocated: ``sums`` float64 and ``counts`` int64,
    both zero-filled with one entry per flat cell.  Additions happen in edge
    order — the element-order accumulation ``np.bincount`` performs — so the
    result is bit-identical to the bincount formulation.  All arrays must be
    C-contiguous with the stated dtypes.

    Returns False (doing nothing) when the kernel is unavailable, so the
    caller can fall back to the bincount path.
    """
    lib = _load()
    if lib is None:
        return False
    lib.scatter_update(
        flat.ctypes.data_as(_PL),
        ctypes.c_longlong(flat.shape[0]),
        weights.ctypes.data_as(_PD),
        sums.ctypes.data_as(_PD),
        counts.ctypes.data_as(_PL),
    )
    return True
