"""Adaptive context partitioning (extension; cf. the paper's fixed (h_T)^D grid).

The paper fixes the hypercube partition up front, which wastes resolution on
context regions that rarely occur and under-resolves busy ones.  The
contextual-bandit literature the paper builds on refines *adaptively*: a
cube is split into its 2^D half-side children once it has been observed

    N(cube) ≥ split_base · 2^(split_rho · level)

times (deeper cubes need exponentially more evidence, keeping the
approximation/estimation balance of the fixed-grid analysis).  This module
implements that zooming scheme:

- :class:`AdaptivePartition` — a box tree over Φ = [0,1]^D that duck-types
  :class:`~repro.core.hypercube.ContextPartition` (``assign`` +
  ``num_cubes``), so it plugs straight into :class:`LFSCConfig`;
- :class:`AdaptiveLFSCPolicy` — LFSC whose hypercube weights follow the
  splits: children inherit the parent's weight, so refinement never forgets
  what was learned at the coarser scale.

``benchmarks/bench_ablations.py`` compares fixed vs adaptive partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LFSCConfig
from repro.core.lfsc import LFSCPolicy
from repro.env.network import NetworkConfig
from repro.env.simulator import SlotFeedback, SlotObservation
from repro.utils.validation import check_positive, require

__all__ = ["AdaptivePartition", "AdaptiveLFSCPolicy"]


@dataclass
class AdaptivePartition:
    """A zooming box tree over [0,1]^dims.

    Parameters
    ----------
    dims:
        Context dimensionality D.
    max_leaves:
        Hard cap on the number of leaves (also sizes the weight matrices of
        policies using this partition — see :attr:`num_cubes`).
    split_base, split_rho:
        A level-l leaf splits after ``split_base · 2^(split_rho·l)``
        observations.  ``split_rho=2`` mirrors the T^{1/(2+D)} balance of the
        fixed grid.

    Leaves carry stable integer ids in ``range(num_cubes)``; ids of split
    (now internal) nodes are never reused, so learned per-cube state indexed
    by id stays valid forever.
    """

    dims: int = 3
    max_leaves: int = 256
    split_base: float = 50.0
    split_rho: float = 2.0

    def __post_init__(self) -> None:
        check_positive("dims", self.dims)
        check_positive("max_leaves", self.max_leaves)
        check_positive("split_base", self.split_base)
        require(self.split_rho >= 0, "split_rho must be >= 0")
        require(
            self.max_leaves >= 2**self.dims + 1,
            f"max_leaves must allow at least one split: >= {2**self.dims + 1}",
        )
        self.reset()

    # -- ContextPartition interface -----------------------------------------

    @property
    def num_cubes(self) -> int:
        """Capacity of the id space (weight matrices are sized by this).

        Each split retires one leaf and allocates 2^D child ids, growing the
        leaf count by 2^D − 1; with at most
        S = floor((max_leaves − 1)/(2^D − 1)) splits ever possible, ids stay
        below 1 + S·2^D.
        """
        kids = 2**self.dims
        max_splits = (self.max_leaves - 1) // (kids - 1)
        return 1 + max_splits * kids

    @property
    def num_leaves(self) -> int:
        return int(self._leaf_ids.shape[0])

    def assign(self, contexts: np.ndarray) -> np.ndarray:
        """Leaf id for each context row (vectorized point-in-box search)."""
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        if np.any(ctx < 0.0) or np.any(ctx > 1.0):
            raise ValueError("contexts must lie in [0,1]^D")
        lows = self._leaf_lows  # (L, D)
        sides = self._leaf_sides  # (L,)
        # inside[i, l] — is context i inside leaf l?  Upper face inclusive
        # only on the domain boundary, handled by nudging 1.0 inward.
        pts = np.minimum(ctx, 1.0 - 1e-12)
        ge = pts[:, None, :] >= lows[None, :, :]
        lt = pts[:, None, :] < (lows + sides[:, None])[None, :, :]
        inside = np.logical_and(ge, lt).all(axis=2)
        leaf_pos = inside.argmax(axis=1)
        if not inside[np.arange(ctx.shape[0]), leaf_pos].all():
            raise RuntimeError("partition does not cover a context (tree bug)")
        return self._leaf_ids[leaf_pos]

    # -- tree maintenance -------------------------------------------------

    def reset(self) -> None:
        """Back to the single root leaf covering all of Φ."""
        self._leaf_ids = np.array([0], dtype=np.int64)
        self._leaf_lows = np.zeros((1, self.dims))
        self._leaf_sides = np.ones(1)
        self._leaf_levels = np.zeros(1, dtype=np.int64)
        self._counts: dict[int, int] = {0: 0}
        self._next_id = 1

    def state_dict(self) -> dict:
        """The full tree state (for checkpoint/restore).

        Observation counts are stored as one array aligned with
        ``leaf_ids`` — the count keys are exactly the live leaves — so the
        snapshot is pure arrays plus the id cursor.
        """
        counts = np.fromiter(
            (self._counts[int(i)] for i in self._leaf_ids),
            dtype=np.int64,
            count=self.num_leaves,
        )
        return {
            "leaf_ids": self._leaf_ids.copy(),
            "leaf_lows": self._leaf_lows.copy(),
            "leaf_sides": self._leaf_sides.copy(),
            "leaf_levels": self._leaf_levels.copy(),
            "leaf_counts": counts,
            "next_id": int(self._next_id),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (consistency-checked)."""
        leaf_ids = np.asarray(state["leaf_ids"], dtype=np.int64)
        leaf_lows = np.asarray(state["leaf_lows"], dtype=float)
        leaf_sides = np.asarray(state["leaf_sides"], dtype=float)
        leaf_levels = np.asarray(state["leaf_levels"], dtype=np.int64)
        counts = np.asarray(state["leaf_counts"], dtype=np.int64)
        n = leaf_ids.shape[0]
        if (
            leaf_lows.shape != (n, self.dims)
            or leaf_sides.shape != (n,)
            or leaf_levels.shape != (n,)
            or counts.shape != (n,)
        ):
            raise ValueError("adaptive-partition state arrays are inconsistent")
        next_id = int(state["next_id"])
        if n == 0 or int(leaf_ids.max(initial=0)) >= next_id:
            raise ValueError("adaptive-partition state has ids beyond the id cursor")
        self._leaf_ids = leaf_ids.copy()
        self._leaf_lows = leaf_lows.copy()
        self._leaf_sides = leaf_sides.copy()
        self._leaf_levels = leaf_levels.copy()
        self._counts = {
            int(i): int(c) for i, c in zip(leaf_ids.tolist(), counts.tolist())
        }
        self._next_id = next_id

    def level_of(self, leaf_id: int) -> int:
        pos = np.flatnonzero(self._leaf_ids == leaf_id)
        require(pos.size == 1, f"{leaf_id} is not a live leaf")
        return int(self._leaf_levels[pos[0]])

    def split_threshold(self, level: int) -> float:
        return self.split_base * 2.0 ** (self.split_rho * level)

    def observe(self, leaf_ids: np.ndarray) -> list[tuple[int, list[int]]]:
        """Record observations; split saturated leaves.

        Parameters
        ----------
        leaf_ids:
            One entry per observation (repeats allowed).

        Returns
        -------
        A list of ``(parent_id, child_ids)`` for every split performed, in
        order — callers migrate per-cube learned state along these edges.
        """
        ids, reps = np.unique(np.asarray(leaf_ids, dtype=np.int64), return_counts=True)
        for leaf, n in zip(ids.tolist(), reps.tolist()):
            if leaf in self._counts:
                self._counts[leaf] += int(n)
        splits: list[tuple[int, list[int]]] = []
        # Iterate over a snapshot: new children start with count 0 and can't
        # immediately re-split within the same call.
        for leaf in ids.tolist():
            pos = np.flatnonzero(self._leaf_ids == leaf)
            if pos.size == 0:
                continue
            p = int(pos[0])
            level = int(self._leaf_levels[p])
            if self._counts.get(leaf, 0) < self.split_threshold(level):
                continue
            n_children = 2**self.dims
            if self.num_leaves - 1 + n_children > self.max_leaves:
                continue  # at capacity: stop refining
            splits.append((leaf, self._split_at(p)))
        return splits

    def _split_at(self, pos: int) -> list[int]:
        """Replace the leaf at array position ``pos`` with its 2^D children."""
        low = self._leaf_lows[pos]
        side = float(self._leaf_sides[pos]) / 2.0
        level = int(self._leaf_levels[pos]) + 1
        child_ids: list[int] = []
        child_lows = []
        for corner in range(2**self.dims):
            offs = np.array(
                [(corner >> d) & 1 for d in range(self.dims)], dtype=float
            )
            child_lows.append(low + offs * side)
            child_ids.append(self._next_id)
            self._counts[self._next_id] = 0
            self._next_id += 1
        parent_id = int(self._leaf_ids[pos])
        del self._counts[parent_id]
        keep = np.ones(self.num_leaves, dtype=bool)
        keep[pos] = False
        self._leaf_ids = np.concatenate(
            [self._leaf_ids[keep], np.asarray(child_ids, dtype=np.int64)]
        )
        self._leaf_lows = np.vstack([self._leaf_lows[keep], np.vstack(child_lows)])
        self._leaf_sides = np.concatenate(
            [self._leaf_sides[keep], np.full(len(child_ids), side)]
        )
        self._leaf_levels = np.concatenate(
            [self._leaf_levels[keep], np.full(len(child_ids), level, dtype=np.int64)]
        )
        return child_ids


class AdaptiveLFSCPolicy(LFSCPolicy):
    """LFSC over an adaptive partition; children inherit parental weights."""

    name = "LFSC-adaptive"

    def __init__(
        self,
        config: LFSCConfig | None = None,
        *,
        partition: AdaptivePartition | None = None,
    ) -> None:
        base = config if config is not None else LFSCConfig()
        self.adaptive = partition if partition is not None else AdaptivePartition()
        super().__init__(base.with_overrides(partition=self.adaptive))

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        self.adaptive.reset()
        super().reset(network, horizon, rng)

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        cache = self._cache
        super()._update(slot, feedback)
        assert self.log_w is not None and cache is not None
        # Feed this slot's *processed* observations to the tree; on splits,
        # every SCN's children start from the parent's learned weight.
        asn = feedback.assignment
        if len(asn) == 0:
            return
        observed: list[int] = []
        for m in np.unique(asn.scn):
            cov = cache.coverage[m]
            sel = asn.task[asn.scn == m]
            pos = np.searchsorted(cov, sel)
            observed.extend(cache.cubes[m][pos].tolist())
        for parent, children in self.adaptive.observe(np.asarray(observed)):
            for child in children:
                self.log_w[:, child] = self.log_w[:, parent]

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        for name, value in self.adaptive.state_dict().items():
            state[f"partition_{name}"] = value
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        self.adaptive.load_state_dict(
            {
                name: state[f"partition_{name}"]
                for name in (
                    "leaf_ids", "leaf_lows", "leaf_sides", "leaf_levels",
                    "leaf_counts", "next_id",
                )
            }
        )
