"""Reference single-agent Exp3.M (multiple-play adversarial bandit).

The textbook algorithm LFSC's per-SCN machinery is built from, in its pure
form: K fixed arms, choose exactly k per round via DepRound on the capped
exponential-weights probabilities, observe the chosen arms' rewards, update
with importance weighting.  It shares :func:`capped_probabilities` and
:func:`depround` with LFSC, so its textbook regret behaviour doubles as an
integration test of those kernels (``tests/core/test_exp3m.py`` checks that
it concentrates on the best k arms of a stochastic instance and beats the
uniform player).

This module is also the natural starting point for readers: LFSC = Exp3.M
per SCN + context hypercubes as arms + Lagrangian utility + cross-SCN greedy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.depround import depround
from repro.core.probability import capped_probabilities
from repro.utils.validation import check_positive, require

__all__ = ["Exp3M"]


@dataclass
class Exp3M:
    """Exp3.M over ``num_arms`` arms with ``plays`` selections per round.

    Parameters
    ----------
    num_arms:
        K — the number of arms.
    plays:
        k — how many arms are pulled each round (k < K).
    gamma:
        Exploration rate; ``None`` uses the horizon-optimal
        min(1, sqrt(K ln(K/k) / ((e−1) k T))) given ``horizon``.
    eta:
        Learning rate; ``None`` uses γ/K.
    horizon:
        Used only to derive γ when it is not given.
    """

    num_arms: int
    plays: int
    gamma: float | None = None
    eta: float | None = None
    horizon: int = 10_000
    log_w: np.ndarray = field(init=False)
    t: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        check_positive("num_arms", self.num_arms)
        check_positive("plays", self.plays)
        require(self.plays < self.num_arms, "need plays < num_arms")
        check_positive("horizon", self.horizon)
        if self.gamma is None:
            K, k, T = self.num_arms, self.plays, self.horizon
            ratio = max(K / k, np.e)
            self.gamma = float(
                min(1.0, np.sqrt(K * np.log(ratio) / ((np.e - 1.0) * k * T)))
            )
        require(0.0 < self.gamma <= 1.0, f"gamma in (0,1], got {self.gamma}")
        if self.eta is None:
            self.eta = self.gamma / self.num_arms
        check_positive("eta", self.eta)
        self.log_w = np.zeros(self.num_arms)
        self._last_p: np.ndarray | None = None

    def probabilities(self) -> np.ndarray:
        """Current per-arm selection probabilities (Σ = plays)."""
        w = np.exp(self.log_w - self.log_w.max())
        return capped_probabilities(np.maximum(w, 1e-300), self.plays, self.gamma).p

    def select(self, rng: np.random.Generator) -> np.ndarray:
        """Sample the round's arm set (indices, size == plays)."""
        p = self.probabilities()
        self._last_p = p
        mask = depround(p, rng)
        return np.flatnonzero(mask)

    def update(self, chosen: np.ndarray, rewards: np.ndarray) -> None:
        """Importance-weighted exponential update for the chosen arms.

        Parameters
        ----------
        chosen:
            The arm indices returned by :meth:`select`.
        rewards:
            Observed rewards in [0, 1], aligned with ``chosen``.
        """
        require(self._last_p is not None, "update() must follow select()")
        chosen = np.asarray(chosen, dtype=np.int64)
        rewards = np.asarray(rewards, dtype=float)
        require(chosen.shape == rewards.shape, "chosen and rewards must align")
        p = self._last_p
        # Capped arms (p == 1) were chosen deterministically: skip, as in
        # Alg. 3 line 12 / the original Exp3.M.
        uncapped = p[chosen] < 1.0 - 1e-12
        idx = chosen[uncapped]
        self.log_w[idx] += self.eta * rewards[uncapped] / p[idx]
        if np.abs(self.log_w.max()) > 50.0:
            self.log_w -= self.log_w.max()
        self._last_p = None
        self.t += 1

    def weight_shares(self) -> np.ndarray:
        """Normalized weights (diagnostic)."""
        w = np.exp(self.log_w - self.log_w.max())
        return w / w.sum()
