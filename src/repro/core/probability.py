"""Alg. 2 — capped exponential-weights selection probabilities.

Given the weights of the hypercubes containing SCN m's covered tasks, Alg. 2
produces a selection probability per task, mixing exploitation (proportional
to weight) with exploration (uniform γ/K term), exactly as in the Exp3.M
construction for bandits with multiple plays the paper builds on:

    p_i = c · [ (1−γ) · w̃_i / Σ_j w̃_j  +  γ / K ]            (Alg. 2 line 16)

where K = |D_{m,t}| and c is the per-SCN communication capacity.  Because a
probability cannot exceed 1, overly heavy tasks are *capped*: when
max_i w_i ≥ r · Σ_j w_j with r = (1/c − γ/K)/(1−γ), Alg. 2 computes the
threshold ê solving

    ê / ( ê·|{i : w_i ≥ ê}| + Σ_{w_i < ê} w_i ) = r            (Alg. 2 line 8)

and temporarily replaces every weight ≥ ê by ê, which makes p_i = 1 exactly
for the capped set S'.  Capped hypercubes are excluded from the weight update
(Alg. 3 line 12) — their probability was deterministic, so the importance-
weighted estimate carries no information.

The probabilities sum to c (or to K when K ≤ c, in which case every task is
selected with certainty and no randomization is needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = ["CappedProbabilities", "capped_probabilities", "cap_threshold"]

_EPS = 1e-15


@dataclass(frozen=True)
class CappedProbabilities:
    """Result of Alg. 2 for one SCN and one slot.

    Attributes
    ----------
    p:
        ``(K,)`` selection probability per covered task, each in (0, 1].
    capped:
        ``(K,)`` boolean mask — tasks whose weight hit the cap (p == 1);
        the paper's S' expressed per task.
    threshold:
        The cap value ê, or ``nan`` when no capping was necessary.
    """

    p: np.ndarray
    capped: np.ndarray
    threshold: float

    @property
    def expected_selected(self) -> float:
        """Σ_i p_i — equals min(c, K) by construction."""
        return float(self.p.sum())


def _cap_set(w: np.ndarray, ratio: float) -> tuple[float, np.ndarray]:
    """Solve the Exp3.M cap: the threshold ê and the exact capped index set.

    Walks k = 1, 2, ... over the weights in decreasing order; for top-k
    capped, ê_k = ratio·S_k/(1 − ratio·k) with S_k the suffix sum below the
    top k.  ê_k decreases in k; the walk stops at the first k whose next
    weight ws[k] no longer exceeds ê_k.  Membership is returned *by sorted
    position* (exactly k items), never by re-comparing against ê — with
    extreme weight spreads a float comparison can disagree with the k used
    in the equation, which would break Σp = c.

    Precondition: ``max(w) ≥ ratio·Σw`` (capping is needed).
    """
    order = np.argsort(-w, kind="stable")
    ws = w[order]
    K = len(ws)
    # suffix[k] = Σ_{j>=k} ws_j via reverse cumsum — never by subtraction
    # from the total, which cancels catastrophically when the tail weights
    # are many orders of magnitude below the head.
    suffix = np.concatenate([np.cumsum(ws[::-1])[::-1], [0.0]])
    k = 1
    e_hat = ratio * suffix[1] / (1.0 - ratio)
    while k < K and ratio * (k + 1) < 1.0 - _EPS and ws[k] > e_hat:
        k += 1
        e_hat = ratio * suffix[k] / (1.0 - ratio * k)
    capped = np.zeros(K, dtype=bool)
    capped[order[:k]] = True
    return float(e_hat), capped


def cap_threshold(weights: np.ndarray, ratio: float) -> float:
    """The Exp3.M cap value ê with ê/(ê·|capped| + Σ_{uncapped} w) = ratio.

    See :func:`_cap_set`; this public wrapper returns just the threshold.
    """
    e_hat, _ = _cap_set(np.asarray(weights, dtype=float), ratio)
    return e_hat


def capped_probabilities(
    weights: np.ndarray, capacity: int, gamma: float
) -> CappedProbabilities:
    """Compute Alg. 2's selection probabilities for one SCN.

    Parameters
    ----------
    weights:
        ``(K,)`` positive per-task weights — each task carries the weight of
        the hypercube its context falls into (shared cubes repeat).
    capacity:
        The communication capacity c (expected number of selections).
    gamma:
        Exploration rate γ ∈ (0, 1].

    Returns
    -------
    CappedProbabilities
        with ``p.sum() == min(c, K)`` up to floating-point error.
    """
    w = np.asarray(weights, dtype=float)
    require(w.ndim == 1, f"weights must be 1-D, got shape {w.shape}")
    check_positive("capacity", capacity)
    require(0.0 < gamma <= 1.0, f"gamma must be in (0, 1], got {gamma}")
    K = w.shape[0]
    if K == 0:
        empty = np.empty(0)
        return CappedProbabilities(p=empty, capped=np.empty(0, dtype=bool), threshold=np.nan)
    require(np.all(w > 0.0), "weights must be strictly positive")

    if K <= capacity:
        # Fewer candidates than capacity: select everything deterministically.
        return CappedProbabilities(
            p=np.ones(K), capped=np.ones(K, dtype=bool), threshold=np.nan
        )

    if gamma >= 1.0:
        # Pure exploration: uniform probabilities, no exploitation term.
        p = np.full(K, capacity / K)
        return CappedProbabilities(p=p, capped=np.zeros(K, dtype=bool), threshold=np.nan)

    ratio = (1.0 / capacity - gamma / K) / (1.0 - gamma)
    total = w.sum()
    if w.max() >= ratio * total:
        e_hat, capped = _cap_set(w, ratio)
        w_tilde = np.where(capped, e_hat, w)
        threshold = e_hat
    else:
        capped = np.zeros(K, dtype=bool)
        w_tilde = w
        threshold = np.nan

    p = capacity * ((1.0 - gamma) * w_tilde / w_tilde.sum() + gamma / K)
    # Guard round-off: probabilities live in (0, 1].
    p = np.clip(p, _EPS, 1.0)
    return CappedProbabilities(p=p, capped=capped, threshold=threshold)
