"""Alg. 2 — capped exponential-weights selection probabilities.

Given the weights of the hypercubes containing SCN m's covered tasks, Alg. 2
produces a selection probability per task, mixing exploitation (proportional
to weight) with exploration (uniform γ/K term), exactly as in the Exp3.M
construction for bandits with multiple plays the paper builds on:

    p_i = c · [ (1−γ) · w̃_i / Σ_j w̃_j  +  γ / K ]            (Alg. 2 line 16)

where K = |D_{m,t}| and c is the per-SCN communication capacity.  Because a
probability cannot exceed 1, overly heavy tasks are *capped*: when
max_i w_i ≥ r · Σ_j w_j with r = (1/c − γ/K)/(1−γ), Alg. 2 computes the
threshold ê solving

    ê / ( ê·|{i : w_i ≥ ê}| + Σ_{w_i < ê} w_i ) = r            (Alg. 2 line 8)

and temporarily replaces every weight ≥ ê by ê, which makes p_i = 1 exactly
for the capped set S'.  Capped hypercubes are excluded from the weight update
(Alg. 3 line 12) — their probability was deterministic, so the importance-
weighted estimate carries no information.

The probabilities sum to c (or to K when K ≤ c, in which case every task is
selected with certainty and no randomization is needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = [
    "CappedProbabilities",
    "capped_probabilities",
    "capped_probabilities_batch",
    "capped_probabilities_batch_into",
    "cap_threshold",
]

_EPS = 1e-15


@dataclass(frozen=True)
class CappedProbabilities:
    """Result of Alg. 2 for one SCN and one slot.

    Attributes
    ----------
    p:
        ``(K,)`` selection probability per covered task, each in (0, 1].
    capped:
        ``(K,)`` boolean mask — tasks whose weight hit the cap (p == 1);
        the paper's S' expressed per task.
    threshold:
        The cap value ê, or ``nan`` when no capping was necessary.
    """

    p: np.ndarray
    capped: np.ndarray
    threshold: float

    @property
    def expected_selected(self) -> float:
        """Σ_i p_i — equals min(c, K) by construction."""
        return float(self.p.sum())


def _cap_set(w: np.ndarray, ratio: float) -> tuple[float, np.ndarray]:
    """Solve the Exp3.M cap: the threshold ê and the exact capped index set.

    Walks k = 1, 2, ... over the weights in decreasing order; for top-k
    capped, ê_k = ratio·S_k/(1 − ratio·k) with S_k the suffix sum below the
    top k.  ê_k decreases in k; the walk stops at the first k whose next
    weight ws[k] no longer exceeds ê_k.  Membership is returned *by sorted
    position* (exactly k items), never by re-comparing against ê — with
    extreme weight spreads a float comparison can disagree with the k used
    in the equation, which would break Σp = c.

    Precondition: ``max(w) ≥ ratio·Σw`` (capping is needed).
    """
    order = np.argsort(-w, kind="stable")
    ws = w[order]
    K = len(ws)
    # suffix[k] = Σ_{j>=k} ws_j via reverse cumsum — never by subtraction
    # from the total, which cancels catastrophically when the tail weights
    # are many orders of magnitude below the head.
    suffix = np.concatenate([np.cumsum(ws[::-1])[::-1], [0.0]])
    k = 1
    e_hat = ratio * suffix[1] / (1.0 - ratio)
    while k < K and ratio * (k + 1) < 1.0 - _EPS and ws[k] > e_hat:
        k += 1
        e_hat = ratio * suffix[k] / (1.0 - ratio * k)
    capped = np.zeros(K, dtype=bool)
    capped[order[:k]] = True
    return float(e_hat), capped


def _cap_set_sorted(ws: np.ndarray, ratio: float) -> tuple[float, int]:
    """Cap solve on descending-sorted weights: (ê, |capped|).

    The same walk as :func:`_cap_set` (identical suffix sums and scalar
    formula per k, hence bit-identical thresholds), operating on plain
    Python floats: the walk usually stops after a handful of steps, so at
    the K ≲ 100 segment sizes the batched engine sees, scalar iteration
    beats materializing every candidate ê_k as vectors.

    Precondition: ``ws`` sorted descending, ``len(ws) >= 2``, capping needed.
    """
    K = len(ws)
    # suffix[k] = Σ_{j>=k} ws_j via reverse cumsum — never by subtraction
    # from the total, which cancels catastrophically when the tail weights
    # are many orders of magnitude below the head.
    suffix = np.cumsum(ws[::-1])[::-1].tolist()
    wl = ws.tolist()
    k = 1
    e_hat = ratio * suffix[1] / (1.0 - ratio)
    while k < K and ratio * (k + 1) < 1.0 - _EPS and wl[k] > e_hat:
        k += 1
        e_hat = ratio * (suffix[k] if k < K else 0.0) / (1.0 - ratio * k)
    return float(e_hat), k


def cap_threshold(weights: np.ndarray, ratio: float) -> float:
    """The Exp3.M cap value ê with ê/(ê·|capped| + Σ_{uncapped} w) = ratio.

    See :func:`_cap_set`; this public wrapper returns just the threshold.
    """
    e_hat, _ = _cap_set(np.asarray(weights, dtype=float), ratio)
    return e_hat


def capped_probabilities(
    weights: np.ndarray, capacity: int, gamma: float
) -> CappedProbabilities:
    """Compute Alg. 2's selection probabilities for one SCN.

    Parameters
    ----------
    weights:
        ``(K,)`` positive per-task weights — each task carries the weight of
        the hypercube its context falls into (shared cubes repeat).
    capacity:
        The communication capacity c (expected number of selections).
    gamma:
        Exploration rate γ ∈ (0, 1].

    Returns
    -------
    CappedProbabilities
        with ``p.sum() == min(c, K)`` up to floating-point error.
    """
    w = np.asarray(weights, dtype=float)
    require(w.ndim == 1, f"weights must be 1-D, got shape {w.shape}")
    check_positive("capacity", capacity)
    require(0.0 < gamma <= 1.0, f"gamma must be in (0, 1], got {gamma}")
    K = w.shape[0]
    if K == 0:
        empty = np.empty(0)
        return CappedProbabilities(p=empty, capped=np.empty(0, dtype=bool), threshold=np.nan)
    require(np.all(w > 0.0), "weights must be strictly positive")

    if K <= capacity:
        # Fewer candidates than capacity: select everything deterministically.
        return CappedProbabilities(
            p=np.ones(K), capped=np.ones(K, dtype=bool), threshold=np.nan
        )

    if gamma >= 1.0:
        # Pure exploration: uniform probabilities, no exploitation term.
        p = np.full(K, capacity / K)
        return CappedProbabilities(p=p, capped=np.zeros(K, dtype=bool), threshold=np.nan)

    ratio = (1.0 / capacity - gamma / K) / (1.0 - gamma)
    total = w.sum()
    if w.max() >= ratio * total:
        e_hat, capped = _cap_set(w, ratio)
        w_tilde = np.where(capped, e_hat, w)
        threshold = e_hat
    else:
        capped = np.zeros(K, dtype=bool)
        w_tilde = w
        threshold = np.nan

    p = capacity * ((1.0 - gamma) * w_tilde / w_tilde.sum() + gamma / K)
    # Guard round-off: probabilities live in (0, 1].
    p = np.clip(p, _EPS, 1.0)
    return CappedProbabilities(p=p, capped=capped, threshold=threshold)


@dataclass(frozen=True)
class CappedProbabilitiesBatch:
    """Alg. 2's output for every SCN of a slot, in flat edge-list layout.

    Edges of SCN m occupy positions ``offsets[m]:offsets[m+1]`` of ``p`` and
    ``capped``; :meth:`segment` recovers the per-SCN
    :class:`CappedProbabilities` view (zero-copy).
    """

    p: np.ndarray
    capped: np.ndarray
    thresholds: np.ndarray
    offsets: np.ndarray

    @property
    def num_segments(self) -> int:
        return int(self.offsets.shape[0]) - 1

    def segment(self, m: int) -> CappedProbabilities:
        """SCN ``m``'s probabilities as a view into the flat arrays."""
        s, e = int(self.offsets[m]), int(self.offsets[m + 1])
        return CappedProbabilities(
            p=self.p[s:e], capped=self.capped[s:e], threshold=float(self.thresholds[m])
        )


def capped_probabilities_batch(
    weights: np.ndarray, offsets: np.ndarray, capacity: int, gamma: float
) -> CappedProbabilitiesBatch:
    """Alg. 2 for all M SCNs of a slot in one shot.

    Bit-for-bit equivalent to calling :func:`capped_probabilities` per SCN on
    ``weights[offsets[m]:offsets[m+1]]``: the per-edge arithmetic is batched
    over the whole edge list, while each segment's normalizing sum is taken
    with the same ``np.sum`` (pairwise summation) the per-SCN path uses, so
    the probabilities agree to the last ulp — the equivalence the batched
    LFSC engine's A/B tests rely on.

    Parameters
    ----------
    weights:
        ``(E,)`` concatenation of every SCN's per-task weights.
    offsets:
        ``(M+1,)`` segment boundaries: SCN m's weights live at
        ``weights[offsets[m]:offsets[m+1]]``.  Empty segments are allowed.
    capacity, gamma:
        As in :func:`capped_probabilities`.
    """
    w = np.asarray(weights, dtype=float)
    require(w.ndim == 1, f"weights must be 1-D, got shape {w.shape}")
    off = np.asarray(offsets, dtype=np.int64)
    require(off.ndim == 1 and off.shape[0] >= 1, "offsets must be 1-D and non-empty")
    require(
        off[0] == 0 and off[-1] == w.shape[0] and np.all(np.diff(off) >= 0),
        "offsets must start at 0, end at len(weights), and be non-decreasing",
    )
    check_positive("capacity", capacity)
    require(0.0 < gamma <= 1.0, f"gamma must be in (0, 1], got {gamma}")
    E = w.shape[0]
    M = off.shape[0] - 1
    if E:
        require(np.all(w > 0.0), "weights must be strictly positive")

    lengths = np.diff(off)
    thresholds = np.full(M, np.nan)
    rand = lengths > capacity
    all_rand = bool(rand.all()) and E > 0

    p = np.empty(E)
    capped = np.zeros(E, dtype=bool)
    if not all_rand:
        # Fewer candidates than capacity: select everything deterministically.
        # (At the paper's operating point every SCN covers more tasks than
        # its capacity, so the common case skips these edge-list scatters.)
        det = (lengths > 0) & (lengths <= capacity)
        det_edges = np.repeat(det, lengths)
        p[det_edges] = 1.0
        capped[det_edges] = True
        if not np.any(rand):
            return CappedProbabilitiesBatch(
                p=p, capped=capped, thresholds=thresholds, offsets=off
            )

    rand_edges = slice(None) if all_rand else np.repeat(rand, lengths)
    if all_rand:
        K_edge = np.repeat(lengths, lengths).astype(float)
    else:
        K_edge = np.repeat(lengths, lengths)[rand_edges].astype(float)

    if gamma >= 1.0:
        # Pure exploration: uniform probabilities, no exploitation term.
        p[rand_edges] = capacity / K_edge
        return CappedProbabilitiesBatch(p=p, capped=capped, thresholds=thresholds, offsets=off)

    rand_idx = np.flatnonzero(rand)
    K_seg = lengths[rand_idx].astype(float)
    ratio_seg = ((1.0 / capacity - gamma / K_seg) / (1.0 - gamma)).tolist()
    # Segment maxima are order-independent reductions, so one reduceat over
    # the full edge list is exact; empty segments produce garbage lanes that
    # the rand_idx filter below never reads.
    seg_start = np.minimum(off[:-1], E - 1)
    seg_max = np.maximum.reduceat(w, seg_start).tolist()
    bounds = off.tolist()

    # Per-edge arithmetic is batched below; only the per-segment normalizing
    # sum stays in this short loop — np.sum's pairwise summation over each
    # segment matches the reference path bit-for-bit, which segment tricks
    # like reduceat would not.
    w_tilde = w.copy()
    denom = np.empty(rand_idx.size)
    for j, m in enumerate(rand_idx.tolist()):
        s, e = bounds[m], bounds[m + 1]
        seg = w[s:e]
        total = seg.sum()
        ratio = ratio_seg[j]
        if seg_max[m] >= ratio * total:
            order = np.argsort(-seg, kind="stable")
            e_hat, k = _cap_set_sorted(seg[order], ratio)
            cap_mask = np.zeros(e - s, dtype=bool)
            cap_mask[order[:k]] = True
            capped[s:e] = cap_mask
            w_tilde[s:e] = np.where(cap_mask, e_hat, seg)
            denom[j] = w_tilde[s:e].sum()
            thresholds[m] = e_hat
        else:
            denom[j] = total

    denom_edge = np.repeat(denom, lengths[rand_idx])
    if all_rand:
        p = capacity * ((1.0 - gamma) * w_tilde / denom_edge + gamma / K_edge)
    else:
        p[rand_edges] = capacity * (
            (1.0 - gamma) * w_tilde[rand_edges] / denom_edge + gamma / K_edge
        )
    # Guard round-off: probabilities live in (0, 1].
    np.clip(p, _EPS, 1.0, out=p)
    return CappedProbabilitiesBatch(p=p, capped=capped, thresholds=thresholds, offsets=off)


def capped_probabilities_batch_into(
    weights: np.ndarray,
    offsets: np.ndarray,
    capacity: int,
    gamma: float,
    *,
    lengths: np.ndarray,
    lengths_f: np.ndarray,
    bounds: list[int],
    seg_start: np.ndarray,
    edge_scn: np.ndarray,
    seg_len_edge: np.ndarray,
    out_p: np.ndarray,
    out_capped: np.ndarray,
    out_wtilde: np.ndarray,
    scratch: np.ndarray,
) -> CappedProbabilitiesBatch:
    """Alg. 2 batch kernel writing into preallocated edge-list arenas.

    Bit-for-bit equivalent to :func:`capped_probabilities_batch` (every
    elementwise stage below performs the identical IEEE operation on the
    identical operands; gathers via ``np.take`` replace the equivalent
    ``np.repeat`` broadcasts), but with the per-slot edge-list topology
    (``lengths``/``bounds``/``seg_start``/``edge_scn``/``seg_len_edge``,
    see :class:`repro.env.window.SlotEdges`) precomputed by the windowed
    pipeline, and the three output arrays plus one scratch buffer supplied
    by the caller's arena.

    The fast path covers the batched engine's operating regime — every
    segment longer than the capacity (all segments randomize) and
    ``gamma < 1``.  Anything else delegates to the generic kernel, which
    returns freshly allocated arrays (identical values; callers must not
    assume the result aliases the arena).

    The returned views into ``out_*`` are valid until the arena's next use
    (the policy's next ``select``).
    """
    w = weights
    E = w.shape[0]
    M = lengths.shape[0]
    if gamma >= 1.0 or E == 0 or bool((lengths <= capacity).any()):
        return capped_probabilities_batch(w, offsets, capacity, gamma)

    thresholds = np.full(M, np.nan)
    ratio_seg = ((1.0 / capacity - gamma / lengths_f) / (1.0 - gamma)).tolist()
    seg_max = np.maximum.reduceat(w, seg_start).tolist()

    np.copyto(out_wtilde, w)
    out_capped[:] = False
    denom = np.empty(M)
    for m in range(M):
        s, e = bounds[m], bounds[m + 1]
        seg = w[s:e]
        total = seg.sum()
        ratio = ratio_seg[m]
        if seg_max[m] >= ratio * total:
            order = np.argsort(-seg, kind="stable")
            e_hat, k = _cap_set_sorted(seg[order], ratio)
            cap_mask = np.zeros(e - s, dtype=bool)
            cap_mask[order[:k]] = True
            out_capped[s:e] = cap_mask
            out_wtilde[s:e] = np.where(cap_mask, e_hat, seg)
            denom[m] = out_wtilde[s:e].sum()
            thresholds[m] = e_hat
        else:
            denom[m] = total

    # p = c · ((1−γ)·w̃/denom + γ/K), staged through the arena: each stage
    # is the same scalar-array ufunc the one-shot expression evaluates.
    p = out_p
    np.multiply(out_wtilde, 1.0 - gamma, out=p)
    np.take(denom, edge_scn, out=scratch)
    np.divide(p, scratch, out=p)
    np.divide(gamma, seg_len_edge, out=scratch)
    np.add(p, scratch, out=p)
    np.multiply(p, capacity, out=p)
    np.clip(p, _EPS, 1.0, out=p)
    return CappedProbabilitiesBatch(
        p=p, capped=out_capped, thresholds=thresholds, offsets=offsets
    )
