"""The shared replay-evaluation harness: record a slot stream once, replay it.

Comparing learners is noisy when every variant re-generates its own
environment.  The harness splits the run in two:

- :func:`record_stream` draws the config's slot stream **once** — through
  the windowed precompute (:func:`repro.env.window.precompute_window`) when
  the workload allows it, so every recorded slot already carries its flat
  coverage edge list and ground-truth cells — and freezes it as a
  :class:`RecordedStream`.
- :func:`replay` runs any policy over the frozen slots via a
  :class:`ReplayWorkload`, a workload that *never draws*: it hands back the
  recorded slots verbatim.  Realization, channel, and policy streams are
  derived from the config seed exactly as in a live run (they live in
  spawn-key namespaces disjoint from the workload stream — stream contract
  v2), so a default replay is **bit-identical to a live run** of the same
  config; the only thing saved is the slot-generation work, once per
  variant instead of once per run.

Hyperparameter variants add one twist: parameterized specs such as
``linucb(alpha=0.5)`` and ``linucb(alpha=2.0)`` share the policy *name*
``linucb``, so under the frozen contract they would share one policy
stream.  That is exactly right for A/B-ing hyperparameters (the exploration
randomness is held fixed), but grid evaluations sometimes want independent
exploration noise per variant.  Passing ``variant=<label>`` to
:func:`replay` re-keys the policy stream into the dedicated ``LEARNED``
spawn-key namespace (:func:`repro.utils.rng.learned_seed_sequence`) under
that label — disjoint from every replication/env/policy/fleet stream by
construction, and deterministic per (seed, label).

:func:`replay_grid` strings the two together: one recorded stream, many
policy specs, one result per spec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.simulator import DEFAULT_WINDOW, Simulation, SimulationResult
from repro.env.window import PrecomputedSlot, precompute_window
from repro.env.workload import SlotWorkload, Workload
from repro.scenarios.wrappers import PolicyWrapper
from repro.utils.rng import RngFactory, learned_seed_sequence
from repro.utils.validation import check_positive

__all__ = [
    "RecordedStream",
    "ReplayError",
    "ReplayWorkload",
    "record_stream",
    "replay",
    "replay_grid",
]


class ReplayError(ValueError):
    """A replay request inconsistent with the recorded stream."""


@dataclass(frozen=True)
class RecordedStream:
    """A frozen slot stream: one config's workload draws, made immutable.

    Attributes
    ----------
    config:
        The :class:`~repro.experiments.runner.ExperimentConfig` the stream
        was recorded from (network constants, seeds, scenario).
    horizon:
        Number of recorded slots.
    slots:
        ``slots[t]`` is slot t — a :class:`~repro.env.window.PrecomputedSlot`
        carrying the flat edge list (and ground-truth cells) whenever the
        workload was windowable at record time.
    """

    config: object
    horizon: int
    slots: tuple[PrecomputedSlot, ...]

    @property
    def num_scns(self) -> int:
        return self.slots[0].num_scns if self.slots else 0

    def __len__(self) -> int:
        return len(self.slots)


def record_stream(cfg, *, horizon: int | None = None, window: int = DEFAULT_WINDOW) -> RecordedStream:
    """Draw and freeze ``cfg``'s slot stream (workload randomness only).

    The workload stream is consumed exactly as a live run consumes it
    (same :class:`~repro.utils.rng.RngFactory` derivation, same per-slot
    draw order), so the recorded slots equal the slots any live run of
    ``cfg`` would see.  Windowable workloads are recorded through
    :func:`~repro.env.window.precompute_window` in chunks of ``window``
    slots — each recorded slot then carries its precomputed edge list and
    truth cells, which the learned policies' batch inference path picks up
    for free at replay time.  Non-windowable workloads (feedback-coupled
    wrappers) fall back to plain per-slot generation.
    """
    from repro.experiments.runner import build_truth, build_workload

    if horizon is None:
        horizon = cfg.horizon
    check_positive("horizon", horizon)
    check_positive("window", window)
    workload = build_workload(cfg)
    reset = getattr(workload, "reset", None)
    if callable(reset):
        reset()
    truth = build_truth(cfg)
    rng = RngFactory(cfg.seed).env("workload")
    slots: list[PrecomputedSlot] = []
    if getattr(workload, "windowable", False):
        cells_fn = getattr(truth, "context_cells", None)
        t0 = 0
        while t0 < horizon:
            count = min(window, horizon - t0)
            win = precompute_window(
                workload, t0, count, rng, partition=None, context_cells=cells_fn
            )
            slots.extend(win.slots)
            t0 += count
    else:
        for t in range(horizon):
            raw = workload.slot(t, rng)
            slots.append(
                PrecomputedSlot(t=raw.t, tasks=raw.tasks, coverage=raw.coverage)
            )
    return RecordedStream(config=cfg, horizon=int(horizon), slots=tuple(slots))


class ReplayWorkload(Workload):
    """A workload that replays a :class:`RecordedStream` verbatim.

    ``slot`` never touches the RNG it is handed — the draws already happened
    at record time, on the same stream a live run would use.  Deliberately
    *not* windowable: the slots are already precomputed, so the per-slot
    driver path reads them straight out of the tuple (and their attached
    edge lists keep every windowed fast path alive).
    """

    windowable = False

    def __init__(self, stream: RecordedStream) -> None:
        self.stream = stream
        self.num_scns = stream.num_scns

    def slot(self, t: int, rng: np.random.Generator) -> SlotWorkload:
        if not 0 <= t < len(self.stream.slots):
            raise ReplayError(
                f"slot {t} outside the recorded stream (recorded horizon "
                f"{self.stream.horizon})"
            )
        return self.stream.slots[t]

    def max_coverage_size(self) -> int:
        return max(
            (int(len(c)) for s in self.stream.slots for c in s.coverage),
            default=0,
        )


class _VariantStream(PolicyWrapper):
    """Re-key the wrapped policy's RNG into the ``LEARNED`` namespace.

    Transparent like every :class:`~repro.scenarios.wrappers.PolicyWrapper`
    (``name`` and all duck-typed attributes pass through), except that
    ``reset`` substitutes a generator derived from
    :func:`~repro.utils.rng.learned_seed_sequence` under the variant label —
    giving each grid variant its own exploration stream, disjoint from all
    frozen-contract streams, deterministic per (seed, label).
    """

    def __init__(self, base, seed, label: str) -> None:
        super().__init__(base)
        self._seed = seed
        self._label = str(label)

    def reset(self, network, horizon, rng) -> None:
        variant_rng = np.random.default_rng(
            learned_seed_sequence(self._seed, self._label)
        )
        self.base.reset(network, horizon, variant_rng)


def replay(
    stream: RecordedStream,
    policy,
    *,
    variant: str | None = None,
    horizon: int | None = None,
    record_expected: bool = True,
) -> SimulationResult:
    """Run ``policy`` over the recorded slots.

    Parameters
    ----------
    policy:
        A registry spec (``"linucb"``, ``"linucb(alpha=0.5)"``, a
        :class:`~repro.policies.PolicySpec`) resolved through
        :func:`repro.policies.make_policy` — scenario wrappers included —
        or an already-built policy object (anything with ``select``).
    variant:
        When set, the policy's RNG is re-derived in the ``LEARNED``
        spawn-key namespace under this label (see :class:`_VariantStream`).
        When None (default) the replay is bit-identical to a live
        ``Simulation.run`` of ``stream.config``.
    horizon:
        Replay only the first ``horizon`` recorded slots (default: all).
    """
    import repro.policies as policy_registry

    from repro.experiments.runner import build_channel, build_truth

    cfg = stream.config
    if horizon is None:
        horizon = stream.horizon
    if horizon > stream.horizon:
        raise ReplayError(
            f"replay horizon {horizon} exceeds the recorded horizon {stream.horizon}"
        )
    truth = build_truth(cfg)
    if not hasattr(policy, "select"):
        policy = policy_registry.make_policy(policy, cfg, truth)
    if variant is not None:
        policy = _VariantStream(policy, cfg.seed, variant)
    sim = Simulation(
        network=cfg.network(),
        workload=ReplayWorkload(stream),
        truth=truth,
        channel=build_channel(cfg),
        seed=cfg.seed,
    )
    return sim.run(policy, horizon, record_expected=record_expected)


def replay_grid(
    stream: RecordedStream,
    specs,
    *,
    variant_streams: bool = False,
    record_expected: bool = True,
) -> dict[str, SimulationResult]:
    """Replay every spec in ``specs`` over one recorded stream.

    Returns ``{canonical spec label: result}`` in spec order.  With
    ``variant_streams=True`` each spec's policy RNG is re-keyed under its
    own label in the ``LEARNED`` namespace (independent exploration noise
    per variant); the default shares streams by policy *name*, the frozen
    contract's A/B semantics (hyperparameter variants face identical
    exploration randomness).
    """
    import repro.policies as policy_registry

    out: dict[str, SimulationResult] = {}
    for spec in specs:
        label = str(policy_registry.normalize_policy_arg(spec))
        if label in out:
            raise ReplayError(f"duplicate spec in replay grid: {label!r}")
        out[label] = replay(
            stream,
            spec,
            variant=label if variant_streams else None,
            record_expected=record_expected,
        )
    return out
