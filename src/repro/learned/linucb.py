"""Linear contextual scorers: LinUCB and linear Thompson sampling.

Each SCN m keeps an independent ridge regression of the compound reward g on
the bias-augmented task context x = [1, φ] ∈ R⁴:

    A_m = λI + Σ x xᵀ,    b_m = Σ g x,    θ_m = A_m⁻¹ b_m

LinUCB scores edge (m, i) by the classic optimistic index

    score = θ_mᵀ x_i + α · sqrt(x_iᵀ A_m⁻¹ x_i)

and linear Thompson replaces the width with a posterior draw
θ̃_m ~ N(θ_m, scale²·A_m⁻¹) per slot.  The scores feed the *existing* Alg. 4
greedy assignment (:func:`repro.core.greedy.greedy_select_edges`) unchanged
— the learner proposes, the solver disposes.

Everything is vectorized over the slot's flat edge list (the batch inference
path of :mod:`repro.learned.features`): one batched (M, 4, 4) inverse, one
einsum for the means, one for the widths.  The per-slot and windowed paths
run the identical arithmetic on identical edge arrays, so trajectories are
bit-identical across window sizes (``tests/learned`` pins this).

Checkpointing: ``A``/``b`` (plus the base slot counter) fully determine the
learner, so :meth:`checkpoint_state`/:meth:`restore_checkpoint_state`
round-trip through the ``repro-checkpoint/v1`` service path bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.greedy import greedy_select_edges
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.learned.features import LINEAR_DIM, edge_lists, linear_features
from repro.obs import runtime as obs_runtime
from repro.utils.validation import check_positive

__all__ = ["LinUCBPolicy", "LinThompsonPolicy"]


class _LinearScorer(OffloadingPolicy):
    """Shared per-SCN ridge-regression plumbing for the linear tier."""

    def __init__(self, *, l2: float = 1.0) -> None:
        super().__init__()
        check_positive("l2", l2)
        self.l2 = float(l2)
        self.A: np.ndarray | None = None  # (M, d, d) Gram matrices
        self.b: np.ndarray | None = None  # (M, d) response vectors
        self._cache: tuple[int, np.ndarray, np.ndarray, np.ndarray] | None = None

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        d = LINEAR_DIM
        self.A = np.tile(self.l2 * np.eye(d), (network.num_scns, 1, 1))
        self.b = np.zeros((network.num_scns, d))
        self._cache = None

    # -- scoring hook --------------------------------------------------------

    def _edge_scores(
        self,
        scn: np.ndarray,
        X: np.ndarray,
        theta: np.ndarray,
        A_inv: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        assert self.A is not None and self.b is not None
        with obs_runtime.span("learned.linear.score"):
            scn, task, n = edge_lists(slot)
            X = linear_features(slot.tasks.contexts, task)
            # Batched tiny solves: one LAPACK call for all M (4, 4) systems.
            A_inv = np.linalg.inv(self.A)
            theta = np.einsum("mij,mj->mi", A_inv, self.b)
            weights = self._edge_scores(scn, X, theta, A_inv)
        self._cache = (slot.t, scn, task, X)
        with obs_runtime.span("learned.linear.greedy"):
            return greedy_select_edges(
                scn, task, weights, network.num_scns, network.capacity, n
            )

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        assert self.A is not None and self.b is not None
        cache = self._cache
        if cache is None or cache[0] != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        self._cache = None
        asn = feedback.assignment
        if len(asn) == 0:
            return
        _, scn, task, X = cache
        # The edge key (scn·n + task) is sorted — SCN-major segments, tasks
        # sorted within — so each assigned pair's cached feature row is one
        # searchsorted away.
        n = len(slot.tasks)
        key = scn * np.int64(n) + task
        rows = np.searchsorted(key, asn.scn * np.int64(n) + asn.task)
        Xa = X[rows]
        g = feedback.g
        for m in np.unique(asn.scn):
            mask = asn.scn == m
            xm = Xa[mask]
            self.A[m] += xm.T @ xm
            self.b[m] += g[mask] @ xm

    # -- checkpoint/restore ---------------------------------------------------

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        assert self.A is not None and self.b is not None
        state["A"] = self.A.copy()
        state["b"] = self.b.copy()
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        assert self.A is not None and self.b is not None
        A = np.asarray(state["A"], dtype=np.float64)
        b = np.asarray(state["b"], dtype=np.float64)
        if A.shape != self.A.shape or b.shape != self.b.shape:
            raise ValueError(
                f"linear state shape mismatch: snapshot A{A.shape}/b{b.shape}, "
                f"expected A{self.A.shape}/b{self.b.shape}"
            )
        self.A = A.copy()
        self.b = b.copy()


class LinUCBPolicy(_LinearScorer):
    """LinUCB over task contexts, coordinated by the Alg. 4 greedy solver.

    Parameters
    ----------
    alpha:
        Width multiplier of the optimistic index (exploration strength).
    l2:
        Ridge regularizer λ of the per-SCN Gram matrices.
    """

    name = "linucb"

    def __init__(self, *, alpha: float = 1.0, l2: float = 1.0) -> None:
        super().__init__(l2=l2)
        check_positive("alpha", alpha)
        self.alpha = float(alpha)

    def _edge_scores(self, scn, X, theta, A_inv):
        mean = np.einsum("ej,ej->e", X, theta[scn])
        width = np.sqrt(np.einsum("ei,eij,ej->e", X, A_inv[scn], X))
        return mean + self.alpha * width


class LinThompsonPolicy(_LinearScorer):
    """Linear Thompson sampling: one posterior draw θ̃_m per SCN per slot.

    Parameters
    ----------
    scale:
        Posterior scale v: θ̃_m ~ N(θ_m, v²·A_m⁻¹).
    l2:
        Ridge regularizer λ.
    """

    name = "linthompson"

    def __init__(self, *, scale: float = 0.3, l2: float = 1.0) -> None:
        super().__init__(l2=l2)
        check_positive("scale", scale)
        self.scale = float(scale)

    def _edge_scores(self, scn, X, theta, A_inv):
        # One standard-normal block per slot regardless of the edge count, so
        # the stream position is a pure function of the slot index.
        z = self.rng.standard_normal(theta.shape)
        L = np.linalg.cholesky(A_inv)
        theta_tilde = theta + self.scale * np.einsum("mij,mj->mi", L, z)
        return np.einsum("ej,ej->e", X, theta_tilde[scn])
