"""The learned-policy tier: contextual scorers over the Alg. 4 solver.

Every policy here follows the "learner proposes, solver disposes" template:
the learner emits one score per (WD, SCN) coverage edge, and the *existing*
Alg. 4 greedy assignment (:mod:`repro.core.greedy`, native kernel included)
turns the scores into a feasible offloading decision — so comparisons with
LFSC isolate the learning rule, not the combinatorial layer.

- :mod:`repro.learned.linucb` — LinUCB and linear Thompson sampling, per-SCN
  ridge regression over the raw task contexts of :mod:`repro.env.contexts`;
- :mod:`repro.learned.dqn` — a pure-numpy DQN-style controller (2-layer MLP,
  replay buffer, target network, no new dependencies);
- :mod:`repro.learned.replay` — the shared replay-evaluation harness:
  record one environment slot stream via the windowed precompute, replay it
  across learners and hyperparameter variants deterministically under the
  ``LEARNED`` RNG namespace (stream contract v2 extension);
- :mod:`repro.learned.features` — the batch inference path: per-edge feature
  matrices built straight from the window-precomputed flat edge lists.

All three policies are registered in :mod:`repro.policies` under the specs
``linucb``, ``linthompson``, and ``dqn``.
"""

from repro.learned.dqn import DQNPolicy
from repro.learned.features import edge_lists, linear_features
from repro.learned.linucb import LinThompsonPolicy, LinUCBPolicy
from repro.learned.replay import (
    RecordedStream,
    ReplayError,
    ReplayWorkload,
    record_stream,
    replay,
    replay_grid,
)

__all__ = [
    "DQNPolicy",
    "LinThompsonPolicy",
    "LinUCBPolicy",
    "RecordedStream",
    "ReplayError",
    "ReplayWorkload",
    "edge_lists",
    "linear_features",
    "record_stream",
    "replay",
    "replay_grid",
]
