"""Per-edge feature extraction for the learned tier (batch inference path).

Learned policies score every coverage edge (SCN m, task i) of a slot at
once.  The feature matrices here are built straight from the flat edge
arrays the windowed precompute already carries
(:class:`repro.env.window.SlotEdges` — one gather per slot instead of a
per-SCN Python loop), so learned policies ride the PR 4 windowed pipeline at
full speed.  On plain per-slot slots the same edge layout is rebuilt from
the coverage lists in the *same order* (SCN-major, tasks in coverage order),
which keeps windowed and per-slot trajectories bit-identical: identical
inputs into identical vectorized arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.env.workload import SlotWorkload

__all__ = ["edge_lists", "linear_features", "LINEAR_DIM"]

#: Linear feature dimension: bias + the 3 normalized context coordinates.
LINEAR_DIM = 4


def edge_lists(slot: SlotWorkload) -> tuple[np.ndarray, np.ndarray, int]:
    """The slot's flat coverage edge list ``(scn, task, num_tasks)``.

    Windowed slots hand back their precomputed
    :class:`~repro.env.window.SlotEdges` arrays (zero cost); per-slot slots
    rebuild the identical SCN-major layout from the coverage lists.  The
    synthetic workloads emit sorted coverage, so both paths produce the same
    edge order — the property the bit-equivalence tests pin down.
    """
    n = len(slot.tasks)
    edges = getattr(slot, "edges", None)
    if edges is not None and edges.num_tasks == n:
        return edges.scn, edges.task, n
    coverage = [np.asarray(c, dtype=np.int64) for c in slot.coverage]
    lengths = np.fromiter(
        (c.shape[0] for c in coverage), dtype=np.int64, count=len(coverage)
    )
    task = np.concatenate(coverage) if coverage else np.empty(0, np.int64)
    scn = np.repeat(np.arange(len(coverage), dtype=np.int64), lengths)
    return scn, task, n


def linear_features(contexts: np.ndarray, task: np.ndarray) -> np.ndarray:
    """``(E, 4)`` float64 design matrix ``[1, φ_i]`` for the edge list.

    One bias-augmented row per *task*, gathered per edge — the whole slot's
    feature extraction is two vectorized operations regardless of how many
    SCNs cover each task.
    """
    n = contexts.shape[0]
    table = np.empty((n, LINEAR_DIM), dtype=np.float64)
    table[:, 0] = 1.0
    table[:, 1:] = contexts
    return table[task]
