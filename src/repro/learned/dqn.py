"""A pure-numpy DQN-style controller for the offloading bandit.

A 2-layer MLP (ReLU hidden layer) maps a per-edge feature vector — the
task's normalized context plus a one-hot SCN identity — to a scalar score
Q(m, i); the scores drive the *existing* Alg. 4 greedy assignment, exactly
like every other policy in the line-up.  The training loop keeps the two
standard DQN stabilizers without any new dependency:

- a fixed-capacity **replay buffer** of (feature, realized reward) pairs,
  sampled uniformly per training step, decorrelating the minibatches from
  the greedy solver's current decision pattern;
- a **target network** — a slow hard-copy of the online weights — used for
  *acting*, so the assignment pattern moves at the copy cadence rather than
  jittering with every SGD step.

The offloading problem is a one-step contextual bandit: there is no next
state, so the discount is γ = 0 and the TD target reduces to the realized
compound reward g (the honest "DQN-style" reading — bootstrapping would be
fiction here).  Exploration is a decaying ε-greedy over whole slots: with
probability ε_t the slot's edge scores are replaced by uniform draws, the
same scheme the ``eps-greedy`` cube baseline uses.

All RNG consumption (one uniform per slot, E uniforms on exploration slots,
``batch`` indices per training step) is a pure function of the slot history,
so windowed ≡ per-slot and checkpoint-resume ≡ straight-run hold
bit-identically (``tests/learned`` pins both).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OffloadingPolicy
from repro.core.greedy import greedy_select_edges
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback, SlotObservation
from repro.learned.features import edge_lists
from repro.obs import runtime as obs_runtime
from repro.utils.validation import check_positive

__all__ = ["DQNPolicy"]

#: Raw context feature count (Φ = [0,1]^3).
_CTX_DIM = 3

#: Weight/buffer array fields captured by ``checkpoint_state``.
_ARRAY_FIELDS = (
    "W1", "b1", "W2",
    "tW1", "tb1", "tW2",
    "buf_x", "buf_y",
)


class DQNPolicy(OffloadingPolicy):
    """2-layer MLP scorer with replay buffer and target network.

    Parameters
    ----------
    hidden:
        Hidden-layer width.
    lr:
        SGD learning rate on the mean-squared error.
    buffer:
        Replay-buffer capacity (a numpy ring buffer).
    batch:
        Minibatch size per training step (training starts once the buffer
        holds at least one full batch).
    train_every:
        Train every N slots (1 = every slot with feedback).
    target_every:
        Hard-copy the online weights into the target network every N
        training steps.
    eps0, eps_final:
        ε-greedy schedule: ε_t = max(eps_final, eps0/√(t+1)).
    """

    name = "dqn"

    def __init__(
        self,
        *,
        hidden: int = 32,
        lr: float = 0.05,
        buffer: int = 4096,
        batch: int = 64,
        train_every: int = 1,
        target_every: int = 50,
        eps0: float = 0.25,
        eps_final: float = 0.02,
    ) -> None:
        super().__init__()
        check_positive("hidden", hidden)
        check_positive("lr", lr)
        check_positive("buffer", buffer)
        check_positive("batch", batch)
        check_positive("train_every", train_every)
        check_positive("target_every", target_every)
        if not 0.0 <= eps_final <= eps0 <= 1.0:
            raise ValueError(
                f"need 0 <= eps_final <= eps0 <= 1, got eps0={eps0}, eps_final={eps_final}"
            )
        self.hidden = int(hidden)
        self.lr = float(lr)
        self.capacity = int(buffer)
        self.batch = int(batch)
        self.train_every = int(train_every)
        self.target_every = int(target_every)
        self.eps0 = float(eps0)
        self.eps_final = float(eps_final)
        self.dim = 0
        self._cache: tuple[int, np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- lifecycle -----------------------------------------------------------

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        super().reset(network, horizon, rng)
        d = _CTX_DIM + network.num_scns
        h = self.hidden
        self.dim = d
        # He-style init from the policy's private stream — deterministic per
        # seed, so serial/parallel/windowed runs all start identically.
        self.W1 = rng.standard_normal((d, h)) * np.sqrt(2.0 / d)
        self.b1 = np.zeros(h)
        self.W2 = rng.standard_normal(h) * np.sqrt(1.0 / h)
        self.b2 = 0.0
        self.tW1, self.tb1, self.tW2, self.tb2 = (
            self.W1.copy(), self.b1.copy(), self.W2.copy(), float(self.b2),
        )
        self.buf_x = np.zeros((self.capacity, d))
        self.buf_y = np.zeros(self.capacity)
        self.buf_pos = 0
        self.buf_fill = 0
        self.train_steps = 0
        self._cache = None

    # -- network -------------------------------------------------------------

    def _features(self, contexts: np.ndarray, scn: np.ndarray, task: np.ndarray) -> np.ndarray:
        """``(E, 3 + M)`` rows ``[φ_i, onehot(m)]`` — one gather + one scatter."""
        X = np.zeros((task.shape[0], self.dim))
        X[:, :_CTX_DIM] = contexts[task]
        X[np.arange(task.shape[0]), _CTX_DIM + scn] = 1.0
        return X

    @staticmethod
    def _forward(X: np.ndarray, W1, b1, W2, b2) -> np.ndarray:
        hidden = np.maximum(X @ W1 + b1, 0.0)
        return hidden @ W2 + b2

    def epsilon(self) -> float:
        """Current exploration probability."""
        return max(self.eps_final, self.eps0 / np.sqrt(self.t + 1.0))

    # -- policy protocol -------------------------------------------------------

    def select(self, slot: SlotObservation) -> Assignment:
        network = self._require_reset()
        with obs_runtime.span("learned.dqn.score"):
            scn, task, n = edge_lists(slot)
            X = self._features(slot.tasks.contexts, scn, task)
            # Acting uses the target network: decisions move at the hard-copy
            # cadence instead of chasing every SGD step.
            if self.rng.random() < self.epsilon():
                weights = self.rng.random(scn.shape[0])
            else:
                weights = self._forward(X, self.tW1, self.tb1, self.tW2, self.tb2)
        self._cache = (slot.t, scn, task, X)
        with obs_runtime.span("learned.dqn.greedy"):
            return greedy_select_edges(
                scn, task, weights, network.num_scns, network.capacity, n
            )

    def _update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        cache = self._cache
        if cache is None or cache[0] != slot.t:
            raise RuntimeError("update() must follow the select() of the same slot")
        self._cache = None
        asn = feedback.assignment
        if len(asn) > 0:
            _, scn, task, X = cache
            n = len(slot.tasks)
            key = scn * np.int64(n) + task
            rows = np.searchsorted(key, asn.scn * np.int64(n) + asn.task)
            self._push(X[rows], feedback.g)
        if self.t % self.train_every == 0 and self.buf_fill >= self.batch:
            self._train_step()

    # -- replay + SGD ----------------------------------------------------------

    def _push(self, X: np.ndarray, y: np.ndarray) -> None:
        count = X.shape[0]
        idx = (self.buf_pos + np.arange(count)) % self.capacity
        self.buf_x[idx] = X
        self.buf_y[idx] = y
        self.buf_pos = int((self.buf_pos + count) % self.capacity)
        self.buf_fill = int(min(self.buf_fill + count, self.capacity))

    def _train_step(self) -> None:
        with obs_runtime.span("learned.dqn.train"):
            take = self.rng.integers(0, self.buf_fill, size=self.batch)
            X = self.buf_x[take]
            y = self.buf_y[take]
            pre = X @ self.W1 + self.b1
            hidden = np.maximum(pre, 0.0)
            pred = hidden @ self.W2 + self.b2
            # γ = 0: the TD target is the realized reward itself.
            err = (pred - y) / self.batch
            grad_W2 = hidden.T @ err
            grad_b2 = err.sum()
            d_hidden = np.outer(err, self.W2)
            d_hidden[pre <= 0.0] = 0.0
            self.W1 -= self.lr * (X.T @ d_hidden)
            self.b1 -= self.lr * d_hidden.sum(axis=0)
            self.W2 -= self.lr * grad_W2
            self.b2 -= self.lr * grad_b2
            self.train_steps += 1
            if self.train_steps % self.target_every == 0:
                self.tW1 = self.W1.copy()
                self.tb1 = self.b1.copy()
                self.tW2 = self.W2.copy()
                self.tb2 = float(self.b2)

    # -- checkpoint/restore ----------------------------------------------------

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        for name in _ARRAY_FIELDS:
            state[name] = getattr(self, name).copy()
        state["b2"] = float(self.b2)
        state["tb2"] = float(self.tb2)
        state["buf_pos"] = int(self.buf_pos)
        state["buf_fill"] = int(self.buf_fill)
        state["train_steps"] = int(self.train_steps)
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        for name in _ARRAY_FIELDS:
            current = getattr(self, name)
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != current.shape:
                raise ValueError(
                    f"dqn state {name!r} shape mismatch: snapshot {value.shape}, "
                    f"expected {current.shape}"
                )
            setattr(self, name, value.copy())
        self.b2 = float(state["b2"])
        self.tb2 = float(state["tb2"])
        self.buf_pos = int(state["buf_pos"])
        self.buf_fill = int(state["buf_fill"])
        self.train_steps = int(state["train_steps"])
