"""The 5G small-cell network simulation substrate.

This subpackage implements everything the paper's evaluation environment
needs (DESIGN.md S1-S5):

- :mod:`repro.env.contexts` — the task context space Φ = [0,1]^D and the
  mapping from raw task features (input/output data size, resource type) to
  normalized contexts.
- :mod:`repro.env.tasks` — struct-of-arrays task batches.
- :mod:`repro.env.geometry` — SCN/WD placement, coverage, and mobility, plus
  the direct coverage sampler used by the paper's evaluation.
- :mod:`repro.env.processes` — the unknown random processes U (reward),
  V (completion likelihood), Q (resource consumption) and their ground truth.
- :mod:`repro.env.channel` — mmWave blockage dynamics refining V.
- :mod:`repro.env.workload` — per-slot workload generation.
- :mod:`repro.env.network` — the small-cell network constraint configuration.
- :mod:`repro.env.simulator` — the slot-by-slot simulation loop.
"""

from repro.env.contexts import ContextSpace, ResourceType, TaskFeatureModel
from repro.env.tasks import TaskBatch
from repro.env.geometry import (
    CoverageModel,
    CoverageSampler,
    GeometricCoverage,
    random_waypoint_step,
)
from repro.env.processes import (
    GroundTruth,
    PiecewiseConstantTruth,
    SmoothTruth,
    DriftingTruth,
    RegimeSwitchTruth,
)
from repro.env.channel import BlockageChannel, MarkovBlockage
from repro.env.mbs import MBSFallback, MBSSlotResult
from repro.env.stats import WorkloadStatistics, workload_statistics
from repro.env.workload import SlotWorkload, SyntheticWorkload, TraceWorkload
from repro.env.network import NetworkConfig
from repro.env.simulator import (
    Assignment,
    Simulation,
    SimulationResult,
    SlotFeedback,
    SlotObservation,
)

__all__ = [
    "ContextSpace",
    "ResourceType",
    "TaskFeatureModel",
    "TaskBatch",
    "CoverageModel",
    "CoverageSampler",
    "GeometricCoverage",
    "random_waypoint_step",
    "GroundTruth",
    "PiecewiseConstantTruth",
    "SmoothTruth",
    "DriftingTruth",
    "RegimeSwitchTruth",
    "BlockageChannel",
    "MarkovBlockage",
    "MBSFallback",
    "MBSSlotResult",
    "SlotWorkload",
    "SyntheticWorkload",
    "TraceWorkload",
    "WorkloadStatistics",
    "workload_statistics",
    "NetworkConfig",
    "Assignment",
    "Simulation",
    "SimulationResult",
    "SlotFeedback",
    "SlotObservation",
]
