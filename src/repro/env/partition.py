"""Uniform grid partition helpers for the context space Φ = [0,1]^D.

Both the environment's ground-truth parameter tables and the learner's
hypercube partition (paper §4.2) index contexts by the uniform grid cell they
fall into; this module holds the single canonical implementation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["num_cells", "uniform_cell_indices", "cell_centers"]


def num_cells(parts: int, dims: int) -> int:
    """Total number of hypercubes (h_T)^D for ``parts`` divisions per dim."""
    check_positive("parts", parts)
    check_positive("dims", dims)
    return int(parts) ** int(dims)


def uniform_cell_indices(contexts: np.ndarray, parts: int) -> np.ndarray:
    """Map contexts in [0,1]^D to flat cell indices of the uniform grid.

    Each dimension is split into ``parts`` equal intervals; the upper boundary
    1.0 belongs to the last interval.  Flat indices use C order (last
    dimension fastest), i.e. ``flat = sum_d digit_d * parts**(D-1-d)``.

    Parameters
    ----------
    contexts:
        ``(n, D)`` array with entries in [0, 1].
    parts:
        Number of divisions per dimension (the paper's h_T).

    Returns
    -------
    ``(n,)`` int array of flat cell indices in ``range(parts**D)``.
    """
    check_positive("parts", parts)
    ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
    if np.any(ctx < 0.0) or np.any(ctx > 1.0):
        raise ValueError("contexts must lie in [0,1]^D")
    digits = np.minimum((ctx * parts).astype(np.int64), parts - 1)
    dims = ctx.shape[1]
    weights = parts ** np.arange(dims - 1, -1, -1, dtype=np.int64)
    return digits @ weights


def cell_centers(parts: int, dims: int) -> np.ndarray:
    """Centers of all cells, shape ``(parts**D, D)``, in flat-index order."""
    check_positive("parts", parts)
    check_positive("dims", dims)
    axes = [np.arange(parts, dtype=np.int64)] * dims
    mesh = np.meshgrid(*axes, indexing="ij")
    digits = np.column_stack([m.ravel() for m in mesh])
    return (digits + 0.5) / parts
