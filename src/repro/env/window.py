"""Windowed slot precompute: stream W slots through the batched kernels.

The batched slot engine (PR 1) made a *single* slot one flat edge list, but
every slot still rebuilds that layout — coverage concatenation, hypercube
classification, ground-truth cell lookup — from scratch.  This module
precomputes those slot-invariant structures for a *window* of W slots in one
vectorized pass:

- :func:`precompute_window` pulls W slots from the workload (through
  :meth:`~repro.env.workload.Workload.sample_slots`, which preserves the
  frozen per-slot RNG draw order), then builds each slot's
  :class:`SlotEdges` — the flat (scn, task) edge list with segment offsets,
  the sorted membership key the assignment validator needs, and optionally
  the per-edge hypercube indices for the learner's partition — plus the
  ground-truth grid cell per task.  Cube and cell classification run *once*
  over the whole window's concatenated contexts.
- :class:`PrecomputedSlot` is a :class:`~repro.env.workload.SlotWorkload`
  that carries the precomputed extras; consumers discover them by duck
  typing (``getattr(slot, "edges", None)``), so every policy and the
  per-slot simulator path keep working unchanged on plain slots.

Everything here is *derived* data — no random draws happen outside
``sample_slots`` — so a windowed trajectory is bit-identical to the
per-slot one (``tests/env/test_window.py`` enforces this for both engines,
both assignment modes, and window sizes straddling the horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.env.workload import SlotWorkload, Workload

__all__ = ["SlotEdges", "PrecomputedSlot", "SlotWindow", "precompute_window"]


@dataclass(frozen=True)
class SlotEdges:
    """One slot's coverage graph as a flat edge list, plus derived layout.

    Attributes
    ----------
    offsets:
        ``(M+1,)`` int64 — SCN m's edges live at ``offsets[m]:offsets[m+1]``.
    lengths:
        ``(M,)`` int64 segment sizes (``np.diff(offsets)``).
    lengths_f:
        ``lengths`` as float64 (Alg. 2's K per segment).
    bounds:
        ``offsets.tolist()`` — ready for the per-SCN Python loops.
    seg_start:
        ``(M,)`` int64 — clamped segment starts for ``np.ufunc.reduceat``
        (empty segments produce garbage lanes the consumers never read).
    scn, task:
        ``(E,)`` int64 parallel edge arrays (tasks sorted within a segment).
    key:
        ``(E,)`` int64 ``scn·n + task`` — sorted, used for membership and
        assignment lookup without rebuilding.
    seg_len_edge:
        ``(E,)`` float64 — each edge's segment length (Alg. 2's per-edge K).
    num_tasks:
        n — the slot's task count (the key encoding base).
    cube:
        ``(E,)`` int64 hypercube index per edge for ``partition``, or None
        when no partition was supplied.
    flat:
        ``(E,)`` int64 ``scn·F + cube`` (the Alg. 3 scatter key), or None.
    partition:
        The :class:`~repro.core.hypercube.ContextPartition` the cubes were
        computed for (consumers must check it matches their own).
    num_cubes:
        F — ``partition.num_cubes`` snapshot (0 when no partition).
    """

    offsets: np.ndarray
    lengths: np.ndarray
    lengths_f: np.ndarray
    bounds: list[int]
    seg_start: np.ndarray
    scn: np.ndarray
    task: np.ndarray
    key: np.ndarray
    seg_len_edge: np.ndarray
    num_tasks: int
    cube: np.ndarray | None = None
    flat: np.ndarray | None = None
    partition: object | None = None
    num_cubes: int = 0

    @property
    def num_edges(self) -> int:
        return int(self.task.shape[0])

    @property
    def num_segments(self) -> int:
        return int(self.offsets.shape[0]) - 1


@dataclass(frozen=True)
class PrecomputedSlot(SlotWorkload):
    """A :class:`SlotWorkload` carrying window-precomputed derived data.

    Attributes
    ----------
    edges:
        The slot's :class:`SlotEdges` (always present for windowed slots).
    truth_cells:
        ``(n,)`` int64 ground-truth grid cell per task (present only when
        the simulation's truth exposes ``context_cells``).
    """

    edges: SlotEdges | None = None
    truth_cells: np.ndarray | None = None


@dataclass(frozen=True)
class SlotWindow:
    """W consecutive precomputed slots, ``slots[i]`` being slot ``start+i``."""

    start: int
    slots: tuple[PrecomputedSlot, ...]

    def __len__(self) -> int:
        return len(self.slots)


def _normalize_coverage(
    coverage: Sequence[np.ndarray],
) -> list[np.ndarray]:
    """Coverage lists as int64 arrays, matching the batched engine's intake."""
    return [np.asarray(cov, dtype=np.int64) for cov in coverage]


def _build_edges(
    coverage: list[np.ndarray],
    num_tasks: int,
    edge_task: np.ndarray,
    edge_scn: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
) -> SlotEdges:
    """Assemble one slot's :class:`SlotEdges` from pre-concatenated arrays.

    ``edge_task`` may be repaired (sorted per segment) in place; the same
    repair is written back into ``coverage`` so the slot and its edge list
    stay consistent — identical logic to the batched engine's per-slot
    sortedness check.
    """
    E = int(offsets[-1])
    M = lengths.shape[0]
    if E:
        drops = np.flatnonzero(np.diff(edge_task) < 0)
        if drops.size:
            seg_of_drop = np.searchsorted(offsets, drops, side="right") - 1
            boundary = offsets[seg_of_drop + 1] - 1  # last index of that segment
            for m in np.unique(seg_of_drop[drops != boundary]).tolist():
                coverage[m] = np.sort(coverage[m])
                edge_task[offsets[m] : offsets[m + 1]] = coverage[m]
    key = edge_scn * np.int64(num_tasks) + edge_task
    return SlotEdges(
        offsets=offsets,
        lengths=lengths,
        lengths_f=lengths.astype(float),
        bounds=offsets.tolist(),
        seg_start=np.minimum(offsets[:-1], max(E - 1, 0)),
        scn=edge_scn,
        task=edge_task,
        key=key,
        seg_len_edge=np.repeat(lengths, lengths).astype(float),
        num_tasks=num_tasks,
    )


def precompute_window(
    workload: Workload,
    t0: int,
    count: int,
    rng: np.random.Generator,
    *,
    partition: object | None = None,
    context_cells: Callable[[np.ndarray], np.ndarray] | None = None,
) -> SlotWindow:
    """Generate and precompute slots ``t0 .. t0+count-1`` in one pass.

    Parameters
    ----------
    workload:
        Must be windowable (``workload.windowable``); slots are drawn via
        :meth:`~repro.env.workload.Workload.sample_slots`, which consumes
        the workload RNG in exactly the per-slot order.
    partition:
        The learner's :class:`~repro.core.hypercube.ContextPartition`; when
        given, every edge's hypercube index (and the Alg. 3 ``scn·F + cube``
        scatter key) is classified once over the window's contexts.
    context_cells:
        The truth's ``context_cells`` bound method; when given, each task's
        ground-truth grid cell is precomputed the same way.

    Returns
    -------
    SlotWindow
        ``count`` :class:`PrecomputedSlot` objects sharing one batched
        classification pass.
    """
    if count <= 0:
        raise ValueError(f"count must be >= 1, got {count}")
    raw_slots = workload.sample_slots(t0, count, rng)

    coverage_lists = [_normalize_coverage(s.coverage) for s in raw_slots]
    # One concatenate over all W·M coverage segments, then per-slot views.
    parts: list[np.ndarray] = []
    seg_lengths: list[np.ndarray] = []
    for cov in coverage_lists:
        parts.extend(cov)
        seg_lengths.append(
            np.fromiter((c.shape[0] for c in cov), dtype=np.int64, count=len(cov))
        )
    all_lengths = np.concatenate(seg_lengths) if seg_lengths else np.empty(0, np.int64)
    all_task = (
        np.concatenate(parts) if parts else np.empty(0, np.int64)
    )
    M = raw_slots[0].num_scns if raw_slots else 0
    scn_pattern = np.tile(np.arange(M, dtype=np.int64), count)
    all_scn = np.repeat(scn_pattern, all_lengths)

    # Classification runs once over the window's concatenated contexts; the
    # grid lookups are pure row-wise maps, so batching them is bit-identical
    # to per-slot classification.
    ctx_offsets = np.zeros(count + 1, dtype=np.int64)
    for i, s in enumerate(raw_slots):
        ctx_offsets[i + 1] = ctx_offsets[i] + len(s.tasks)
    all_cubes = all_cells = None
    if partition is not None or context_cells is not None:
        all_ctx = np.concatenate([s.tasks.contexts for s in raw_slots])
        if partition is not None:
            all_cubes = partition.assign(all_ctx)
        if context_cells is not None:
            all_cells = np.asarray(context_cells(all_ctx), dtype=np.int64)

    slots: list[PrecomputedSlot] = []
    edge_pos = 0
    seg_pos = 0
    for i, raw in enumerate(raw_slots):
        coverage = coverage_lists[i]
        lengths = all_lengths[seg_pos : seg_pos + M]
        offsets = np.zeros(M + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        E = int(offsets[-1])
        edges = _build_edges(
            coverage,
            len(raw.tasks),
            all_task[edge_pos : edge_pos + E],
            all_scn[edge_pos : edge_pos + E],
            offsets,
            lengths,
        )
        if all_cubes is not None and partition is not None:
            task_cubes = all_cubes[ctx_offsets[i] : ctx_offsets[i + 1]]
            cube = task_cubes[edges.task]
            F = partition.num_cubes
            edges = SlotEdges(
                offsets=edges.offsets,
                lengths=edges.lengths,
                lengths_f=edges.lengths_f,
                bounds=edges.bounds,
                seg_start=edges.seg_start,
                scn=edges.scn,
                task=edges.task,
                key=edges.key,
                seg_len_edge=edges.seg_len_edge,
                num_tasks=edges.num_tasks,
                cube=cube,
                flat=edges.scn * np.int64(F) + cube,
                partition=partition,
                num_cubes=F,
            )
        truth_cells = (
            None
            if all_cells is None
            else all_cells[ctx_offsets[i] : ctx_offsets[i + 1]]
        )
        slots.append(
            PrecomputedSlot(
                t=raw.t,
                tasks=raw.tasks,
                coverage=coverage,
                edges=edges,
                truth_cells=truth_cells,
            )
        )
        edge_pos += E
        seg_pos += M
    return SlotWindow(start=t0, slots=tuple(slots))
