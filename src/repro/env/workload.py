"""Per-slot workload generation (paper §5 setup).

A workload produces, for every time slot, the tasks present in the network
(a :class:`~repro.env.tasks.TaskBatch`) together with the coverage sets
D_{m,t}.  :class:`SyntheticWorkload` combines a
:class:`~repro.env.contexts.TaskFeatureModel` (input 5-20 Mbit, output
1-4 Mbit, resource type) with a :class:`~repro.env.geometry.CoverageModel`
(|D_{m,t}| ~ U[35,100] by default).  :class:`TraceWorkload` replays recorded
slots, so real traces can be substituted without touching the simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageModel, CoverageSampler
from repro.env.tasks import TaskBatch

__all__ = ["SlotWorkload", "Workload", "SyntheticWorkload", "TraceWorkload"]


@dataclass(frozen=True)
class SlotWorkload:
    """Everything observable about one slot before any offloading decision.

    Attributes
    ----------
    t:
        The slot index.
    tasks:
        The batch of n_t distinct tasks present in the network.
    coverage:
        ``coverage[m]`` is an int array of task indices (into ``tasks``)
        inside SCN m's coverage area — the paper's D_{m,t}.
    """

    t: int
    tasks: TaskBatch
    coverage: list[np.ndarray]

    @property
    def num_scns(self) -> int:
        return len(self.coverage)

    def covered_mask(self) -> np.ndarray:
        """Boolean mask over tasks: covered by at least one SCN."""
        mask = np.zeros(len(self.tasks), dtype=bool)
        for idx in self.coverage:
            mask[idx] = True
        return mask

    def coverage_matrix(self) -> np.ndarray:
        """Dense ``(M, n)`` boolean coverage matrix (small-instance tooling)."""
        mat = np.zeros((self.num_scns, len(self.tasks)), dtype=bool)
        for m, idx in enumerate(self.coverage):
            mat[m, idx] = True
        return mat


class Workload(ABC):
    """Produces an infinite (or finite, for traces) sequence of slots."""

    num_scns: int

    #: Whether slots depend only on (t, rng) consumed in slot order — i.e.
    #: the windowed driver may generate several slots ahead of the policy.
    #: Wrappers whose slots depend on *feedback* from earlier slots (e.g.
    #: ``MultiSlotWorkload``'s pending backlog) must leave this False.
    windowable: bool = False

    @abstractmethod
    def slot(self, t: int, rng: np.random.Generator) -> SlotWorkload:
        """Generate slot ``t``."""

    def sample_slots(
        self, t0: int, count: int, rng: np.random.Generator
    ) -> list[SlotWorkload]:
        """Generate slots ``t0 .. t0+count-1`` in order.

        Must consume ``rng`` exactly as ``count`` sequential :meth:`slot`
        calls would — the frozen per-slot stream contract windowed runs rely
        on for bit-identical trajectories.  Subclasses may override to batch
        the non-RNG work across the window.
        """
        return [self.slot(t0 + i, rng) for i in range(count)]

    def max_coverage_size(self) -> int:
        """Upper bound K_m on |D_{m,t}| (drives learning-rate defaults)."""
        raise NotImplementedError


@dataclass
class SyntheticWorkload(Workload):
    """The paper's synthetic workload: sampled features + sampled coverage."""

    features: TaskFeatureModel = field(default_factory=TaskFeatureModel)
    coverage_model: CoverageModel = field(default_factory=CoverageSampler)

    windowable = True

    def __post_init__(self) -> None:
        self.num_scns = self.coverage_model.num_scns
        self._next_id = 0

    def reset(self) -> None:
        """Restart id numbering and any stateful coverage (e.g. mobility)."""
        self._next_id = 0
        reset = getattr(self.coverage_model, "reset", None)
        if callable(reset):
            reset()

    def slot(self, t: int, rng: np.random.Generator) -> SlotWorkload:
        n_tasks, coverage = self.coverage_model.sample_slot(rng)
        inputs, outputs, resources = self.features.sample_features(n_tasks, rng)
        contexts = self.features.normalize(inputs, outputs, resources)
        ids = np.arange(self._next_id, self._next_id + n_tasks, dtype=np.int64)
        self._next_id += n_tasks
        batch = TaskBatch(
            contexts=contexts,
            ids=ids,
            input_mbit=inputs,
            output_mbit=outputs,
            resource_type=resources,
        )
        return SlotWorkload(t=t, tasks=batch, coverage=coverage)

    def sample_slots(
        self, t0: int, count: int, rng: np.random.Generator
    ) -> list[SlotWorkload]:
        """Batched slot generation with the per-slot RNG draw order.

        All random draws stay in the exact per-slot sequence (coverage then
        features, slot by slot) so the stream contract holds; only the
        purely row-wise feature normalization is batched over the window's
        concatenated features — bit-identical values, one vectorized pass.
        """
        raw: list[tuple[int, list[np.ndarray], np.ndarray, np.ndarray, np.ndarray]] = []
        for _ in range(count):
            n_tasks, coverage = self.coverage_model.sample_slot(rng)
            inputs, outputs, resources = self.features.sample_features(n_tasks, rng)
            raw.append((n_tasks, coverage, inputs, outputs, resources))

        all_contexts = self.features.normalize(
            np.concatenate([r[2] for r in raw]),
            np.concatenate([r[3] for r in raw]),
            np.concatenate([r[4] for r in raw]),
        )
        slots: list[SlotWorkload] = []
        offset = 0
        for i, (n_tasks, coverage, inputs, outputs, resources) in enumerate(raw):
            ids = np.arange(self._next_id, self._next_id + n_tasks, dtype=np.int64)
            self._next_id += n_tasks
            batch = TaskBatch(
                contexts=all_contexts[offset : offset + n_tasks],
                ids=ids,
                input_mbit=inputs,
                output_mbit=outputs,
                resource_type=resources,
            )
            slots.append(SlotWorkload(t=t0 + i, tasks=batch, coverage=coverage))
            offset += n_tasks
        return slots

    def max_coverage_size(self) -> int:
        return self.coverage_model.max_coverage_size()

    # -- window-cache hooks (see repro.env.window_cache) ---------------------

    def cache_token(self) -> tuple | None:
        """Value token identifying the slot distribution, or None if uncacheable.

        Slots are a pure function of ``(t, rng)`` only when the coverage model
        is stateless; a model carrying hidden state between slots (e.g.
        mobility with ``reset``) makes cached windows unsound, so those return
        None and the window cache stands down.  Component reprs are value
        reprs (frozen/plain dataclasses), so equal configurations share.
        """
        if callable(getattr(self.coverage_model, "reset", None)):
            return None
        return ("synthetic", repr(self.features), repr(self.coverage_model))

    def cursor(self) -> int:
        """Non-RNG generation state (the task-id counter) for cache replay."""
        return self._next_id

    def restore_cursor(self, value: int) -> None:
        """Fast-forward the id counter past a cache-served window, keeping
        later cache misses bit-identical to an uncached run."""
        self._next_id = int(value)

    # -- checkpoint hooks (repro-checkpoint/v1, DESIGN.md §10) ---------------

    def checkpoint_state(self) -> dict:
        """Generation state beyond the RNG stream: the id counter plus any
        stateful coverage (mobility fleets) via its ``state_dict`` hook.

        Coverage keys are flattened with a ``coverage_`` prefix so the
        checkpoint container's scalar/array routing applies per entry.
        """
        state: dict = {"next_id": int(self._next_id)}
        state_dict = getattr(self.coverage_model, "state_dict", None)
        if callable(state_dict):
            for key, value in state_dict().items():
                state[f"coverage_{key}"] = value
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        self._next_id = int(state["next_id"])
        restore = getattr(self.coverage_model, "restore_state", None)
        if callable(restore):
            coverage_state = {
                key[len("coverage_") :]: value
                for key, value in state.items()
                if key.startswith("coverage_")
            }
            restore(coverage_state)


@dataclass
class TraceWorkload(Workload):
    """Replays a pre-recorded sequence of slots (e.g. a real-world trace).

    Parameters
    ----------
    slots:
        The recorded slots, replayed cyclically if the simulation horizon
        exceeds the trace length.
    """

    slots: Sequence[SlotWorkload] = ()

    windowable = True

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("TraceWorkload needs at least one recorded slot")
        scns = {s.num_scns for s in self.slots}
        if len(scns) != 1:
            raise ValueError(f"all trace slots must agree on num_scns, got {scns}")
        self.num_scns = scns.pop()

    def __len__(self) -> int:
        return len(self.slots)

    def slot(self, t: int, rng: np.random.Generator) -> SlotWorkload:
        recorded = self.slots[t % len(self.slots)]
        if recorded.t == t:
            return recorded
        return SlotWorkload(t=t, tasks=recorded.tasks, coverage=recorded.coverage)

    def max_coverage_size(self) -> int:
        return max(
            (int(len(idx)) for s in self.slots for idx in s.coverage), default=0
        )

    @staticmethod
    def record(workload: Workload, horizon: int, rng: np.random.Generator) -> "TraceWorkload":
        """Materialize ``horizon`` slots of another workload into a trace."""
        return TraceWorkload(slots=[workload.slot(t, rng) for t in range(horizon)])
