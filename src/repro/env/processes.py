"""The unknown random processes U, V, Q and their ground truth (paper §3.2).

For SCN m and task context φ the paper posits three independent random
processes, observed only *after* a task is offloaded and processed:

- ``U^m_φ(t)`` — the reward for completing the task (task value /
  computation rate), realization u ∈ [0, 1];
- ``V^m_φ(t)`` — the likelihood the task completes, capturing mmWave link
  instability; realization v ∈ {0, 1} (completed or interrupted);
- ``Q^m_φ(t)`` — the resource consumption, realization q (evaluation §5
  samples it uniformly in [1, 2]).

The compound (effective) reward is ``g = u·v / q``.  V and Q are stationary;
U need not be — :class:`DriftingTruth` and :class:`RegimeSwitchTruth`
implement the non-stationary variants the paper allows.

The ground truth lives on a uniform grid over Φ (independent of, and possibly
finer than, the learner's hypercube partition), matching the evaluation's
"reward and likelihood ... uniformly distributed in [0,1]" per category, and
satisfying the similarity hypothesis of §4.2 (similar contexts → similar
feedback) exactly within a cell.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.env.partition import cell_centers, num_cells, uniform_cell_indices
from repro.utils.validation import check_interval, check_positive, require

__all__ = [
    "GroundTruth",
    "PiecewiseConstantTruth",
    "SmoothTruth",
    "DriftingTruth",
    "RegimeSwitchTruth",
]

_EPS = 1e-9


class GroundTruth(ABC):
    """Ground-truth parameters of U, V, Q — hidden from all learners.

    Only the Oracle baseline and the regret metric may query
    :meth:`expected_compound`; learning policies interact with the
    environment solely through realized feedback.
    """

    num_scns: int
    dims: int

    @abstractmethod
    def means(self, t: int, contexts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expected values (E[u], P[v=1], E[q]) per (SCN, task).

        Returns three ``(M, n)`` arrays for the ``n`` given contexts.
        """

    @abstractmethod
    def expected_compound(self, t: int, contexts: np.ndarray) -> np.ndarray:
        """``(M, n)`` array of E[g] = E[u]·P[v=1]·E[1/q] (independence)."""

    def means_pairs(
        self, t: int, contexts: np.ndarray, scn_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expected values (E[u], P[v=1], E[q]) for explicit (SCN, task) pairs.

        ``contexts[j]`` pairs with ``scn_idx[j]``; returns three ``(P,)``
        arrays.  The default falls back to the dense ``(M, n)`` tables and
        gathers the diagonal pairs; concrete truths override it to evaluate
        only the requested pairs (the simulator's expected-violation
        recording needs <= M·c pairs per slot, not M·n).
        """
        scn = np.asarray(scn_idx, dtype=np.int64)
        rows = np.arange(scn.shape[0])
        mu_u, p_v, mu_q = self.means(t, contexts)
        return mu_u[scn, rows], p_v[scn, rows], mu_q[scn, rows]

    def expected_compound_pairs(
        self, t: int, contexts: np.ndarray, scn_idx: np.ndarray
    ) -> np.ndarray:
        """``(P,)`` E[g] for explicit (SCN, task) pairs (see :meth:`means_pairs`)."""
        scn = np.asarray(scn_idx, dtype=np.int64)
        rows = np.arange(scn.shape[0])
        return self.expected_compound(t, contexts)[scn, rows]

    @abstractmethod
    def realize(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (u, v, q) for each (scn_idx[j], contexts[j]) pair."""

    def advance(self, t: int, rng: np.random.Generator) -> None:
        """Advance any internal non-stationary state to slot ``t+1``."""
        # Stationary truths have nothing to do.

    def checkpoint_state(self) -> dict:
        """State mutated by :meth:`advance` (for checkpoint/restore).

        Stationary truths are a pure function of their construction seed, so
        the default snapshot is empty; non-stationary truths return whatever
        :meth:`advance` walks (the RNG streams are captured separately by
        the session).  Values may be numpy arrays or JSON scalars.
        """
        return {}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore a :meth:`checkpoint_state` snapshot onto a fresh truth."""

    def reward_bound(self) -> float:
        """An upper bound on the compound reward g (for normalization)."""
        return 1.0


@dataclass
class PiecewiseConstantTruth(GroundTruth):
    """Stationary ground truth, constant within each grid cell (paper §5).

    Per (SCN, cell) the parameters are drawn once at construction:

    - mean reward       ``mu_u ~ Uniform[u_range]``          (paper: [0,1])
    - completion prob.  ``p_v  ~ Uniform[v_range]``          (paper: [0,1])
    - consumption band  ``[q_lo, q_hi] ⊂ q_range`` of width ``q_band``
      centered uniformly at random                            (paper: [1,2])

    Realizations: ``u ~ Beta`` with mean mu_u and concentration
    ``u_concentration`` (set ``u_concentration=inf`` for deterministic
    u = mu_u); ``v ~ Bernoulli(p_v)``; ``q ~ Uniform[q_lo, q_hi]``.

    ``E[1/q]`` for the uniform band is ``ln(q_hi/q_lo)/(q_hi - q_lo)``
    (exactly, so the Oracle and the regret metric are unbiased).
    """

    num_scns: int = 30
    dims: int = 3
    cells_per_dim: int = 3
    u_range: tuple[float, float] = (0.0, 1.0)
    v_range: tuple[float, float] = (0.0, 1.0)
    q_range: tuple[float, float] = (1.0, 2.0)
    q_band: float = 0.5
    u_concentration: float = 10.0
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("dims", self.dims)
        check_positive("cells_per_dim", self.cells_per_dim)
        check_interval("u_range", self.u_range)
        check_interval("v_range", self.v_range)
        check_interval("q_range", self.q_range)
        require(self.q_range[0] > 0, f"q_range must be positive, got {self.q_range}")
        require(
            0 < self.q_band <= self.q_range[1] - self.q_range[0] or np.isclose(self.q_band, 0),
            f"q_band must be in (0, {self.q_range[1] - self.q_range[0]}], got {self.q_band}",
        )
        require(self.u_concentration > 0, "u_concentration must be > 0")
        rng = np.random.default_rng(self.seed) if not isinstance(self.seed, np.random.Generator) else self.seed
        n_cells = num_cells(self.cells_per_dim, self.dims)
        shape = (self.num_scns, n_cells)
        self.mu_u = rng.uniform(*self.u_range, size=shape)
        self.p_v = rng.uniform(*self.v_range, size=shape)
        q_lo, q_hi = self.q_range
        band = min(self.q_band, q_hi - q_lo)
        centers = rng.uniform(q_lo + band / 2.0, q_hi - band / 2.0, size=shape) if q_hi - q_lo > band else np.full(shape, (q_lo + q_hi) / 2.0)
        self.q_lo = centers - band / 2.0
        self.q_hi = centers + band / 2.0

    # -- table lookups ------------------------------------------------------

    def _cells(self, contexts: np.ndarray) -> np.ndarray:
        return uniform_cell_indices(contexts, self.cells_per_dim)

    def context_cells(self, contexts: np.ndarray) -> np.ndarray:
        """Grid cell per context row — precomputable (the tables are static).

        Truths exposing this accept a ``cells=`` keyword on the pair-wise
        lookups and :meth:`realize`, letting windowed runs classify each
        context once instead of once per call.
        """
        return self._cells(contexts)

    def context_cells_token(self) -> tuple:
        """Value token identifying the :meth:`context_cells` map (cache key).

        The classification is a pure function of the uniform grid geometry —
        never of the drawn tables or the truth seed — so two truths with the
        same ``(dims, cells_per_dim)`` classify identically and may share
        window-cache entries (:mod:`repro.env.window_cache`).
        """
        return ("uniform-grid", int(self.dims), int(self.cells_per_dim))

    def means(self, t: int, contexts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        cells = self._cells(contexts)
        mean_q = (self.q_lo[:, cells] + self.q_hi[:, cells]) / 2.0
        return self.mu_u[:, cells], self.p_v[:, cells], mean_q

    def expected_inverse_q(self, contexts: np.ndarray) -> np.ndarray:
        """Exact E[1/q] per (SCN, task) for the uniform consumption band."""
        cells = self._cells(contexts)
        lo, hi = self.q_lo[:, cells], self.q_hi[:, cells]
        width = hi - lo
        # Degenerate band (width 0) -> 1/lo; otherwise ln(hi/lo)/(hi-lo).
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(width > _EPS, np.log(hi / lo) / np.where(width > _EPS, width, 1.0), 1.0 / lo)
        return out

    def expected_compound(self, t: int, contexts: np.ndarray) -> np.ndarray:
        cells = self._cells(contexts)
        return self.mu_u[:, cells] * self.p_v[:, cells] * self.expected_inverse_q(contexts)

    # -- pair-wise lookups (exact: the tables make gathers associative) ------

    def _pair_cells(
        self,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        cells: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        scn = np.asarray(scn_idx, dtype=np.int64)
        if cells is None:
            cells = self._cells(contexts)
        if scn.shape != cells.shape:
            raise ValueError(
                f"scn_idx has shape {scn.shape} but contexts give {cells.shape}"
            )
        return scn, cells

    def means_pairs(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        *,
        cells: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scn, cells = self._pair_cells(contexts, scn_idx, cells)
        mean_q = (self.q_lo[scn, cells] + self.q_hi[scn, cells]) / 2.0
        return self.mu_u[scn, cells], self.p_v[scn, cells], mean_q

    def expected_inverse_q_pairs(
        self,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        *,
        cells: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact E[1/q] per explicit (SCN, task) pair."""
        scn, cells = self._pair_cells(contexts, scn_idx, cells)
        lo, hi = self.q_lo[scn, cells], self.q_hi[scn, cells]
        width = hi - lo
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(width > _EPS, np.log(hi / lo) / np.where(width > _EPS, width, 1.0), 1.0 / lo)
        return out

    def expected_compound_pairs(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        *,
        cells: np.ndarray | None = None,
    ) -> np.ndarray:
        scn, cells = self._pair_cells(contexts, scn_idx, cells)
        return (
            self.mu_u[scn, cells]
            * self.p_v[scn, cells]
            * self.expected_inverse_q_pairs(contexts, scn_idx, cells=cells)
        )

    def slot_pair_stats(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        *,
        cells: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(E[g], P[v=1], E[q]) per pair in one classification pass.

        Fuses :meth:`expected_compound_pairs` and :meth:`means_pairs` —
        identical arithmetic per component — so the simulator's
        expected-violation recording touches the grid once per slot.
        """
        scn, cells = self._pair_cells(contexts, scn_idx, cells)
        p_v = self.p_v[scn, cells]
        exp_g = (
            self.mu_u[scn, cells]
            * p_v
            * self.expected_inverse_q_pairs(contexts, scn_idx, cells=cells)
        )
        mean_q = (self.q_lo[scn, cells] + self.q_hi[scn, cells]) / 2.0
        return exp_g, p_v, mean_q

    # -- sampling ------------------------------------------------------------

    def realize(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        rng: np.random.Generator,
        *,
        cells: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scn = np.asarray(scn_idx, dtype=np.int64)
        if cells is None:
            cells = self._cells(contexts)
        if scn.shape != cells.shape:
            raise ValueError(
                f"scn_idx has shape {scn.shape} but contexts give {cells.shape}"
            )
        mu = np.clip(self.mu_u[scn, cells], _EPS, 1.0 - _EPS)
        if np.isinf(self.u_concentration):
            u = self.mu_u[scn, cells].copy()
        else:
            kappa = self.u_concentration
            u = rng.beta(kappa * mu, kappa * (1.0 - mu))
        v = (rng.random(size=cells.shape) < self.p_v[scn, cells]).astype(float)
        q = rng.uniform(self.q_lo[scn, cells], self.q_hi[scn, cells])
        return u, v, q

    def reward_bound(self) -> float:
        # g = u·v/q <= 1·1/q_min over all bands.
        return 1.0 / float(self.q_lo.min())


@dataclass
class SmoothTruth(GroundTruth):
    """Stationary ground truth with smooth (Lipschitz) mean functions.

    Satisfies the Hölder continuity of Assumption 1 with a controllable
    Lipschitz constant: each mean function is a random low-frequency cosine
    mixture squashed through a logistic into its valid range.  Used by
    property tests and the granularity (h_T) ablation, where piecewise-
    constant truth would make one particular partition trivially optimal.
    """

    num_scns: int = 30
    dims: int = 3
    n_features: int = 8
    frequency: float = 1.0
    q_range: tuple[float, float] = (1.0, 2.0)
    u_noise: float = 0.1
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("dims", self.dims)
        check_positive("n_features", self.n_features)
        check_interval("q_range", self.q_range)
        require(self.q_range[0] > 0, "q_range must be positive")
        rng = np.random.default_rng(self.seed) if not isinstance(self.seed, np.random.Generator) else self.seed
        shape = (3, self.num_scns, self.n_features)  # one bank per process U,V,Q
        self._omega = rng.normal(0.0, self.frequency, size=shape + (self.dims,))
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=shape)
        self._coef = rng.normal(0.0, 1.0, size=shape) / np.sqrt(self.n_features)

    def _field(self, bank: int, contexts: np.ndarray) -> np.ndarray:
        """Evaluate the random cosine field: (M, n) values squashed to (0,1)."""
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        # (M, F, n) phases -> cosine mixture -> logistic squash.
        proj = np.einsum("mfd,nd->mfn", self._omega[bank], ctx) * 2.0 * np.pi
        waves = np.cos(proj + self._phase[bank][:, :, None])
        raw = np.einsum("mf,mfn->mn", self._coef[bank], waves)
        return 1.0 / (1.0 + np.exp(-3.0 * raw))

    def means(self, t: int, contexts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        q_lo, q_hi = self.q_range
        mu_u = self._field(0, contexts)
        p_v = self._field(1, contexts)
        mu_q = q_lo + (q_hi - q_lo) * self._field(2, contexts)
        return mu_u, p_v, mu_q

    def expected_compound(self, t: int, contexts: np.ndarray) -> np.ndarray:
        mu_u, p_v, mu_q = self.means(t, contexts)
        # q is deterministic given the context here, so E[1/q] = 1/mu_q.
        return mu_u * p_v / mu_q

    def _field_pairs(self, bank: int, contexts: np.ndarray, scn: np.ndarray) -> np.ndarray:
        """The cosine field at explicit (SCN, context) pairs: (P,) values.

        Evaluates only the requested SCNs' feature banks; agrees with
        :meth:`_field` up to floating-point reduction order (the einsum
        contraction path differs), i.e. to ~1 ulp.
        """
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        proj = np.einsum("pfd,pd->pf", self._omega[bank][scn], ctx) * 2.0 * np.pi
        waves = np.cos(proj + self._phase[bank][scn])
        raw = np.einsum("pf,pf->p", self._coef[bank][scn], waves)
        return 1.0 / (1.0 + np.exp(-3.0 * raw))

    def means_pairs(
        self, t: int, contexts: np.ndarray, scn_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scn = np.asarray(scn_idx, dtype=np.int64)
        q_lo, q_hi = self.q_range
        mu_u = self._field_pairs(0, contexts, scn)
        p_v = self._field_pairs(1, contexts, scn)
        mu_q = q_lo + (q_hi - q_lo) * self._field_pairs(2, contexts, scn)
        return mu_u, p_v, mu_q

    def expected_compound_pairs(
        self, t: int, contexts: np.ndarray, scn_idx: np.ndarray
    ) -> np.ndarray:
        mu_u, p_v, mu_q = self.means_pairs(t, contexts, scn_idx)
        return mu_u * p_v / mu_q

    def realize(
        self,
        t: int,
        contexts: np.ndarray,
        scn_idx: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scn = np.asarray(scn_idx, dtype=np.int64)
        mu_u, p_v, mu_q = self.means(t, contexts)
        rows = np.arange(len(scn))
        mu_u, p_v, mu_q = mu_u[scn, rows], p_v[scn, rows], mu_q[scn, rows]
        u = np.clip(mu_u + rng.uniform(-self.u_noise, self.u_noise, size=mu_u.shape), 0.0, 1.0)
        v = (rng.random(size=p_v.shape) < p_v).astype(float)
        return u, v, mu_q.copy()

    def reward_bound(self) -> float:
        return 1.0 / float(self.q_range[0])


@dataclass
class DriftingTruth(GroundTruth):
    """Non-stationary U: the mean-reward table follows a bounded random walk.

    Wraps a :class:`PiecewiseConstantTruth`; each :meth:`advance` perturbs
    ``mu_u`` by N(0, drift²) per (SCN, cell) and reflects it back into
    ``u_range``.  V and Q stay stationary, as §3.2 requires.
    """

    base: PiecewiseConstantTruth = field(default_factory=PiecewiseConstantTruth)
    drift: float = 0.01

    def __post_init__(self) -> None:
        check_positive("drift", self.drift, strict=False)
        self.num_scns = self.base.num_scns
        self.dims = self.base.dims

    def means(self, t, contexts):
        return self.base.means(t, contexts)

    def expected_compound(self, t, contexts):
        return self.base.expected_compound(t, contexts)

    def means_pairs(self, t, contexts, scn_idx, *, cells=None):
        return self.base.means_pairs(t, contexts, scn_idx, cells=cells)

    def expected_compound_pairs(self, t, contexts, scn_idx, *, cells=None):
        return self.base.expected_compound_pairs(t, contexts, scn_idx, cells=cells)

    def slot_pair_stats(self, t, contexts, scn_idx, *, cells=None):
        return self.base.slot_pair_stats(t, contexts, scn_idx, cells=cells)

    def context_cells(self, contexts):
        return self.base.context_cells(contexts)

    def context_cells_token(self) -> tuple:
        return self.base.context_cells_token()

    def realize(self, t, contexts, scn_idx, rng, *, cells=None):
        return self.base.realize(t, contexts, scn_idx, rng, cells=cells)

    def advance(self, t: int, rng: np.random.Generator) -> None:
        lo, hi = self.base.u_range
        walked = self.base.mu_u + rng.normal(0.0, self.drift, size=self.base.mu_u.shape)
        # Reflect into [lo, hi].
        span = max(hi - lo, _EPS)
        folded = np.abs((walked - lo) % (2.0 * span))
        self.base.mu_u = lo + (span - np.abs(span - folded))

    def checkpoint_state(self) -> dict:
        return {"mu_u": self.base.mu_u.copy()}

    def restore_checkpoint_state(self, state: dict) -> None:
        mu_u = np.asarray(state["mu_u"], dtype=float)
        if mu_u.shape != self.base.mu_u.shape:
            raise ValueError(
                f"mu_u has shape {mu_u.shape}, expected {self.base.mu_u.shape}"
            )
        self.base.mu_u = mu_u.copy()

    def reward_bound(self) -> float:
        return self.base.reward_bound()


@dataclass
class RegimeSwitchTruth(GroundTruth):
    """Non-stationary U: mean rewards switch between two regimes.

    Holds two independent :class:`PiecewiseConstantTruth` parameter sets that
    share V and Q (copied from regime A); each slot the active regime flips
    with probability ``switch_prob``.
    """

    regime_a: PiecewiseConstantTruth = field(default_factory=lambda: PiecewiseConstantTruth(seed=0))
    regime_b: PiecewiseConstantTruth = field(default_factory=lambda: PiecewiseConstantTruth(seed=1))
    switch_prob: float = 0.001

    def __post_init__(self) -> None:
        require(0.0 <= self.switch_prob <= 1.0, "switch_prob must be in [0,1]")
        require(
            self.regime_a.num_scns == self.regime_b.num_scns
            and self.regime_a.dims == self.regime_b.dims
            and self.regime_a.cells_per_dim == self.regime_b.cells_per_dim,
            "regimes must share (num_scns, dims, cells_per_dim)",
        )
        # Share the stationary processes V and Q between regimes (§3.2).
        self.regime_b.p_v = self.regime_a.p_v
        self.regime_b.q_lo = self.regime_a.q_lo
        self.regime_b.q_hi = self.regime_a.q_hi
        self.num_scns = self.regime_a.num_scns
        self.dims = self.regime_a.dims
        self._active = self.regime_a

    @property
    def active_regime(self) -> str:
        """'a' or 'b' — which regime currently generates rewards."""
        return "a" if self._active is self.regime_a else "b"

    def means(self, t, contexts):
        return self._active.means(t, contexts)

    def expected_compound(self, t, contexts):
        return self._active.expected_compound(t, contexts)

    def means_pairs(self, t, contexts, scn_idx, *, cells=None):
        return self._active.means_pairs(t, contexts, scn_idx, cells=cells)

    def expected_compound_pairs(self, t, contexts, scn_idx, *, cells=None):
        return self._active.expected_compound_pairs(t, contexts, scn_idx, cells=cells)

    def slot_pair_stats(self, t, contexts, scn_idx, *, cells=None):
        return self._active.slot_pair_stats(t, contexts, scn_idx, cells=cells)

    def context_cells(self, contexts):
        # Both regimes share (dims, cells_per_dim) — validated at init — so
        # the grid classification is regime-independent.
        return self.regime_a.context_cells(contexts)

    def context_cells_token(self) -> tuple:
        return self.regime_a.context_cells_token()

    def realize(self, t, contexts, scn_idx, rng, *, cells=None):
        return self._active.realize(t, contexts, scn_idx, rng, cells=cells)

    def advance(self, t: int, rng: np.random.Generator) -> None:
        if rng.random() < self.switch_prob:
            self._active = self.regime_b if self._active is self.regime_a else self.regime_a

    def checkpoint_state(self) -> dict:
        return {"active": self.active_regime}

    def restore_checkpoint_state(self, state: dict) -> None:
        active = state["active"]
        if active not in ("a", "b"):
            raise ValueError(f"active regime must be 'a' or 'b', got {active!r}")
        self._active = self.regime_a if active == "a" else self.regime_b

    def reward_bound(self) -> float:
        return max(self.regime_a.reward_bound(), self.regime_b.reward_bound())
