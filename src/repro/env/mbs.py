"""Macrocell base station (MBS) fallback offloading (paper §3.3).

"Since SCNs are deployed closer to WDs than MBS, they can provide
low-latency services and have higher priority in task offloading.  For
those tasks that are not selected by SCNs, they can be offloaded and
processed by MBS."

The MBS fallback is a *post-processing* layer: given a slot and the SCNs'
assignment, every covered-but-unselected task may be served by the MBS with

- an admission limit ``capacity`` (the MBS serves the whole cell and is
  itself shared, so only so many leftovers fit per slot);
- a reward discount ``reward_factor`` < 1 (longer backhaul + queueing means
  the same task is worth less when served late at the macrocell);
- a completion probability ``completion_prob`` (the sub-6 GHz macrocell
  link is reliable — blockage does not apply — but the task may still miss
  its deadline at the busy MBS).

The fallback never interacts with the SCN constraints (1a)-(1d); it models
the §3.3 discussion that rejected tasks are not lost, and lets experiments
report *system-wide* served reward in addition to the SCN objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.processes import GroundTruth
from repro.env.simulator import Assignment, SlotObservation
from repro.utils.validation import check_positive, check_probability

__all__ = ["MBSFallback", "MBSSlotResult"]


@dataclass(frozen=True)
class MBSSlotResult:
    """What the MBS served in one slot."""

    served_tasks: np.ndarray
    reward: float
    completed: float

    @property
    def num_served(self) -> int:
        return int(self.served_tasks.shape[0])


@dataclass
class MBSFallback:
    """Serve covered-but-unselected tasks at the macrocell.

    Parameters
    ----------
    capacity:
        Max leftover tasks the MBS admits per slot (paper: the MBS handles
        "tasks that do not restrict the latency but consume large amounts
        of computing resources").
    reward_factor:
        Multiplier on the realized reward for MBS-served tasks (< 1).
    completion_prob:
        Per-task completion probability at the MBS (reliable link, loaded
        server).
    """

    capacity: int = 50
    reward_factor: float = 0.5
    completion_prob: float = 0.95

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        check_probability("reward_factor", self.reward_factor)
        check_probability("completion_prob", self.completion_prob)

    def leftover_tasks(self, slot: SlotObservation, assignment: Assignment) -> np.ndarray:
        """Covered tasks no SCN selected, in index order."""
        covered = slot.covered_mask()
        taken = np.zeros(len(slot.tasks), dtype=bool)
        if len(assignment):
            taken[assignment.task] = True
        return np.flatnonzero(covered & ~taken)

    def serve(
        self,
        slot: SlotObservation,
        assignment: Assignment,
        truth: GroundTruth,
        rng: np.random.Generator,
    ) -> MBSSlotResult:
        """Admit up to ``capacity`` leftovers and realize their rewards.

        The MBS prefers large-input tasks (they gain most from the big
        server) when that metadata is available, else admits in index order.
        """
        leftovers = self.leftover_tasks(slot, assignment)
        if leftovers.size > self.capacity:
            inputs = slot.tasks.input_mbit
            if inputs is not None:
                order = np.argsort(-inputs[leftovers], kind="stable")
                leftovers = leftovers[order[: self.capacity]]
            else:
                leftovers = leftovers[: self.capacity]
        if leftovers.size == 0:
            return MBSSlotResult(served_tasks=leftovers, reward=0.0, completed=0.0)

        # The MBS sees the average over SCN-contexts: realize each task as if
        # served by a uniformly random SCN's parameter draw, discounted.
        scn = rng.integers(0, truth.num_scns, size=leftovers.size)
        u, _, q = truth.realize(slot.t, slot.tasks.contexts[leftovers], scn, rng)
        v = (rng.random(leftovers.size) < self.completion_prob).astype(float)
        reward = float((self.reward_factor * u * v / q).sum())
        return MBSSlotResult(
            served_tasks=leftovers, reward=reward, completed=float(v.sum())
        )
