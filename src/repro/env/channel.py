"""mmWave blockage dynamics (paper §1, §3.2).

5G mmWave links between SCNs and WDs are prone to blockage due to weak
diffraction; when a link is blocked mid-execution the task is interrupted and
yields no reward.  The baseline evaluation folds all link instability into
the Bernoulli completion likelihood V, but the paper motivates V explicitly
with blockage, so we also provide a *dynamic* channel layer:

- :class:`MarkovBlockage` — each (SCN, everything-in-coverage) link follows a
  two-state Gilbert-Elliott Markov chain (UP/BLOCKED).  A task assigned over
  a blocked link fails regardless of V's draw.  This produces temporally
  correlated failures, a strictly harsher environment than i.i.d. V, and is
  used by the robustness example and failure-injection tests.

A channel multiplies into the completion indicator: ``v_final = v · link_up``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = ["BlockageChannel", "MarkovBlockage", "AlwaysUpChannel"]


class BlockageChannel(ABC):
    """Per-slot link availability between SCNs and tasks."""

    @abstractmethod
    def link_up(
        self, t: int, scn_idx: np.ndarray, task_idx: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a {0.0, 1.0} array: is the (scn, task) link unblocked?"""

    def advance(self, t: int, rng: np.random.Generator) -> None:
        """Advance channel state to the next slot."""


class AlwaysUpChannel(BlockageChannel):
    """The identity channel: link instability lives entirely in V (default)."""

    def link_up(self, t, scn_idx, task_idx, rng):
        return np.ones(len(np.asarray(scn_idx)), dtype=float)


@dataclass
class MarkovBlockage(BlockageChannel):
    """Gilbert-Elliott blockage per SCN.

    Each SCN's radio environment is either UP or BLOCKED for the whole slot
    (beam-level blockage affects all of that SCN's links similarly, e.g. a bus
    parking in front of the pole-mounted node).

    Parameters
    ----------
    num_scns:
        Number of SCNs.
    p_block:
        P(UP -> BLOCKED) per slot.
    p_recover:
        P(BLOCKED -> UP) per slot.

    The stationary blockage probability is ``p_block/(p_block+p_recover)``.
    """

    num_scns: int = 30
    p_block: float = 0.05
    p_recover: float = 0.5

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        require(0.0 <= self.p_block <= 1.0, f"p_block in [0,1], got {self.p_block}")
        require(0.0 <= self.p_recover <= 1.0, f"p_recover in [0,1], got {self.p_recover}")
        self._blocked = np.zeros(self.num_scns, dtype=bool)

    @property
    def blocked(self) -> np.ndarray:
        """Current per-SCN blocked state (copy)."""
        return self._blocked.copy()

    def stationary_block_probability(self) -> float:
        """Long-run fraction of slots a SCN spends blocked."""
        denom = self.p_block + self.p_recover
        return self.p_block / denom if denom > 0 else 0.0

    def link_up(self, t, scn_idx, task_idx, rng):
        scn = np.asarray(scn_idx, dtype=np.int64)
        return (~self._blocked[scn]).astype(float)

    def advance(self, t: int, rng: np.random.Generator) -> None:
        draws = rng.random(self.num_scns)
        newly_blocked = ~self._blocked & (draws < self.p_block)
        newly_up = self._blocked & (draws < self.p_recover)
        self._blocked = (self._blocked | newly_blocked) & ~newly_up

    # -- checkpoint hooks (repro-checkpoint/v1, DESIGN.md §10) ---------------

    def checkpoint_state(self) -> dict:
        """Markov chain state (the per-SCN blocked flags, as int8)."""
        return {"blocked": self._blocked.astype(np.int8)}

    def restore_checkpoint_state(self, state: dict) -> None:
        self._blocked = np.asarray(state["blocked"]).astype(bool).copy()
