"""SCN/WD placement, coverage sets, and mobility (paper §3.1, Fig. 1).

The learner only ever sees, per slot t, the coverage sets D_{m,t}: which
tasks lie inside each small-cell node's coverage area.  Two coverage models
are provided:

- :class:`CoverageSampler` matches the paper's evaluation setup directly: the
  number of WDs appearing in each SCN's coverage area "varies randomly in
  interval [35, 100] in each time slot", with tasks drawn from a shared pool
  so that a WD may be covered by multiple SCNs (overlap is a parameter).
- :class:`GeometricCoverage` implements the physical picture of Fig. 1: SCNs
  on a grid over a service area, WDs moving by a random-waypoint process, and
  coverage = "within radius r".  This model produces spatially correlated
  overlap and is used by the mobility example and property tests.

Both return, per slot, the number of tasks n_t and a list of M integer index
arrays (the coverage sets).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = [
    "CoverageModel",
    "CoverageSampler",
    "GeometricCoverage",
    "random_waypoint_step",
]


class CoverageModel(ABC):
    """Produces per-slot coverage sets D_{m,t}."""

    #: number of SCNs M
    num_scns: int

    @abstractmethod
    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        """Sample one slot's coverage.

        Returns
        -------
        (n_tasks, coverage):
            ``n_tasks`` is the total number of distinct tasks in the network
            this slot; ``coverage[m]`` is a sorted int array of task indices
            in ``range(n_tasks)`` that SCN ``m`` covers.
        """

    def max_coverage_size(self) -> int:
        """Upper bound K_m on |D_{m,t}| (needed by learning-rate formulae)."""
        raise NotImplementedError


@dataclass
class CoverageSampler(CoverageModel):
    """Direct coverage sampler matching the paper's evaluation (§5).

    Each slot, SCN m draws |D_{m,t}| ~ UniformInt[k_min, k_max] and fills its
    coverage set by sampling without replacement from a global task pool.
    The pool size is ``round(sum_m |D_{m,t}| / overlap)`` so a task is covered
    by ``overlap`` SCNs on average (subject to the pool being at least as
    large as the largest single coverage set).

    Parameters
    ----------
    num_scns:
        Number of SCNs M (paper: 30).
    k_min, k_max:
        Range of per-SCN coverage sizes (paper: 35, 100).
    overlap:
        Mean number of SCNs covering one task; must be >= 1.  ``overlap=1``
        makes coverage sets disjoint in expectation.
    """

    num_scns: int = 30
    k_min: int = 35
    k_max: int = 100
    overlap: float = 2.0

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        require(0 < self.k_min <= self.k_max, f"need 0 < k_min <= k_max, got ({self.k_min}, {self.k_max})")
        require(self.overlap >= 1.0, f"overlap must be >= 1, got {self.overlap}")

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        sizes = rng.integers(self.k_min, self.k_max + 1, size=self.num_scns)
        n_tasks = max(int(round(sizes.sum() / self.overlap)), int(sizes.max()))
        coverage = [
            np.sort(rng.choice(n_tasks, size=int(k), replace=False)) for k in sizes
        ]
        return n_tasks, coverage

    def max_coverage_size(self) -> int:
        return self.k_max


@dataclass
class GeometricCoverage(CoverageModel):
    """Physical coverage: SCNs on a grid, WDs moving in the service area.

    Parameters
    ----------
    num_scns:
        Number of SCNs; placed on the most-square grid covering the area.
    num_wds:
        Number of wireless devices, each submitting one task per slot.
    area_km:
        Side length of the square service area in km.
    radius_km:
        Coverage radius of a SCN in km (paper §1: small cells cover up to
        ~2 km; dense urban deployments are much smaller).
    speed_km:
        Maximum per-slot WD displacement (random-waypoint step size).
    """

    num_scns: int = 30
    num_wds: int = 900
    area_km: float = 10.0
    radius_km: float = 2.0
    speed_km: float = 0.25

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("num_wds", self.num_wds)
        check_positive("area_km", self.area_km)
        check_positive("radius_km", self.radius_km)
        check_positive("speed_km", self.speed_km, strict=False)
        self._scn_xy = _grid_positions(self.num_scns, self.area_km)
        self._wd_xy: np.ndarray | None = None

    @property
    def scn_positions(self) -> np.ndarray:
        """``(M, 2)`` SCN coordinates in km."""
        return self._scn_xy.copy()

    @property
    def wd_positions(self) -> np.ndarray | None:
        """Current ``(num_wds, 2)`` WD coordinates (None before first slot)."""
        return None if self._wd_xy is None else self._wd_xy.copy()

    def reset(self) -> None:
        """Forget WD positions; the next slot re-initializes them uniformly."""
        self._wd_xy = None

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        if self._wd_xy is None:
            self._wd_xy = rng.uniform(0.0, self.area_km, size=(self.num_wds, 2))
        else:
            self._wd_xy = random_waypoint_step(
                self._wd_xy, self.speed_km, self.area_km, rng
            )
        # Pairwise squared distances SCN x WD, vectorized via broadcasting.
        diff = self._scn_xy[:, None, :] - self._wd_xy[None, :, :]
        within = np.einsum("mnd,mnd->mn", diff, diff) <= self.radius_km**2
        coverage = [np.flatnonzero(within[m]) for m in range(self.num_scns)]
        return self.num_wds, coverage

    def max_coverage_size(self) -> int:
        return self.num_wds


def random_waypoint_step(
    positions: np.ndarray,
    max_step: float,
    area: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One random-waypoint mobility step, reflected at the area boundary.

    Each WD moves a uniform-random distance in [0, max_step] in a uniform
    random direction; positions are reflected back into [0, area]^2.
    """
    n = positions.shape[0]
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    steps = rng.uniform(0.0, max_step, size=n)
    moved = positions + steps[:, None] * np.column_stack([np.cos(angles), np.sin(angles)])
    # Reflect at boundaries: fold the coordinate line at 0 and `area`.
    folded = np.abs(moved)
    folded = area - np.abs(area - (folded % (2.0 * area)))
    return folded


def _grid_positions(count: int, area: float) -> np.ndarray:
    """Place ``count`` points on the most-square grid covering [0, area]^2."""
    cols = int(np.ceil(np.sqrt(count)))
    rows = int(np.ceil(count / cols))
    xs = (np.arange(cols) + 0.5) * (area / cols)
    ys = (np.arange(rows) + 0.5) * (area / rows)
    grid = np.array([(x, y) for y in ys for x in xs])
    return grid[:count]
