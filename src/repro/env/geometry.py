"""SCN/WD placement, coverage sets, and mobility (paper §3.1, Fig. 1).

The learner only ever sees, per slot t, the coverage sets D_{m,t}: which
tasks lie inside each small-cell node's coverage area.  Two coverage models
are provided:

- :class:`CoverageSampler` matches the paper's evaluation setup directly: the
  number of WDs appearing in each SCN's coverage area "varies randomly in
  interval [35, 100] in each time slot", with tasks drawn from a shared pool
  so that a WD may be covered by multiple SCNs (overlap is a parameter).
- :class:`GeometricCoverage` implements the physical picture of Fig. 1: SCNs
  on a grid over a service area, WDs moving by a random-waypoint process, and
  coverage = "within radius r".  This model produces spatially correlated
  overlap and is used by the mobility example and property tests.

Both return, per slot, the number of tasks n_t and a list of M integer index
arrays (the coverage sets).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = [
    "CoverageModel",
    "CoverageSampler",
    "GeometricCoverage",
    "TrajectoryMobility",
    "random_waypoint_step",
]


class CoverageModel(ABC):
    """Produces per-slot coverage sets D_{m,t}."""

    #: number of SCNs M
    num_scns: int

    @abstractmethod
    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        """Sample one slot's coverage.

        Returns
        -------
        (n_tasks, coverage):
            ``n_tasks`` is the total number of distinct tasks in the network
            this slot; ``coverage[m]`` is a sorted int array of task indices
            in ``range(n_tasks)`` that SCN ``m`` covers.
        """

    def max_coverage_size(self) -> int:
        """Upper bound K_m on |D_{m,t}| (needed by learning-rate formulae)."""
        raise NotImplementedError


@dataclass
class CoverageSampler(CoverageModel):
    """Direct coverage sampler matching the paper's evaluation (§5).

    Each slot, SCN m draws |D_{m,t}| ~ UniformInt[k_min, k_max] and fills its
    coverage set by sampling without replacement from a global task pool.
    The pool size is ``round(sum_m |D_{m,t}| / overlap)`` so a task is covered
    by ``overlap`` SCNs on average (subject to the pool being at least as
    large as the largest single coverage set).

    Parameters
    ----------
    num_scns:
        Number of SCNs M (paper: 30).
    k_min, k_max:
        Range of per-SCN coverage sizes (paper: 35, 100).
    overlap:
        Mean number of SCNs covering one task; must be >= 1.  ``overlap=1``
        makes coverage sets disjoint in expectation.
    """

    num_scns: int = 30
    k_min: int = 35
    k_max: int = 100
    overlap: float = 2.0

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        require(0 < self.k_min <= self.k_max, f"need 0 < k_min <= k_max, got ({self.k_min}, {self.k_max})")
        require(self.overlap >= 1.0, f"overlap must be >= 1, got {self.overlap}")

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        sizes = rng.integers(self.k_min, self.k_max + 1, size=self.num_scns)
        n_tasks = max(int(round(sizes.sum() / self.overlap)), int(sizes.max()))
        coverage = [
            np.sort(rng.choice(n_tasks, size=int(k), replace=False)) for k in sizes
        ]
        return n_tasks, coverage

    def max_coverage_size(self) -> int:
        return self.k_max


@dataclass
class GeometricCoverage(CoverageModel):
    """Physical coverage: SCNs on a grid, WDs moving in the service area.

    Parameters
    ----------
    num_scns:
        Number of SCNs; placed on the most-square grid covering the area.
    num_wds:
        Number of wireless devices, each submitting one task per slot.
    area_km:
        Side length of the square service area in km.
    radius_km:
        Coverage radius of a SCN in km (paper §1: small cells cover up to
        ~2 km; dense urban deployments are much smaller).
    speed_km:
        Maximum per-slot WD displacement (random-waypoint step size).
    """

    num_scns: int = 30
    num_wds: int = 900
    area_km: float = 10.0
    radius_km: float = 2.0
    speed_km: float = 0.25

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("num_wds", self.num_wds)
        check_positive("area_km", self.area_km)
        check_positive("radius_km", self.radius_km)
        check_positive("speed_km", self.speed_km, strict=False)
        self._scn_xy = _grid_positions(self.num_scns, self.area_km)
        self._wd_xy: np.ndarray | None = None

    @property
    def scn_positions(self) -> np.ndarray:
        """``(M, 2)`` SCN coordinates in km."""
        return self._scn_xy.copy()

    @property
    def wd_positions(self) -> np.ndarray | None:
        """Current ``(num_wds, 2)`` WD coordinates (None before first slot)."""
        return None if self._wd_xy is None else self._wd_xy.copy()

    def reset(self) -> None:
        """Forget WD positions; the next slot re-initializes them uniformly."""
        self._wd_xy = None

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        if self._wd_xy is None:
            self._wd_xy = rng.uniform(0.0, self.area_km, size=(self.num_wds, 2))
        else:
            self._wd_xy = random_waypoint_step(
                self._wd_xy, self.speed_km, self.area_km, rng
            )
        # Pairwise squared distances SCN x WD, vectorized via broadcasting.
        diff = self._scn_xy[:, None, :] - self._wd_xy[None, :, :]
        within = np.einsum("mnd,mnd->mn", diff, diff) <= self.radius_km**2
        coverage = [np.flatnonzero(within[m]) for m in range(self.num_scns)]
        return self.num_wds, coverage

    def max_coverage_size(self) -> int:
        return self.num_wds

    # -- checkpoint hooks (repro-checkpoint/v1, DESIGN.md §10) ---------------

    def state_dict(self) -> dict:
        """Mobility state beyond what ``reset`` rebuilds (WD positions)."""
        if self._wd_xy is None:
            return {"initialized": 0}
        return {"initialized": 1, "wd_xy": self._wd_xy.copy()}

    def restore_state(self, state: dict) -> None:
        if int(state.get("initialized", 0)):
            self._wd_xy = np.asarray(state["wd_xy"], dtype=float).copy()
        else:
            self._wd_xy = None


@dataclass
class TrajectoryMobility(CoverageModel):
    """Vehicular mobility: WDs ride a Manhattan road grid past grid SCNs.

    The service area carries ``roads_per_axis`` horizontal and vertical
    roads (evenly spaced lines); each vehicle occupies one road, moves along
    it at a per-vehicle constant speed, and at every slot may turn onto the
    nearest crossing road with probability ``turn_prob``.  Roads wrap around
    the area (torus), so the fleet density stays stationary while individual
    vehicles sweep through SCN coverage discs quickly — the fast-handover
    regime that stresses an adaptive context partition.

    Per-slot RNG draws are *fixed-count* (two vectorized draws per step,
    five at initialization) regardless of which vehicles turn, keeping the
    stream layout independent of the trajectory realization.

    Parameters
    ----------
    num_scns:
        Number of SCNs; placed on the most-square grid covering the area.
    num_vehicles:
        Number of vehicles, each submitting one task per slot.
    area_km:
        Side length of the square service area in km.
    radius_km:
        SCN coverage radius in km.
    roads_per_axis:
        Horizontal and vertical road count (>= 1 each).
    speed_min_km, speed_max_km:
        Per-vehicle constant speed range in km per slot.
    turn_prob:
        Per-slot probability a vehicle turns at the nearest intersection.
    """

    num_scns: int = 30
    num_vehicles: int = 600
    area_km: float = 10.0
    radius_km: float = 2.0
    roads_per_axis: int = 4
    speed_min_km: float = 0.1
    speed_max_km: float = 0.4
    turn_prob: float = 0.2

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("num_vehicles", self.num_vehicles)
        check_positive("area_km", self.area_km)
        check_positive("radius_km", self.radius_km)
        check_positive("roads_per_axis", self.roads_per_axis)
        require(
            0.0 <= self.speed_min_km <= self.speed_max_km,
            f"need 0 <= speed_min <= speed_max, got ({self.speed_min_km}, {self.speed_max_km})",
        )
        require(0.0 <= self.turn_prob <= 1.0, f"turn_prob in [0,1], got {self.turn_prob}")
        self._scn_xy = _grid_positions(self.num_scns, self.area_km)
        self._axis: np.ndarray | None = None  # 0 = horizontal road, 1 = vertical
        self._road: np.ndarray | None = None  # road line index on that axis
        self._pos: np.ndarray | None = None  # coordinate along the road
        self._dir: np.ndarray | None = None  # +1 / -1
        self._speed: np.ndarray | None = None

    @property
    def scn_positions(self) -> np.ndarray:
        """``(M, 2)`` SCN coordinates in km."""
        return self._scn_xy.copy()

    def _road_coord(self, index: np.ndarray) -> np.ndarray:
        """Line coordinate of road ``index`` (spacing-centered)."""
        return (index + 0.5) * (self.area_km / self.roads_per_axis)

    def vehicle_positions(self) -> np.ndarray | None:
        """Current ``(num_vehicles, 2)`` coordinates (None before first slot)."""
        if self._axis is None:
            return None
        along = self._pos
        across = self._road_coord(self._road)
        x = np.where(self._axis == 0, along, across)
        y = np.where(self._axis == 0, across, along)
        return np.column_stack([x, y])

    def reset(self) -> None:
        """Forget the fleet; the next slot re-initializes it from the stream."""
        self._axis = None
        self._road = None
        self._pos = None
        self._dir = None
        self._speed = None

    def _initialize(self, rng: np.random.Generator) -> None:
        n = self.num_vehicles
        self._axis = rng.integers(0, 2, size=n).astype(np.int64)
        self._road = rng.integers(0, self.roads_per_axis, size=n).astype(np.int64)
        self._pos = rng.uniform(0.0, self.area_km, size=n)
        self._dir = (rng.integers(0, 2, size=n) * 2 - 1).astype(np.int64)
        self._speed = rng.uniform(self.speed_min_km, self.speed_max_km, size=n)

    def _step(self, rng: np.random.Generator) -> None:
        # Fixed-count draws: every vehicle draws its turn test, its
        # prospective new direction, and nothing else — which vehicles
        # actually turn never changes how much stream is consumed.
        turn_draw = rng.random(self.num_vehicles)
        dir_draw = (rng.integers(0, 2, size=self.num_vehicles) * 2 - 1).astype(np.int64)
        spacing = self.area_km / self.roads_per_axis
        turning = turn_draw < self.turn_prob

        # Advance everyone along their current road (torus wrap).
        self._pos = (self._pos + self._dir * self._speed) % self.area_km

        if turning.any():
            # Turners snap to the nearest intersection: their along-road
            # coordinate becomes the crossing road's index on the *other*
            # axis, and their new along-road coordinate is their old road's
            # line position.
            cross = np.clip(
                np.round(self._pos[turning] / spacing - 0.5).astype(np.int64),
                0,
                self.roads_per_axis - 1,
            )
            old_line = self._road_coord(self._road[turning])
            self._road[turning] = cross
            self._pos[turning] = old_line
            self._axis[turning] = 1 - self._axis[turning]
            self._dir[turning] = dir_draw[turning]

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        if self._axis is None:
            self._initialize(rng)
        else:
            self._step(rng)
        xy = self.vehicle_positions()
        diff = self._scn_xy[:, None, :] - xy[None, :, :]
        within = np.einsum("mnd,mnd->mn", diff, diff) <= self.radius_km**2
        coverage = [np.flatnonzero(within[m]) for m in range(self.num_scns)]
        return self.num_vehicles, coverage

    def max_coverage_size(self) -> int:
        return self.num_vehicles

    # -- checkpoint hooks (repro-checkpoint/v1, DESIGN.md §10) ---------------

    def state_dict(self) -> dict:
        """Fleet state (road/axis/position/direction/speed arrays)."""
        if self._axis is None:
            return {"initialized": 0}
        return {
            "initialized": 1,
            "axis": self._axis.copy(),
            "road": self._road.copy(),
            "pos": self._pos.copy(),
            "dir": self._dir.copy(),
            "speed": self._speed.copy(),
        }

    def restore_state(self, state: dict) -> None:
        if not int(state.get("initialized", 0)):
            self.reset()
            return
        self._axis = np.asarray(state["axis"], dtype=np.int64).copy()
        self._road = np.asarray(state["road"], dtype=np.int64).copy()
        self._pos = np.asarray(state["pos"], dtype=float).copy()
        self._dir = np.asarray(state["dir"], dtype=np.int64).copy()
        self._speed = np.asarray(state["speed"], dtype=float).copy()


def random_waypoint_step(
    positions: np.ndarray,
    max_step: float,
    area: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One random-waypoint mobility step, reflected at the area boundary.

    Each WD moves a uniform-random distance in [0, max_step] in a uniform
    random direction; positions are reflected back into [0, area]^2.
    """
    n = positions.shape[0]
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    steps = rng.uniform(0.0, max_step, size=n)
    moved = positions + steps[:, None] * np.column_stack([np.cos(angles), np.sin(angles)])
    # Reflect at boundaries: fold the coordinate line at 0 and `area`.
    folded = np.abs(moved)
    folded = area - np.abs(area - (folded % (2.0 * area)))
    return folded


def _grid_positions(count: int, area: float) -> np.ndarray:
    """Place ``count`` points on the most-square grid covering [0, area]^2."""
    cols = int(np.ceil(np.sqrt(count)))
    rows = int(np.ceil(count / cols))
    xs = (np.arange(cols) + 0.5) * (area / cols)
    ys = (np.arange(rows) + 0.5) * (area / rows)
    grid = np.array([(x, y) for y in ys for x in xs])
    return grid[:count]
