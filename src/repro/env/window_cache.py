"""Cross-run window cache: precompute each environment's windows once.

Sweeps replay the *same* environment many times — every α point of a fig3
sweep, every policy of a line-up, and every engine variant re-derives the
identical workload stream (stream contract v2: environment streams are
namespaced independently of the policy, :mod:`repro.utils.rng`) and then
re-runs :func:`~repro.env.window.precompute_window` from scratch.  This
module memoizes those windows:

- the cache key is **content-addressed over the window's inputs**: the
  workload stream's :func:`~repro.utils.rng.stream_token`, the workload's
  value token (``cache_token``), the partition's value token, the truth's
  grid-classification token, and ``(t0, count)``.  Anything that could
  change a single byte of the window changes the key, so stale hits are
  impossible by construction — the same soundness argument as the solver
  cache (DESIGN.md §8);
- a hit must leave the *live* streams exactly where a cold generation would
  have: each entry stores the workload RNG's post-window ``bit_generator``
  state and the workload's id-counter cursor, and :func:`cached_window`
  restores both — so a run that hits for some windows and misses for others
  is still bit-identical to a fully cold run;
- windows are pure *derived* data (no draw happens outside ``sample_slots``),
  so sharing the same :class:`PrecomputedSlot` objects across sweep points,
  policies, and engines is sound as long as consumers treat slots as
  read-only — which every policy already does (slots are frozen dataclasses).

Cross-process sharing rides the existing shm transport
(:mod:`repro.utils.shm`): :func:`export_window_state` packs the process-wide
cache's entries into one shared-memory block, workers graft them into their
own process-local cache via :func:`import_window_state`, and the parent
unlinks the block after the sweep (:func:`release_window_state`).

Eviction is a total-slot budget with keep-first insertion (not LRU: sweeps
re-walk windows in ``t`` order, the access pattern LRU is worst at).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.env.window import SlotWindow, precompute_window
from repro.env.workload import Workload
from repro.obs.metrics import global_registry
from repro.utils import shm as shm_transport
from repro.utils.rng import RngFactory, stream_token
from repro.utils.validation import check_positive

__all__ = [
    "WindowCache",
    "cached_window",
    "export_window_state",
    "import_window_state",
    "partition_token",
    "prefill_windows",
    "release_window_state",
    "reset_shared_window_cache",
    "shared_window_cache",
    "window_key_base",
]

#: Default total-slot budget of the process-wide cache.  A full paper-scale
#: replication is 10,000 slots; the default holds several replications'
#: windows (per distinct partition) before new entries are refused.
DEFAULT_MAX_SLOTS = 200_000


def partition_token(partition: object | None) -> tuple | None:
    """Value token of a context partition (cache key component).

    Keyed by ``repr`` — a value repr for the frozen
    :class:`~repro.core.hypercube.ContextPartition` — so the fresh partition
    object each :class:`ExperimentConfig` access constructs still shares
    entries with its equals.
    """
    if partition is None:
        return None
    return ("partition", type(partition).__qualname__, repr(partition))


def window_key_base(
    rngs: RngFactory, workload: Workload, truth: object, partition: object | None
) -> tuple | None:
    """The run-level key prefix all of a run's window keys share.

    Returns None when the run is not cacheable: the workload has no value
    token (stateful coverage, trace replay) or the truth classifies contexts
    without exposing a classification token.
    """
    token_fn = getattr(workload, "cache_token", None)
    workload_token = token_fn() if callable(token_fn) else None
    if workload_token is None:
        return None
    cells_token = None
    if getattr(truth, "context_cells", None) is not None:
        cells_fn = getattr(truth, "context_cells_token", None)
        if not callable(cells_fn):
            return None
        cells_token = cells_fn()
    return (
        stream_token(rngs.env_sequence("workload")),
        workload_token,
        partition_token(partition),
        cells_token,
    )


class WindowCache:
    """Maps window keys to ``(SlotWindow, rng_state, cursor)`` entries.

    ``rng_state`` is the workload generator's ``bit_generator.state`` *after*
    the window was drawn; ``cursor`` is the workload's non-RNG generation
    state at the same point (or None).  Both are restored on a hit so the
    live streams stay synchronized with a cold run (module docstring).
    """

    def __init__(self, *, max_slots: int = DEFAULT_MAX_SLOTS) -> None:
        check_positive("max_slots", max_slots)
        self.max_slots = int(max_slots)
        self.hits = 0
        self.misses = 0
        self.slots_cached = 0
        self._entries: dict[tuple, tuple[SlotWindow, dict, object]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> tuple[SlotWindow, dict, object] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            global_registry().counter("window.cache.miss").inc()
            return None
        self.hits += 1
        global_registry().counter("window.cache.hit").inc()
        return entry

    def put(self, key: tuple, window: SlotWindow, rng_state: dict, cursor: object) -> bool:
        """Insert keep-first; False when present already or over budget."""
        if key in self._entries:
            return False
        if self.slots_cached + len(window) > self.max_slots:
            global_registry().counter("window.cache.skip").inc()
            return False
        self._entries[key] = (window, rng_state, cursor)
        self.slots_cached += len(window)
        return True

    def merge(self, entries: list[tuple[tuple, SlotWindow, dict, object]]) -> int:
        """Graft exported entries (existing keys win); returns insert count."""
        added = 0
        for key, window, rng_state, cursor in entries:
            if self.put(key, window, rng_state, cursor):
                added += 1
        return added

    def entries(self) -> list[tuple[tuple, SlotWindow, dict, object]]:
        return [(k, w, s, c) for k, (w, s, c) in self._entries.items()]

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "slots_cached": self.slots_cached,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.slots_cached = 0


def cached_window(
    cache: WindowCache,
    workload: Workload,
    t0: int,
    count: int,
    rng: np.random.Generator,
    *,
    partition: object | None,
    context_cells: Callable[[np.ndarray], np.ndarray] | None,
    key_base: tuple,
) -> SlotWindow:
    """Serve window ``(t0, count)`` from ``cache``, generating on a miss.

    A hit restores the stored post-window RNG state and workload cursor —
    so later windows of the run (hit *or* miss) see exactly the stream
    positions a cold run would; a miss generates through
    :func:`precompute_window` and stores the window with its end states.
    """
    key = (key_base, int(t0), int(count))
    entry = cache.get(key)
    if entry is not None:
        window, rng_state, cursor = entry
        rng.bit_generator.state = rng_state
        if cursor is not None:
            workload.restore_cursor(cursor)  # type: ignore[attr-defined]
        return window
    window = precompute_window(
        workload, t0, count, rng, partition=partition, context_cells=context_cells
    )
    cursor_fn = getattr(workload, "cursor", None)
    cache.put(
        key,
        window,
        rng.bit_generator.state,
        cursor_fn() if callable(cursor_fn) else None,
    )
    return window


def prefill_windows(
    cache: WindowCache,
    workload: Workload,
    truth: object,
    seed: int | None | np.random.SeedSequence,
    horizon: int,
    window_size: int,
    *,
    partition: object | None = None,
) -> int:
    """Generate every window of one run configuration into ``cache``.

    Replays exactly the simulator's window schedule (windows of
    ``window_size`` slots, the last one truncated at ``horizon``) on the
    environment workload stream of ``seed``, so a subsequent
    :meth:`Simulation.run` with the same inputs hits on every window.
    Returns the number of slots walked (0 when the run is uncacheable).
    """
    check_positive("horizon", horizon)
    check_positive("window_size", window_size)
    rngs = RngFactory(seed)
    key_base = window_key_base(rngs, workload, truth, partition)
    if key_base is None:
        return 0
    reset = getattr(workload, "reset", None)
    if callable(reset):
        reset()
    rng = rngs.env("workload")
    context_cells = getattr(truth, "context_cells", None)
    t = 0
    while t < horizon:
        count = min(window_size, horizon - t)
        cached_window(
            cache, workload, t, count, rng,
            partition=partition, context_cells=context_cells, key_base=key_base,
        )
        t += count
    return t


# ---------------------------------------------------------------------------
# Process-wide instance and cross-process transport.
# ---------------------------------------------------------------------------

_SHARED: WindowCache | None = None

#: Shared-memory blocks this process already grafted, so a pool worker that
#: runs several items does not re-copy the same block per item.
_IMPORTED_BLOCKS: set[str] = set()


def shared_window_cache() -> WindowCache:
    """The process-wide cache (what ``ExperimentConfig.shared_window`` wires up)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = WindowCache()
    return _SHARED


def reset_shared_window_cache() -> None:
    """Drop the process-wide cache (tests and cold benchmark arms)."""
    global _SHARED
    _SHARED = None
    _IMPORTED_BLOCKS.clear()


def export_window_state() -> tuple | None:
    """Pack the process-wide cache for transport to worker processes.

    Returns an opaque picklable handle (or None when there is nothing to
    share).  The array payload travels through one shm block when the host
    supports it, and inline through the pickle pipe otherwise — grafted
    values are bit-identical either way, matching the result transport's
    guarantee.  The caller owns the handle and must call
    :func:`release_window_state` after the last import.
    """
    if _SHARED is None or len(_SHARED) == 0:
        return None
    values = _SHARED.entries()
    skeletons, name, manifest = shm_transport.pack_to_shm(values)
    if name is None:
        return ("inline", values)
    return ("shm", skeletons, name, manifest)


def import_window_state(handle: tuple | None) -> int:
    """Graft an exported handle into this process's shared cache."""
    if handle is None:
        return 0
    if handle[0] == "shm":
        _, skeletons, name, manifest = handle
        if name in _IMPORTED_BLOCKS:
            return 0
        entries = shm_transport.unpack_from_shm(skeletons, name, manifest, unlink=False)
        _IMPORTED_BLOCKS.add(name)
    else:
        entries = handle[1]
    return shared_window_cache().merge(entries)


def release_window_state(handle: tuple | None) -> None:
    """Free the shm block behind an exported handle (parent, after the sweep)."""
    if handle is not None and handle[0] == "shm":
        shm_transport.discard_block(handle[2])
