"""Workload statistics — verify a generated environment matches §5's spec.

When substituting synthetic workloads for the paper's data (DESIGN.md §2),
the substitution is only valid if the generated streams actually follow the
declared distributions.  :func:`workload_statistics` measures, over a sample
of slots: the per-SCN coverage-size distribution (paper: Uniform[35,100]),
the mean coverage overlap (how many SCNs cover a task), the raw feature
ranges, and the resource-type mix.  ``tests/env/test_stats.py`` pins the §5
values; experiment scripts can print the same numbers for any custom
workload before trusting results on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.workload import Workload
from repro.utils.validation import check_positive

__all__ = ["WorkloadStatistics", "workload_statistics"]


@dataclass(frozen=True)
class WorkloadStatistics:
    """Empirical summary of a workload over a sampled window."""

    slots_sampled: int
    coverage_size_min: float
    coverage_size_mean: float
    coverage_size_max: float
    overlap_mean: float
    covered_fraction: float
    tasks_per_slot_mean: float
    input_mbit_range: tuple[float, float] | None
    output_mbit_range: tuple[float, float] | None
    resource_mix: tuple[float, float, float] | None

    def rows(self) -> list[dict[str, float | str]]:
        """One-column-per-metric row (for format_table)."""
        row: dict[str, float | str] = {
            "slots": self.slots_sampled,
            "|D| min/mean/max": (
                f"{self.coverage_size_min:.0f}/{self.coverage_size_mean:.1f}/"
                f"{self.coverage_size_max:.0f}"
            ),
            "overlap": self.overlap_mean,
            "covered_frac": self.covered_fraction,
            "tasks_per_slot": self.tasks_per_slot_mean,
        }
        return [row]


def workload_statistics(
    workload: Workload,
    *,
    slots: int = 50,
    rng: np.random.Generator | None = None,
) -> WorkloadStatistics:
    """Sample ``slots`` slots and summarize the workload's empirical shape."""
    check_positive("slots", slots)
    rng = rng if rng is not None else np.random.default_rng(0)
    reset = getattr(workload, "reset", None)
    if callable(reset):
        reset()

    sizes: list[int] = []
    overlaps: list[float] = []
    covered_fracs: list[float] = []
    task_counts: list[int] = []
    in_lo = out_lo = np.inf
    in_hi = out_hi = -np.inf
    resource_counts = np.zeros(3)
    have_features = False

    for t in range(slots):
        slot = workload.slot(t, rng)
        n = len(slot.tasks)
        task_counts.append(n)
        degree = np.zeros(n, dtype=np.int64)
        for cov in slot.coverage:
            cov = np.asarray(cov)
            sizes.append(int(cov.size))
            degree[cov] += 1
        covered = degree > 0
        covered_fracs.append(float(covered.mean()) if n else 1.0)
        if covered.any():
            overlaps.append(float(degree[covered].mean()))
        if slot.tasks.input_mbit is not None:
            have_features = True
            in_lo = min(in_lo, float(slot.tasks.input_mbit.min()))
            in_hi = max(in_hi, float(slot.tasks.input_mbit.max()))
            out_lo = min(out_lo, float(slot.tasks.output_mbit.min()))
            out_hi = max(out_hi, float(slot.tasks.output_mbit.max()))
            resource_counts += np.bincount(slot.tasks.resource_type, minlength=3)

    mix = None
    if have_features and resource_counts.sum() > 0:
        mix = tuple(resource_counts / resource_counts.sum())  # type: ignore[assignment]
    return WorkloadStatistics(
        slots_sampled=slots,
        coverage_size_min=float(np.min(sizes)) if sizes else 0.0,
        coverage_size_mean=float(np.mean(sizes)) if sizes else 0.0,
        coverage_size_max=float(np.max(sizes)) if sizes else 0.0,
        overlap_mean=float(np.mean(overlaps)) if overlaps else 0.0,
        covered_fraction=float(np.mean(covered_fracs)),
        tasks_per_slot_mean=float(np.mean(task_counts)),
        input_mbit_range=(in_lo, in_hi) if have_features else None,
        output_mbit_range=(out_lo, out_hi) if have_features else None,
        resource_mix=mix,
    )
