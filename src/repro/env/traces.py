"""Workload trace persistence and richer arrival models.

The paper evaluates on distribution-sampled workloads ("real world data"
drawn from the §5 distributions).  Real deployments would replay measured
traces; this module provides:

- :func:`save_trace` / :func:`load_trace` — lossless JSONL persistence of
  recorded :class:`~repro.env.workload.SlotWorkload` sequences, so measured
  traces (or expensive synthetic ones) can be replayed across experiments
  and shared between machines;
- :class:`DiurnalCoverageSampler` — a time-varying coverage model whose
  per-SCN load follows a sinusoidal day/night profile (busy hour ≫ night),
  the standard first-order model of cellular demand;
- :class:`BurstyCoverageSampler` — a two-state (calm/burst) modulated
  sampler producing flash-crowd episodes.

Both samplers plug into :class:`~repro.env.workload.SyntheticWorkload`
wherever the paper's uniform sampler goes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.env.geometry import CoverageModel, CoverageSampler
from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload, TraceWorkload
from repro.utils.validation import check_positive, require

__all__ = [
    "save_trace",
    "load_trace",
    "DiurnalCoverageSampler",
    "BurstyCoverageSampler",
]


def _slot_to_record(slot: SlotWorkload) -> dict:
    tasks = slot.tasks
    record: dict = {
        "t": slot.t,
        "contexts": tasks.contexts.tolist(),
        "ids": tasks.ids.tolist(),
        "coverage": [np.asarray(c).tolist() for c in slot.coverage],
    }
    if tasks.input_mbit is not None:
        record["input_mbit"] = tasks.input_mbit.tolist()
    if tasks.output_mbit is not None:
        record["output_mbit"] = tasks.output_mbit.tolist()
    if tasks.resource_type is not None:
        record["resource_type"] = tasks.resource_type.tolist()
    return record


def _record_to_slot(record: dict) -> SlotWorkload:
    batch = TaskBatch(
        contexts=np.asarray(record["contexts"], dtype=float),
        ids=np.asarray(record["ids"], dtype=np.int64),
        input_mbit=(
            np.asarray(record["input_mbit"], dtype=float)
            if "input_mbit" in record
            else None
        ),
        output_mbit=(
            np.asarray(record["output_mbit"], dtype=float)
            if "output_mbit" in record
            else None
        ),
        resource_type=(
            np.asarray(record["resource_type"], dtype=np.int64)
            if "resource_type" in record
            else None
        ),
    )
    coverage = [np.asarray(c, dtype=np.int64) for c in record["coverage"]]
    return SlotWorkload(t=int(record["t"]), tasks=batch, coverage=coverage)


def save_trace(slots: Iterable[SlotWorkload], path: str | Path) -> Path:
    """Write slots as JSON-lines (one slot per line).  Returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for slot in slots:
            fh.write(json.dumps(_slot_to_record(slot)) + "\n")
    return path


def load_trace(path: str | Path) -> TraceWorkload:
    """Load a JSONL trace written by :func:`save_trace`."""
    path = Path(path)
    slots = [
        _record_to_slot(json.loads(line))
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    if not slots:
        raise ValueError(f"trace file {path} contains no slots")
    return TraceWorkload(slots=slots)


@dataclass
class DiurnalCoverageSampler(CoverageModel):
    """Sinusoidal day/night load on top of the paper's coverage sampler.

    The per-slot coverage size bounds oscillate between a night trough and a
    busy-hour peak with period ``period`` slots:

        k(t) ∈ [k_min·s(t), k_max·s(t)],  s(t) = 1 − depth·(1+cos(2πt/period))/2

    so ``depth=0`` recovers the stationary sampler and ``depth=0.8`` drops
    night load to 20% of the peak.
    """

    num_scns: int = 30
    k_min: int = 35
    k_max: int = 100
    overlap: float = 2.0
    period: int = 1000
    depth: float = 0.6

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        require(0.0 <= self.depth < 1.0, f"depth must be in [0,1), got {self.depth}")
        self._base = CoverageSampler(
            num_scns=self.num_scns,
            k_min=self.k_min,
            k_max=self.k_max,
            overlap=self.overlap,
        )
        self._t = 0

    def reset(self) -> None:
        self._t = 0

    def scale(self, t: int) -> float:
        """The load multiplier s(t) ∈ (0, 1]."""
        return 1.0 - self.depth * (1.0 + np.cos(2.0 * np.pi * t / self.period)) / 2.0

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        s = self.scale(self._t)
        self._t += 1
        scaled = CoverageSampler(
            num_scns=self.num_scns,
            k_min=max(1, int(round(self.k_min * s))),
            k_max=max(1, int(round(self.k_max * s))),
            overlap=self.overlap,
        )
        return scaled.sample_slot(rng)

    def max_coverage_size(self) -> int:
        return self.k_max


@dataclass
class BurstyCoverageSampler(CoverageModel):
    """Two-state modulated load: calm baseline with flash-crowd bursts.

    A Markov chain switches between CALM and BURST; in a burst, coverage
    bounds are multiplied by ``burst_factor`` (capped by the pool logic).
    Models the flash crowds small cells are deployed to absorb.
    """

    num_scns: int = 30
    k_min: int = 35
    k_max: int = 100
    overlap: float = 2.0
    p_burst: float = 0.01
    p_calm: float = 0.2
    burst_factor: float = 2.0

    def __post_init__(self) -> None:
        require(0.0 <= self.p_burst <= 1.0, "p_burst in [0,1]")
        require(0.0 <= self.p_calm <= 1.0, "p_calm in [0,1]")
        require(self.burst_factor >= 1.0, "burst_factor must be >= 1")
        self._bursting = False

    @property
    def bursting(self) -> bool:
        return self._bursting

    def reset(self) -> None:
        self._bursting = False

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        if self._bursting:
            if rng.random() < self.p_calm:
                self._bursting = False
        elif rng.random() < self.p_burst:
            self._bursting = True
        factor = self.burst_factor if self._bursting else 1.0
        sampler = CoverageSampler(
            num_scns=self.num_scns,
            k_min=int(round(self.k_min * factor)),
            k_max=int(round(self.k_max * factor)),
            overlap=self.overlap,
        )
        return sampler.sample_slot(rng)

    def max_coverage_size(self) -> int:
        return int(round(self.k_max * self.burst_factor))
