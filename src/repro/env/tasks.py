"""Struct-of-arrays task batches.

Up to M·K_m ≈ 3,000 candidate tasks appear per slot at paper scale, and the
simulation runs for 10,000 slots, so per-task Python objects would dominate
the run time.  Following the HPC guides we keep tasks in a struct-of-arrays
:class:`TaskBatch` — one NumPy array per field — so the learner's per-slot
math stays fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TaskBatch"]


@dataclass(frozen=True)
class TaskBatch:
    """A batch of tasks present in one time slot.

    Attributes
    ----------
    contexts:
        ``(n, D)`` float array of normalized contexts in Φ = [0,1]^D.
    ids:
        ``(n,)`` int array of globally unique task identifiers.
    input_mbit, output_mbit:
        ``(n,)`` float arrays of raw data sizes (for reporting; the learner
        only sees ``contexts``).
    resource_type:
        ``(n,)`` int array of :class:`repro.env.contexts.ResourceType` values.
    priority:
        Optional ``(n,)`` float array of scheduling priorities in [0, 1]
        (e.g. execution progress of multi-slot tasks, §3.3); policies may
        use it as a tie-breaking bonus, the plain evaluation leaves it None.
    """

    contexts: np.ndarray
    ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    input_mbit: np.ndarray = field(default=None)  # type: ignore[assignment]
    output_mbit: np.ndarray = field(default=None)  # type: ignore[assignment]
    resource_type: np.ndarray = field(default=None)  # type: ignore[assignment]
    priority: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        ctx = np.atleast_2d(np.asarray(self.contexts, dtype=float))
        object.__setattr__(self, "contexts", ctx)
        n = ctx.shape[0]
        if self.ids is None:
            object.__setattr__(self, "ids", np.arange(n, dtype=np.int64))
        else:
            ids = np.asarray(self.ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids shape {ids.shape} != ({n},)")
            object.__setattr__(self, "ids", ids)
        for name in ("input_mbit", "output_mbit", "priority"):
            arr = getattr(self, name)
            if arr is not None:
                arr = np.asarray(arr, dtype=float)
                if arr.shape != (n,):
                    raise ValueError(f"{name} shape {arr.shape} != ({n},)")
                object.__setattr__(self, name, arr)
        if self.resource_type is not None:
            rt = np.asarray(self.resource_type, dtype=np.int64)
            if rt.shape != (n,):
                raise ValueError(f"resource_type shape {rt.shape} != ({n},)")
            object.__setattr__(self, "resource_type", rt)

    def __len__(self) -> int:
        return self.contexts.shape[0]

    @property
    def n(self) -> int:
        """Number of tasks in the batch."""
        return self.contexts.shape[0]

    @property
    def dims(self) -> int:
        """Context dimensionality D."""
        return self.contexts.shape[1]

    def subset(self, indices: np.ndarray) -> "TaskBatch":
        """A new batch containing the tasks at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return TaskBatch(
            contexts=self.contexts[idx],
            ids=self.ids[idx],
            input_mbit=None if self.input_mbit is None else self.input_mbit[idx],
            output_mbit=None if self.output_mbit is None else self.output_mbit[idx],
            resource_type=None if self.resource_type is None else self.resource_type[idx],
            priority=None if self.priority is None else self.priority[idx],
        )

    @staticmethod
    def from_contexts(contexts: np.ndarray, start_id: int = 0) -> "TaskBatch":
        """Build a minimal batch from a context matrix alone."""
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        return TaskBatch(
            contexts=ctx,
            ids=np.arange(start_id, start_id + ctx.shape[0], dtype=np.int64),
        )
