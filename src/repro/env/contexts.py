"""Task context space and feature model (paper §3.2, §5).

A computing task is characterized by meta information — the size of the input
data uploaded from the wireless device (WD) to the small-cell node (SCN), the
size of the output data returned, and the type of computation resource it
needs (CPU, GPU, or both).  The paper summarizes this as the task's *context*
φ_i and assumes the context space is bounded so that, w.l.o.g., Φ = [0,1]^D.

The evaluation (§5) uses three dimensions:

- input data size, uniform in [5, 20] Mbit,
- output data size, uniform in [1, 4] Mbit,
- resource type, categorical over {CPU, GPU, BOTH}.

:class:`TaskFeatureModel` samples raw features and normalizes them into
Φ = [0,1]^3.  Categorical resource types map to evenly spaced points
{0, 1/2, 1} so that the uniform hypercube partition of the learner
(``h_T = 3`` by default) separates the three categories exactly, matching the
paper's "divide the input/output data size into three categories by default".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.utils.validation import check_interval, check_positive

__all__ = ["ResourceType", "ContextSpace", "TaskFeatureModel"]


class ResourceType(IntEnum):
    """Computation resource a task depends on (paper §5)."""

    CPU = 0
    GPU = 1
    BOTH = 2


@dataclass(frozen=True)
class ContextSpace:
    """The bounded context space Φ = [0,1]^dims.

    Parameters
    ----------
    dims:
        Number of context dimensions D (the paper's evaluation uses 3).
    names:
        Optional human-readable dimension names (for reports).
    """

    dims: int = 3
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        check_positive("dims", self.dims)
        if self.names and len(self.names) != self.dims:
            raise ValueError(
                f"names has {len(self.names)} entries but dims={self.dims}"
            )

    def contains(self, contexts: np.ndarray) -> np.ndarray:
        """Boolean mask of rows of ``contexts`` that lie inside [0,1]^D."""
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        if ctx.shape[1] != self.dims:
            raise ValueError(
                f"contexts have {ctx.shape[1]} dims, space has {self.dims}"
            )
        return np.all((ctx >= 0.0) & (ctx <= 1.0), axis=1)

    def clip(self, contexts: np.ndarray) -> np.ndarray:
        """Clip contexts into [0,1]^D (used to guard numerical round-off)."""
        return np.clip(np.asarray(contexts, dtype=float), 0.0, 1.0)


@dataclass(frozen=True)
class TaskFeatureModel:
    """Samples raw task features and normalizes them into Φ = [0,1]^3.

    Attributes
    ----------
    input_mbit:
        (lo, hi) range of the input data size in Mbit (paper: (5, 20)).
    output_mbit:
        (lo, hi) range of the output data size in Mbit (paper: (1, 4)).
    resource_probs:
        Probabilities of ResourceType (CPU, GPU, BOTH); default uniform.
    """

    input_mbit: tuple[float, float] = (5.0, 20.0)
    output_mbit: tuple[float, float] = (1.0, 4.0)
    resource_probs: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    space: ContextSpace = field(
        default_factory=lambda: ContextSpace(
            dims=3, names=("input_size", "output_size", "resource_type")
        )
    )

    def __post_init__(self) -> None:
        check_interval("input_mbit", self.input_mbit)
        check_interval("output_mbit", self.output_mbit)
        probs = np.asarray(self.resource_probs, dtype=float)
        if probs.shape != (3,) or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ValueError(
                f"resource_probs must be 3 non-negative values summing to 1, got {self.resource_probs}"
            )

    # -- sampling ---------------------------------------------------------

    def sample_features(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample raw features for ``n`` tasks.

        Returns
        -------
        (input_sizes, output_sizes, resource_types):
            input/output sizes in Mbit (float arrays) and resource types
            (int array of :class:`ResourceType` values).
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        inputs = rng.uniform(*self.input_mbit, size=n)
        outputs = rng.uniform(*self.output_mbit, size=n)
        resources = rng.choice(3, size=n, p=np.asarray(self.resource_probs))
        return inputs, outputs, resources

    def sample_contexts(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` normalized contexts in Φ = [0,1]^3."""
        inputs, outputs, resources = self.sample_features(n, rng)
        return self.normalize(inputs, outputs, resources)

    # -- normalization ----------------------------------------------------

    def normalize(
        self,
        input_sizes: np.ndarray,
        output_sizes: np.ndarray,
        resource_types: np.ndarray,
    ) -> np.ndarray:
        """Map raw features onto Φ = [0,1]^3.

        Continuous sizes are min-max scaled; the categorical resource type is
        mapped to {0, 1/2, 1} so a 3-way uniform partition separates the
        categories exactly.
        """
        in_lo, in_hi = self.input_mbit
        out_lo, out_hi = self.output_mbit
        x0 = (np.asarray(input_sizes, dtype=float) - in_lo) / max(in_hi - in_lo, 1e-12)
        x1 = (np.asarray(output_sizes, dtype=float) - out_lo) / max(out_hi - out_lo, 1e-12)
        x2 = np.asarray(resource_types, dtype=float) / 2.0
        ctx = np.column_stack([x0, x1, x2])
        return self.space.clip(ctx)

    def denormalize(self, contexts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`normalize` (resource type rounded back to category)."""
        ctx = np.atleast_2d(np.asarray(contexts, dtype=float))
        in_lo, in_hi = self.input_mbit
        out_lo, out_hi = self.output_mbit
        inputs = ctx[:, 0] * (in_hi - in_lo) + in_lo
        outputs = ctx[:, 1] * (out_hi - out_lo) + out_lo
        resources = np.rint(ctx[:, 2] * 2.0).astype(int)
        return inputs, outputs, resources
