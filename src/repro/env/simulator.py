"""The slot-by-slot offloading simulation loop (paper §3, §5).

Per slot t the loop is:

1. the workload emits the tasks present in the network and the coverage
   sets D_{m,t};
2. the policy (LFSC or a baseline) returns an :class:`Assignment` — which
   SCN, if any, each task is offloaded to — honouring the structural
   constraints (1a) capacity and (1b) no duplicate offloading;
3. the environment realizes the hidden processes (u, v, q) for the assigned
   pairs only (bandit feedback), applies the optional blockage channel, and
   computes the compound rewards g = u·v/q;
4. the recorder logs the slot's reward and the realized violations of the
   QoS constraint (1c) and the resource constraint (1d);
5. the policy receives the feedback and updates its internal state.

The policies never see the ground truth; the Oracle baseline receives a
:class:`GroundTruth` handle explicitly at construction, and the regret metric
uses the expected-reward series recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.env.channel import BlockageChannel
from repro.env.network import NetworkConfig
from repro.env.processes import GroundTruth
from repro.env.window import precompute_window
from repro.env.window_cache import cached_window, window_key_base
from repro.env.workload import SlotWorkload, Workload
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.utils.rng import RngFactory
from repro.utils.timing import monotonic
from repro.utils.validation import check_positive

__all__ = [
    "Assignment",
    "SlotFeedback",
    "SlotObservation",
    "PolicyProtocol",
    "Simulation",
    "SimulationResult",
    "DEFAULT_WINDOW",
]

#: Default slot-streaming window: slots are precomputed in batches of this
#: size when the workload and policy allow it (see :meth:`Simulation.run`).
DEFAULT_WINDOW = 32

# A policy observes exactly the public slot information.
SlotObservation = SlotWorkload


@dataclass(frozen=True)
class Assignment:
    """An offloading decision: ``task[j]`` is offloaded to ``scn[j]``.

    Invariants (validated by :meth:`validate`):

    - each task index appears at most once (constraint 1b);
    - each SCN index appears at most ``capacity`` times (constraint 1a);
    - every pair lies in the coverage relation.
    """

    scn: np.ndarray
    task: np.ndarray

    def __post_init__(self) -> None:
        scn = np.asarray(self.scn, dtype=np.int64).ravel()
        task = np.asarray(self.task, dtype=np.int64).ravel()
        if scn.shape != task.shape:
            raise ValueError(f"scn and task differ in length: {scn.shape} vs {task.shape}")
        object.__setattr__(self, "scn", scn)
        object.__setattr__(self, "task", task)

    def __len__(self) -> int:
        return int(self.scn.shape[0])

    @staticmethod
    def empty() -> "Assignment":
        return Assignment(scn=np.empty(0, dtype=np.int64), task=np.empty(0, dtype=np.int64))

    def validate(self, slot: SlotWorkload, capacity: int) -> None:
        """Raise ValueError if the assignment breaks (1a), (1b) or coverage."""
        if len(self) == 0:
            return
        n = len(slot.tasks)
        if self.task.min() < 0 or self.task.max() >= n:
            raise ValueError("assignment references task index outside the slot")
        if self.scn.min() < 0 or self.scn.max() >= slot.num_scns:
            raise ValueError("assignment references SCN index outside the network")
        if np.unique(self.task).size != self.task.size:
            raise ValueError("constraint (1b) violated: a task assigned to multiple SCNs")
        counts = np.bincount(self.scn, minlength=slot.num_scns)
        if counts.max(initial=0) > capacity:
            worst = int(np.argmax(counts))
            raise ValueError(
                f"constraint (1a) violated: SCN {worst} assigned {counts[worst]} > c={capacity}"
            )
        # Coverage membership for all pairs at once: encode (scn, task) as
        # scn·n + task, sort the coverage keys once, and check each pair by
        # sorted membership — one searchsorted instead of an isin per SCN.
        edges = getattr(slot, "edges", None)
        if edges is not None and edges.num_tasks == n:
            # Windowed slots carry the sorted key already (segments in SCN
            # order, tasks sorted within) — skip the rebuild + sort.
            cov_key = edges.key
            if cov_key.size == 0:
                raise ValueError(
                    f"SCN {int(self.scn.min())} assigned a task outside its coverage"
                )
            pair_key = self.scn * np.int64(n) + self.task
            pos = np.searchsorted(cov_key, pair_key)
            ok = cov_key[np.minimum(pos, cov_key.size - 1)] == pair_key
            if not ok.all():
                raise ValueError(
                    f"SCN {int(self.scn[~ok].min())} assigned a task outside its coverage"
                )
            return
        cov_parts = [np.asarray(c, dtype=np.int64) for c in slot.coverage]
        lengths = np.fromiter((c.shape[0] for c in cov_parts), dtype=np.int64, count=len(cov_parts))
        if lengths.sum() == 0:
            raise ValueError(
                f"SCN {int(self.scn.min())} assigned a task outside its coverage"
            )
        cov_key = np.repeat(np.arange(len(cov_parts), dtype=np.int64), lengths) * n
        cov_key += np.concatenate(cov_parts)
        cov_key.sort()
        pair_key = self.scn * np.int64(n) + self.task
        pos = np.searchsorted(cov_key, pair_key)
        ok = cov_key[np.minimum(pos, cov_key.size - 1)] == pair_key
        if not ok.all():
            raise ValueError(
                f"SCN {int(self.scn[~ok].min())} assigned a task outside its coverage"
            )

    def tasks_of(self, m: int) -> np.ndarray:
        """Task indices assigned to SCN ``m``."""
        return self.task[self.scn == m]


@dataclass(frozen=True)
class SlotFeedback:
    """Bandit feedback for one slot's assignment.

    Arrays are aligned with the assignment's pairs: ``u[j]``, ``v[j]``,
    ``q[j]`` are the realizations for pair ``(scn[j], task[j])`` and
    ``g = u·v/q`` is the realized compound reward.
    """

    assignment: Assignment
    u: np.ndarray
    v: np.ndarray
    q: np.ndarray
    g: np.ndarray

    def per_scn_completed(self, num_scns: int) -> np.ndarray:
        """Σ_i v_i per SCN — realized completed-task counts (for (1c))."""
        return np.bincount(self.assignment.scn, weights=self.v, minlength=num_scns)

    def per_scn_consumption(self, num_scns: int) -> np.ndarray:
        """Σ_i q_i per SCN — realized resource consumption (for (1d))."""
        return np.bincount(self.assignment.scn, weights=self.q, minlength=num_scns)

    def per_scn_reward(self, num_scns: int) -> np.ndarray:
        """Σ_i g_i per SCN — realized compound reward."""
        return np.bincount(self.assignment.scn, weights=self.g, minlength=num_scns)


@runtime_checkable
class PolicyProtocol(Protocol):
    """Structural interface every offloading policy implements."""

    name: str

    def reset(self, network: NetworkConfig, horizon: int, rng: np.random.Generator) -> None:
        """Prepare for a fresh run of ``horizon`` slots."""

    def select(self, slot: SlotObservation) -> Assignment:
        """Choose the slot's offloading assignment."""

    def update(self, slot: SlotObservation, feedback: SlotFeedback) -> None:
        """Consume bandit feedback for the assignment returned by select()."""


@dataclass
class SimulationResult:
    """Per-slot time series recorded by :class:`Simulation.run`.

    All series have length T (the horizon); per-SCN series have shape (T, M).

    Violations come in two bases:

    - ``violation_qos`` / ``violation_resource`` — the paper's V1/V2: per
      §3.2 these measure the *expected* completed-task count Σ v̄ and the
      expected consumption Σ q̄ of the selected set against α and β, so an
      Oracle meeting the constraints in expectation scores ~0 regardless of
      Bernoulli noise.  Available when ``record_expected=True`` (default).
    - ``violation_qos_realized`` / ``violation_resource_realized`` — the
      same shortfalls/excesses computed from the realized draws (Σ v_i,
      Σ q_i); these include irreducible realization noise and are what an
      operator would observe slot by slot.
    """

    policy_name: str
    horizon: int
    num_scns: int
    reward: np.ndarray
    expected_reward: np.ndarray
    completed: np.ndarray
    consumption: np.ndarray
    accepted: np.ndarray
    violation_qos: np.ndarray
    violation_resource: np.ndarray
    violation_qos_realized: np.ndarray | None = None
    violation_resource_realized: np.ndarray | None = None
    has_expected: bool = True
    #: Scenario-contributed per-slot series (e.g. sleep-mode ``"energy"``),
    #: exported by policies through a duck-typed ``result_extras()`` hook.
    extras: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The realized series default to the recorded violation series, so
        # both attributes are always ndarrays after construction.
        if self.violation_qos_realized is None:
            self.violation_qos_realized = self.violation_qos
        if self.violation_resource_realized is None:
            self.violation_resource_realized = self.violation_resource

    @property
    def cumulative_reward(self) -> np.ndarray:
        """Running total of realized compound reward (Fig. 2a series)."""
        return np.cumsum(self.reward)

    @property
    def cumulative_expected_reward(self) -> np.ndarray:
        """Running total of expected compound reward (regret input)."""
        return np.cumsum(self.expected_reward)

    @property
    def cumulative_violation_qos(self) -> np.ndarray:
        """Running total of Σ_m [α − E(completed)_m]₊ — the paper's V1."""
        return np.cumsum(self.violation_qos)

    @property
    def cumulative_violation_resource(self) -> np.ndarray:
        """Running total of Σ_m [E(consumption)_m − β]₊ — the paper's V2."""
        return np.cumsum(self.violation_resource)

    @property
    def total_reward(self) -> float:
        return float(self.reward.sum())

    @property
    def total_violations(self) -> float:
        """V1(T) + V2(T) on the paper's expected basis."""
        return float(self.violation_qos.sum() + self.violation_resource.sum())

    @property
    def total_violations_realized(self) -> float:
        """V1(T) + V2(T) computed from realized draws."""
        return float(
            self.violation_qos_realized.sum() + self.violation_resource_realized.sum()
        )

    def summary(self) -> dict[str, float]:
        """Headline scalars for tables and EXPERIMENTS.md."""
        total_viol = self.total_violations
        out = {
            "total_reward": self.total_reward,
            "total_expected_reward": float(self.expected_reward.sum()),
            "violation_qos": float(self.violation_qos.sum()),
            "violation_resource": float(self.violation_resource.sum()),
            "total_violations": total_viol,
            "total_violations_realized": self.total_violations_realized,
            "performance_ratio": self.total_reward / (1.0 + total_viol),
            "mean_accepted_per_scn": float(self.accepted.mean()),
            "mean_completed_per_scn": float(self.completed.mean()),
        }
        if "energy" in self.extras:
            # Sleep-mode scenarios: total energy spent and its cost per
            # offloading decision (see repro.metrics.energy).
            total_energy = float(np.asarray(self.extras["energy"]).sum())
            decisions = float(self.accepted.sum())
            out["total_energy"] = total_energy
            out["energy_per_decision"] = total_energy / max(decisions, 1.0)
        return out


@dataclass
class Simulation:
    """Binds a network, a workload, the hidden truth, and an optional channel.

    Parameters
    ----------
    network:
        Constraint constants (M, c, α, β).
    workload:
        Task/coverage generator; must agree with ``network.num_scns``.
    truth:
        Hidden ground truth of U, V, Q.
    channel:
        Optional dynamic blockage layer multiplying into v.
    seed:
        Root seed — an integer, ``None`` (fresh OS entropy), or a
        :class:`numpy.random.SeedSequence` (e.g. a replication child spawned
        under the frozen contract of :mod:`repro.utils.rng`).  Independent
        named streams are derived for the workload, the realizations, the
        channel, and the policy; the derivation depends only on the root
        seed and the stream names, never on process/worker topology, so a
        run is a pure function of ``(config, seed)``.
    validate_assignments:
        When True (default) every assignment is checked against (1a), (1b)
        and coverage — catching buggy policies at the slot they misbehave.
    solver_cache:
        Optional solver cache (:class:`repro.solvers.cache.SlotProblemCache`)
        handed to any policy exposing ``attach_solver_cache`` at the start
        of each run — the driver-side half of the Oracle caching layer
        (DESIGN.md §8).  Purely an accelerator: cached runs are bit-identical
        to cold runs, and windowed slots feed the cache their precomputed
        edge arrays through the same window loop.
    window_cache:
        Optional cross-run window cache
        (:class:`repro.env.window_cache.WindowCache`): windowed runs look
        each window up by a content-addressed key (environment stream token,
        workload/partition/grid value tokens, window bounds) before
        generating it, and a hit restores the stored post-window RNG state
        and workload cursor so the live streams stay where a cold run would
        leave them.  Bit-identical on or off; shared across policies, sweep
        points, and (via ``repro.env.window_cache.export_window_state``)
        worker processes.
    """

    network: NetworkConfig
    workload: Workload
    truth: GroundTruth
    channel: BlockageChannel | None = None
    seed: int | None | np.random.SeedSequence = 0
    validate_assignments: bool = True
    solver_cache: object | None = None
    window_cache: object | None = None

    def __post_init__(self) -> None:
        if self.workload.num_scns != self.network.num_scns:
            raise ValueError(
                f"workload has {self.workload.num_scns} SCNs, network expects {self.network.num_scns}"
            )
        if self.truth.num_scns != self.network.num_scns:
            raise ValueError(
                f"truth has {self.truth.num_scns} SCNs, network expects {self.network.num_scns}"
            )

    @staticmethod
    def _record_slot(
        ctx,
        policy: PolicyProtocol,
        t: int,
        assignment: Assignment,
        per_scn_assigned: np.ndarray,
        reward: float,
        expected_reward: float | None,
        violation_qos: float,
        violation_resource: float,
    ) -> None:
        """Assemble one slot's trace record (see ``repro.obs.trace.TRACE_SCHEMA``).

        Runs only when an obs context is installed; duals are read through a
        duck-typed ``policy.multipliers`` attribute so LFSC-family policies
        report them and multiplier-free baselines record null.
        """
        multipliers = getattr(policy, "multipliers", None)
        mult_qos = mult_res = None
        if multipliers is not None:
            mult_qos = np.asarray(multipliers.qos, dtype=float).tolist()
            mult_res = np.asarray(multipliers.resource, dtype=float).tolist()
        ctx.end_slot(
            {
                "t": t,
                "policy": policy.name,
                "assigned": len(assignment),
                "per_scn_assigned": per_scn_assigned.tolist(),
                "reward": reward,
                "expected_reward": expected_reward,
                "violation_qos": violation_qos,
                "violation_resource": violation_resource,
                "multipliers_qos": mult_qos,
                "multipliers_resource": mult_res,
            }
        )

    def _effective_window(self, policy: PolicyProtocol, window: int | None) -> int:
        """Resolve the slot-streaming window size for this (policy, workload).

        ``None`` → :data:`DEFAULT_WINDOW` when eligible, else 0 (per-slot).
        Windowing requires a windowable workload (slots must be a pure
        function of ``(t, rng)`` consumed in order) and is skipped for the
        reference engine, which exists as the readable per-slot baseline.
        """
        if window is not None and window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if not getattr(self.workload, "windowable", False):
            return 0
        if getattr(getattr(policy, "config", None), "engine", None) == "reference":
            return 0
        return DEFAULT_WINDOW if window is None else int(window)

    def run(
        self,
        policy: PolicyProtocol,
        horizon: int,
        *,
        record_expected: bool = True,
        window: int | None = None,
    ) -> SimulationResult:
        """Run ``policy`` for ``horizon`` slots and record per-slot metrics.

        The same ``Simulation`` object can run several policies; each run
        re-derives its random streams from the root seed, so two policies
        face identical workload randomness (realization draws still depend
        on which tasks each policy selects — standard bandit semantics).

        Parameters
        ----------
        window:
            Slot-streaming window size W: workload generation, coverage
            edge lists, and context classification are precomputed for W
            slots at a time (:mod:`repro.env.window`), amortizing the
            per-slot rebuild.  ``None`` (default) picks
            :data:`DEFAULT_WINDOW` when the workload and policy are
            eligible; ``0`` forces the per-slot path.  Trajectories are
            bit-identical for every window size — the precompute consumes
            the RNG streams in exactly the per-slot order.
        """
        check_positive("horizon", horizon)
        # One lookup per run: when no observability context is installed the
        # loop below takes the branch-free fast path (obs adds nothing but
        # a handful of end-of-run counter bumps).  Tracing and spans are
        # purely observational — they never touch an RNG — so trajectories
        # are bit-identical whether ``ctx`` is live or None.
        ctx = obs_runtime.active()
        # Stream contract v2: environment streams derive in a spawn-key
        # namespace disjoint from the policy namespace, so the environment's
        # randomness is independent of which policy runs (or what it is
        # called) — the invariant the window cache and the cross-policy
        # sharing of precomputed artifacts rest on.
        rngs = RngFactory(self.seed)
        workload_rng = rngs.env("workload")
        realize_rng = rngs.env("realizations")
        channel_rng = rngs.env("channel")
        policy_rng = rngs.policy(policy.name)

        reset = getattr(self.workload, "reset", None)
        if callable(reset):
            reset()
        if self.solver_cache is not None:
            attach = getattr(policy, "attach_solver_cache", None)
            if callable(attach):
                attach(self.solver_cache)
        policy.reset(self.network, horizon, policy_rng)

        M = self.network.num_scns
        alpha, beta = self.network.alpha, self.network.beta
        has_pair_api = hasattr(self.truth, "expected_compound_pairs") and hasattr(
            self.truth, "means_pairs"
        )
        window_size = self._effective_window(policy, window)
        use_window = window_size > 0
        stats_fn = getattr(self.truth, "slot_pair_stats", None)
        if use_window:
            # Only immutable partitions may be classified ahead of time; a
            # stateful one (adaptive refinement) would reassign mid-window.
            win_partition = getattr(policy, "context_partition", None)
            if win_partition is not None and not getattr(win_partition, "windowable", False):
                win_partition = None
            win_cells_fn = getattr(self.truth, "context_cells", None)
            win_slots: tuple = ()
            win_start = win_end = 0
            wcache = self.window_cache
            wkey_base = None
            if wcache is not None:
                wkey_base = window_key_base(rngs, self.workload, self.truth, win_partition)
                if wkey_base is None:
                    wcache = None
        reward = np.zeros(horizon)
        expected_reward = np.zeros(horizon)
        completed = np.zeros((horizon, M))
        consumption = np.zeros((horizon, M))
        accepted = np.zeros((horizon, M), dtype=np.int64)
        viol_qos_real = np.zeros(horizon)
        viol_res_real = np.zeros(horizon)
        viol_qos_exp = np.zeros(horizon)
        viol_res_exp = np.zeros(horizon)

        for t in range(horizon):
            if use_window:
                if t >= win_end:
                    count = min(window_size, horizon - t)
                    if ctx is None:
                        if wcache is not None:
                            win = cached_window(
                                wcache, self.workload, t, count, workload_rng,
                                partition=win_partition, context_cells=win_cells_fn,
                                key_base=wkey_base,
                            )
                        else:
                            win = precompute_window(
                                self.workload, t, count, workload_rng,
                                partition=win_partition, context_cells=win_cells_fn,
                            )
                    else:
                        ctx.begin_slot(t)
                        with ctx.span("sim.window.precompute"):
                            if wcache is not None:
                                win = cached_window(
                                    wcache, self.workload, t, count, workload_rng,
                                    partition=win_partition, context_cells=win_cells_fn,
                                    key_base=wkey_base,
                                )
                            else:
                                win = precompute_window(
                                    self.workload, t, count, workload_rng,
                                    partition=win_partition, context_cells=win_cells_fn,
                                )
                    win_slots = win.slots
                    win_start, win_end = t, t + count
                slot = win_slots[t - win_start]
            else:
                slot = self.workload.slot(t, workload_rng)
            if ctx is None:
                assignment = policy.select(slot)
            else:
                if not (use_window and t == win_start):
                    ctx.begin_slot(t)
                step_start = monotonic()
                with ctx.span("sim.select"):
                    assignment = policy.select(slot)
            if self.validate_assignments:
                assignment.validate(slot, self.network.capacity)

            pair_cells = None
            if len(assignment) > 0:
                pair_contexts = slot.tasks.contexts[assignment.task]
                truth_cells = getattr(slot, "truth_cells", None)
                if truth_cells is None:
                    u, v, q = self.truth.realize(
                        t, pair_contexts, assignment.scn, realize_rng
                    )
                else:
                    # Windowed slots carry each task's ground-truth grid cell
                    # (precomputed once per window); passing it skips the
                    # per-call classification without touching a draw.
                    pair_cells = truth_cells[assignment.task]
                    u, v, q = self.truth.realize(
                        t, pair_contexts, assignment.scn, realize_rng, cells=pair_cells
                    )
                if self.channel is not None:
                    v = v * self.channel.link_up(t, assignment.scn, assignment.task, channel_rng)
                g = u * v / q
            else:
                u = v = q = g = np.empty(0)

            feedback = SlotFeedback(assignment=assignment, u=u, v=v, q=q, g=g)

            reward[t] = g.sum()
            comp = feedback.per_scn_completed(M)
            cons = feedback.per_scn_consumption(M)
            completed[t] = comp
            consumption[t] = cons
            accepted[t] = np.bincount(assignment.scn, minlength=M)
            viol_qos_real[t] = np.maximum(alpha - comp, 0.0).sum()
            viol_res_real[t] = np.maximum(cons - beta, 0.0).sum()

            if record_expected:
                # The paper's V1/V2 use the expected completed count Σ v̄
                # and expected consumption Σ q̄ of the selected set (§3.2).
                # Only the <= M·c assigned pairs are needed, so evaluate the
                # truth pair-wise instead of building dense (M, n) tables;
                # duck-typed truths without the pair API fall back to dense.
                if len(assignment) > 0:
                    if pair_cells is not None and stats_fn is not None:
                        # One fused grid pass using the precomputed cells —
                        # component-wise identical to the two calls below.
                        exp_g, p_v, mu_q = stats_fn(
                            t, pair_contexts, assignment.scn, cells=pair_cells
                        )
                    elif has_pair_api:
                        exp_g = self.truth.expected_compound_pairs(
                            t, pair_contexts, assignment.scn
                        )
                        _, p_v, mu_q = self.truth.means_pairs(
                            t, pair_contexts, assignment.scn
                        )
                    else:
                        rows = np.arange(len(assignment))
                        exp_g = self.truth.expected_compound(t, pair_contexts)[
                            assignment.scn, rows
                        ]
                        p_v_dense, mu_q_dense = self.truth.means(t, pair_contexts)[1:]
                        p_v = p_v_dense[assignment.scn, rows]
                        mu_q = mu_q_dense[assignment.scn, rows]
                    expected_reward[t] = exp_g.sum()
                    exp_comp = np.bincount(assignment.scn, weights=p_v, minlength=M)
                    exp_cons = np.bincount(assignment.scn, weights=mu_q, minlength=M)
                else:
                    exp_comp = np.zeros(M)
                    exp_cons = np.zeros(M)
                viol_qos_exp[t] = np.maximum(alpha - exp_comp, 0.0).sum()
                viol_res_exp[t] = np.maximum(exp_cons - beta, 0.0).sum()

            if ctx is None:
                policy.update(slot, feedback)
            else:
                with ctx.span("sim.update"):
                    policy.update(slot, feedback)
                if use_window:
                    ctx.add_span("sim.window.step", monotonic() - step_start)
                self._record_slot(
                    ctx, policy, t, assignment, accepted[t],
                    float(reward[t]),
                    float(expected_reward[t]) if record_expected else None,
                    float(viol_qos_exp[t] if record_expected else viol_qos_real[t]),
                    float(viol_res_exp[t] if record_expected else viol_res_real[t]),
                )
            self.truth.advance(t, realize_rng)
            if self.channel is not None:
                self.channel.advance(t, channel_rng)

        if ctx is not None and ctx.tracer is not None:
            # Keep worker-process traces durable even when the process never
            # uninstalls its (env-var-installed) context.
            ctx.tracer.flush()
        reg = obs_metrics.global_registry()
        reg.counter("sim.runs").inc()
        reg.counter("sim.slots").inc(horizon)
        reg.counter("sim.assigned_pairs").inc(float(accepted.sum()))
        reg.gauge("sim.last_total_reward").set(float(reward.sum()))

        extras_fn = getattr(policy, "result_extras", None)
        extras = dict(extras_fn()) if callable(extras_fn) else {}

        return SimulationResult(
            policy_name=policy.name,
            horizon=horizon,
            num_scns=M,
            reward=reward,
            expected_reward=expected_reward,
            completed=completed,
            consumption=consumption,
            accepted=accepted,
            violation_qos=viol_qos_exp if record_expected else viol_qos_real,
            violation_resource=viol_res_exp if record_expected else viol_res_real,
            violation_qos_realized=viol_qos_real,
            violation_resource_realized=viol_res_real,
            has_expected=record_expected,
            extras=extras,
        )
