"""Small-cell network constraint configuration (paper §3.2, §5).

Bundles the system constraints of ILP (1):

- ``c``      — communication capacity: max tasks a SCN accepts per slot
               (1a; RF-chain / beamforming limit; paper: 20);
- ``alpha``  — QoS requirement: min expected completed tasks per SCN per slot
               (1c; paper: 15);
- ``beta``   — computation resource capacity per SCN per slot (1d; paper: 27).

Constraint (1b) — a task is offloaded to at most one SCN — is structural and
enforced by every assignment algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, require

__all__ = ["NetworkConfig"]


@dataclass(frozen=True)
class NetworkConfig:
    """Network-wide constants of the offloading ILP.

    Attributes
    ----------
    num_scns:
        Number of small-cell nodes M (paper evaluation: 30).
    capacity:
        Per-SCN communication capacity c (paper: 20).
    alpha:
        Minimum completed-task threshold α of constraint (1c) (paper: 15).
    beta:
        Computation resource capacity β of constraint (1d) (paper: 27).
    """

    num_scns: int = 30
    capacity: int = 20
    alpha: float = 15.0
    beta: float = 27.0

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("capacity", self.capacity)
        check_positive("alpha", self.alpha, strict=False)
        check_positive("beta", self.beta, strict=False)
        require(
            self.alpha <= self.capacity,
            f"alpha ({self.alpha}) cannot exceed capacity ({self.capacity}): "
            "a SCN cannot complete more tasks than it accepts",
        )

    def scaled(self, **overrides: float) -> "NetworkConfig":
        """A copy with the given fields replaced (for parameter sweeps)."""
        params = {
            "num_scns": self.num_scns,
            "capacity": self.capacity,
            "alpha": self.alpha,
            "beta": self.beta,
        }
        params.update(overrides)
        return NetworkConfig(**params)  # type: ignore[arg-type]
