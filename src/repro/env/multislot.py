"""Multi-slot task execution (paper §3.3 discussion and §6 future work).

The baseline model assumes every task finishes within one slot.  The paper
sketches the extension: a task whose execution spans several slots "can keep
submitting offloading requests in the subsequent time slots", the reward is
obtained only "after full execution", and a proposed mechanism "assigns an
extra reward for processed tasks, such that they have the priority in future
offloading decisions".

This module implements that extension end to end:

- :class:`MultiSlotWorkload` wraps a base coverage model and feature model;
  each arriving task draws a duration d ∈ [1, d_max].  Unfinished tasks
  re-enter subsequent slots (same context, same task id, remembered SCN
  neighbourhood) with their execution progress exposed through
  ``TaskBatch.priority`` — exactly the paper's "extra reward" hook.
- :class:`MultiSlotTracker` does the progress accounting: an assigned AND
  completed slot (v = 1) advances a task by one unit; the deferred reward
  u/q is banked and paid out only when the final unit finishes.  Tasks
  abandoned for ``patience`` consecutive slots are dropped (WD gives up).

The simulator loop is unchanged — the tracker is driven from outside, see
``examples/multislot_execution.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageModel, CoverageSampler
from repro.env.simulator import SlotFeedback
from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload, Workload
from repro.utils.validation import check_positive, require

__all__ = ["MultiSlotWorkload", "MultiSlotTracker", "PendingTask"]


@dataclass
class PendingTask:
    """A task still executing (or waiting to be re-selected)."""

    task_id: int
    context: np.ndarray
    duration: int
    progress: int
    banked_reward: float
    neighbourhood: np.ndarray  # SCNs that covered it on arrival
    idle_slots: int = 0

    @property
    def remaining(self) -> int:
        return self.duration - self.progress


@dataclass
class MultiSlotWorkload(Workload):
    """Arrivals with multi-slot durations plus the resubmission backlog.

    Parameters
    ----------
    features, coverage_model:
        As in :class:`~repro.env.workload.SyntheticWorkload`; the coverage
        model drives *new* arrivals only.
    max_duration:
        Durations are uniform integers in [1, max_duration].
    max_backlog:
        Resubmission cap; beyond it the oldest pending tasks are dropped
        (models WD queue limits).  Keeps slot sizes bounded.

    The workload exposes the pending set through :attr:`pending` so the
    tracker (and tests) can inspect it; :meth:`slot` appends the backlog
    tasks after the new arrivals and marks their progress in
    ``TaskBatch.priority`` (progress/duration ∈ [0, 1)).
    """

    features: TaskFeatureModel = field(default_factory=TaskFeatureModel)
    coverage_model: CoverageModel = field(default_factory=CoverageSampler)
    max_duration: int = 3
    max_backlog: int = 200

    def __post_init__(self) -> None:
        check_positive("max_duration", self.max_duration)
        check_positive("max_backlog", self.max_backlog)
        self.num_scns = self.coverage_model.num_scns
        self.pending: list[PendingTask] = []
        self.dropped = 0  # backlog-cap evictions (WD queue overflow)
        self._next_id = 0

    def reset(self) -> None:
        self.pending = []
        self.dropped = 0
        self._next_id = 0
        reset = getattr(self.coverage_model, "reset", None)
        if callable(reset):
            reset()

    def slot(self, t: int, rng: np.random.Generator) -> SlotWorkload:
        n_new, coverage_new = self.coverage_model.sample_slot(rng)
        inputs, outputs, resources = self.features.sample_features(n_new, rng)
        contexts_new = self.features.normalize(inputs, outputs, resources)
        durations = rng.integers(1, self.max_duration + 1, size=n_new)
        ids_new = np.arange(self._next_id, self._next_id + n_new, dtype=np.int64)
        self._next_id += n_new

        # Register the new arrivals as pending work.
        scn_of_new: dict[int, list[int]] = {int(i): [] for i in range(n_new)}
        for m, cov in enumerate(coverage_new):
            for i in cov:
                scn_of_new[int(i)].append(m)
        new_pending = [
            PendingTask(
                task_id=int(ids_new[i]),
                context=contexts_new[i],
                duration=int(durations[i]),
                progress=0,
                banked_reward=0.0,
                neighbourhood=np.asarray(scn_of_new[i], dtype=np.int64),
            )
            for i in range(n_new)
        ]
        backlog = self.pending
        self.pending = new_pending + backlog
        if len(self.pending) > self.max_backlog + n_new:
            # Drop the oldest beyond the cap (they are at the list's tail).
            self.dropped += len(self.pending) - (self.max_backlog + n_new)
            self.pending = self.pending[: self.max_backlog + n_new]

        # Assemble the combined slot: new arrivals first, then backlog.
        backlog_now = self.pending[n_new:]
        contexts = (
            np.vstack([contexts_new] + [p.context[None, :] for p in backlog_now])
            if backlog_now
            else contexts_new
        )
        ids = np.concatenate(
            [ids_new, np.asarray([p.task_id for p in backlog_now], dtype=np.int64)]
        )
        priority = np.concatenate(
            [
                np.zeros(n_new),
                np.asarray([p.progress / p.duration for p in backlog_now]),
            ]
        )
        coverage = [cov.copy() for cov in coverage_new]
        for j, p in enumerate(backlog_now):
            idx = n_new + j
            for m in p.neighbourhood:
                coverage[m] = np.append(coverage[m], idx)
        batch = TaskBatch(contexts=contexts, ids=ids, priority=priority)
        return SlotWorkload(t=t, tasks=batch, coverage=coverage)

    def max_coverage_size(self) -> int:
        return self.coverage_model.max_coverage_size() + self.max_backlog


@dataclass
class MultiSlotTracker:
    """Progress accounting and deferred reward payout.

    Call :meth:`record` after each slot with the workload, the slot, and the
    feedback.  A completed unit (assigned with v = 1) advances the task and
    banks u/q; the banked total is paid when the last unit finishes.

    Parameters
    ----------
    patience:
        Pending tasks idle (not advanced) for this many consecutive slots
        are abandoned.
    """

    patience: int = 10
    paid_reward: float = 0.0
    finished: int = 0
    abandoned: int = 0

    def __post_init__(self) -> None:
        check_positive("patience", self.patience)

    def record(
        self,
        workload: MultiSlotWorkload,
        slot: SlotWorkload,
        feedback: SlotFeedback,
    ) -> list[int]:
        """Advance progress; return the ids of tasks that fully finished."""
        asn = feedback.assignment
        by_id: dict[int, PendingTask] = {p.task_id: p for p in workload.pending}
        require(
            len(by_id) == len(workload.pending),
            "pending task ids must be unique",
        )
        advanced: set[int] = set()
        done_ids: list[int] = []
        for j in range(len(asn)):
            task_id = int(slot.tasks.ids[asn.task[j]])
            pending = by_id.get(task_id)
            if pending is None:
                continue
            if feedback.v[j] >= 1.0:
                pending.progress += 1
                pending.banked_reward += float(feedback.u[j] / feedback.q[j])
                advanced.add(task_id)
                if pending.progress >= pending.duration:
                    self.paid_reward += pending.banked_reward
                    self.finished += 1
                    done_ids.append(task_id)
        survivors: list[PendingTask] = []
        for p in workload.pending:
            if p.progress >= p.duration:
                continue
            if p.task_id not in advanced:
                p.idle_slots += 1
            else:
                p.idle_slots = 0
            if p.idle_slots >= self.patience:
                self.abandoned += 1
                continue
            survivors.append(p)
        workload.pending = survivors
        return done_ids

    def completion_rate(self) -> float:
        """Finished / (finished + abandoned); nan before any terminations."""
        total = self.finished + self.abandoned
        return self.finished / total if total else float("nan")
