"""repro — LFSC: online learning-based task offloading for 5G small cells.

A full reproduction of "An Online Learning-Based Task Offloading Framework
for 5G Small Cell Networks" (ICPP 2020): the small-cell network simulator,
the LFSC constrained contextual-bandit framework (Algs. 1-4), the evaluation
baselines (Oracle / vUCB / FML / Random), the paper's metrics, and a harness
per figure.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart
----------
>>> from repro import api
>>> result = api.run(scale="small", horizon=200, policies=("Oracle", "LFSC", "Random"))
>>> print(result.table())  # doctest: +SKIP

:mod:`repro.api` is the stable facade (``run`` / ``replicate`` /
``compare``); the underlying building blocks below remain importable
directly.
"""

from repro import api
from repro import policies
from repro.core import (
    ContextPartition,
    LFSCConfig,
    LFSCPolicy,
    OffloadingPolicy,
)
from repro.baselines import (
    FMLPolicy,
    OraclePolicy,
    RandomPolicy,
    UnconstrainedOraclePolicy,
    VUCBPolicy,
)
from repro.env import (
    CoverageSampler,
    GeometricCoverage,
    NetworkConfig,
    PiecewiseConstantTruth,
    Simulation,
    SimulationResult,
    SyntheticWorkload,
    TaskFeatureModel,
)
from repro.experiments import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_simulation,
    run_experiment,
)
from repro.metrics import (
    comparison_rows,
    format_table,
    performance_ratio,
    regret_series,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "policies",
    "ContextPartition",
    "LFSCConfig",
    "LFSCPolicy",
    "OffloadingPolicy",
    "FMLPolicy",
    "OraclePolicy",
    "RandomPolicy",
    "UnconstrainedOraclePolicy",
    "VUCBPolicy",
    "CoverageSampler",
    "GeometricCoverage",
    "NetworkConfig",
    "PiecewiseConstantTruth",
    "Simulation",
    "SimulationResult",
    "SyntheticWorkload",
    "TaskFeatureModel",
    "DEFAULT_POLICIES",
    "ExperimentConfig",
    "build_simulation",
    "run_experiment",
    "comparison_rows",
    "format_table",
    "performance_ratio",
    "regret_series",
    "__version__",
]
