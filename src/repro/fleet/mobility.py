"""Open-border random-waypoint mobility for fleet tiles.

:class:`BorderMobility` is the per-tile coverage model of the sharded
driver (DESIGN.md §12).  It behaves like
:class:`~repro.env.geometry.GeometricCoverage` — SCNs on a grid inside the
tile, WDs random-waypointing, coverage = "within radius" — with one change:
borders shared with a neighbouring tile are **open**.  A WD stepping past
an open border keeps moving (and keeps being served by home-tile SCNs whose
discs reach past the border — the one-round handover latency of a real
handover procedure) until the next exchange round, when
:meth:`collect_migrants` emits it toward the neighbour and
:meth:`receive_migrants` splices arrivals in on the other side.  Metro-edge
borders (no neighbour) reflect, exactly like the single-area models.

Determinism rules the sharded equivalence proof rests on:

- per-slot draws are fixed-count (two vectorized draws sized by the current
  population), so the stream layout depends only on the population size
  sequence — which is itself a pure function of the synchronized rounds;
- WD identity is a globally unique id (``id_base + k``); arrivals are
  appended in ascending-id order (the driver sorts each round's incoming
  batch), so the tile's WD ordering — and with it every coverage list and
  context draw — is independent of the shard count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.geometry import CoverageModel, _grid_positions
from repro.utils.validation import check_positive, require

__all__ = ["BorderMobility"]


@dataclass
class BorderMobility(CoverageModel):
    """Random-waypoint coverage inside one tile with open interior borders.

    Parameters
    ----------
    num_scns:
        SCNs in this tile (grid placement inside ``[0, tile_km]²``).
    num_wds:
        Initial WD population of the tile.
    tile_km, radius_km, speed_km:
        Tile side, SCN coverage radius, and max per-slot WD step.
    id_base:
        First WD id of this tile's initial population; ids must be globally
        unique across the fleet (the driver uses ``tile · wds_per_tile``).
    open_left, open_right, open_down, open_up:
        Which borders have a neighbouring tile (WDs may exit); the others
        reflect.
    """

    num_scns: int = 8
    num_wds: int = 120
    tile_km: float = 4.0
    radius_km: float = 1.2
    speed_km: float = 0.15
    id_base: int = 0
    open_left: bool = False
    open_right: bool = False
    open_down: bool = False
    open_up: bool = False

    def __post_init__(self) -> None:
        check_positive("num_scns", self.num_scns)
        check_positive("num_wds", self.num_wds)
        check_positive("tile_km", self.tile_km)
        check_positive("radius_km", self.radius_km)
        check_positive("speed_km", self.speed_km, strict=False)
        require(
            self.speed_km < self.tile_km,
            f"speed_km must stay below tile_km ({self.speed_km} >= {self.tile_km})",
        )
        self._scn_xy = _grid_positions(self.num_scns, self.tile_km)
        self._wd_xy: np.ndarray | None = None
        self._wd_ids: np.ndarray | None = None

    @property
    def scn_positions(self) -> np.ndarray:
        """``(M, 2)`` SCN coordinates in tile-local km."""
        return self._scn_xy.copy()

    @property
    def wd_ids(self) -> np.ndarray | None:
        """Current globally-unique WD ids (None before the first slot)."""
        return None if self._wd_ids is None else self._wd_ids.copy()

    @property
    def wd_positions(self) -> np.ndarray | None:
        """Current ``(n, 2)`` tile-local WD coordinates (may exit the tile)."""
        return None if self._wd_xy is None else self._wd_xy.copy()

    def reset(self) -> None:
        """Forget the population; the next slot re-initializes from the stream."""
        self._wd_xy = None
        self._wd_ids = None

    def sample_slot(self, rng: np.random.Generator) -> tuple[int, list[np.ndarray]]:
        if self._wd_xy is None:
            self._wd_xy = rng.uniform(0.0, self.tile_km, size=(self.num_wds, 2))
            self._wd_ids = np.arange(
                self.id_base, self.id_base + self.num_wds, dtype=np.int64
            )
        else:
            self._step(rng)
        # Coverage by distance to *home* SCNs only — a WD hovering past an
        # open border is still served from home until its handover lands.
        diff = self._scn_xy[:, None, :] - self._wd_xy[None, :, :]
        within = np.einsum("mnd,mnd->mn", diff, diff) <= self.radius_km**2
        coverage = [np.flatnonzero(within[m]) for m in range(self.num_scns)]
        return int(self._wd_xy.shape[0]), coverage

    def _step(self, rng: np.random.Generator) -> None:
        # Fixed-count draws: two vectorized draws sized by the population,
        # regardless of who reflects or wanders out.
        n = self._wd_xy.shape[0]
        angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
        steps = rng.uniform(0.0, self.speed_km, size=n)
        moved = self._wd_xy + steps[:, None] * np.column_stack(
            [np.cos(angles), np.sin(angles)]
        )
        L = self.tile_km
        # Reflect only at closed (metro-edge) borders; one fold suffices
        # because a slot's step is < L.  Open borders let the coordinate
        # run out of [0, L] — the pending-handover state.
        x, y = moved[:, 0], moved[:, 1]
        if not self.open_left:
            x = np.where(x < 0.0, -x, x)
        if not self.open_right:
            x = np.where(x > L, 2.0 * L - x, x)
        if not self.open_down:
            y = np.where(y < 0.0, -y, y)
        if not self.open_up:
            y = np.where(y > L, 2.0 * L - y, y)
        self._wd_xy = np.column_stack([x, y])

    def max_coverage_size(self) -> int:
        return self.num_wds

    # -- border exchange ------------------------------------------------------

    def collect_migrants(self) -> list[tuple[int, int, np.ndarray, np.ndarray]]:
        """Remove WDs that left the tile; return them grouped by direction.

        Returns ``(dx, dy, ids, xy)`` entries with ``dx, dy ∈ {-1, 0, +1}``
        (8-neighbourhood — the config guarantees a WD cannot cross two tiles
        between exchanges) and ``xy`` already transformed into the
        *destination* tile's local frame.  Deterministic: a pure function of
        the current population state.
        """
        if self._wd_xy is None:
            return []
        L = self.tile_km
        x, y = self._wd_xy[:, 0], self._wd_xy[:, 1]
        ox = np.where(x < 0.0, -1, np.where(x > L, 1, 0))
        oy = np.where(y < 0.0, -1, np.where(y > L, 1, 0))
        leaving = (ox != 0) | (oy != 0)
        if not leaving.any():
            return []
        out: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                sel = leaving & (ox == dx) & (oy == dy)
                if not sel.any():
                    continue
                xy = self._wd_xy[sel].copy()
                xy[:, 0] -= dx * L
                xy[:, 1] -= dy * L
                out.append((dx, dy, self._wd_ids[sel].copy(), xy))
        keep = ~leaving
        self._wd_xy = self._wd_xy[keep]
        self._wd_ids = self._wd_ids[keep]
        return out

    def receive_migrants(self, ids: np.ndarray, xy: np.ndarray) -> None:
        """Splice one round's arrivals into the population.

        The driver hands each round's incoming batch sorted by ascending id
        (after merging across source shards), so appending keeps the tile's
        WD ordering a pure function of the trajectory — never of how tiles
        were grouped into shards.
        """
        ids = np.asarray(ids, dtype=np.int64)
        xy = np.asarray(xy, dtype=float).reshape(-1, 2)
        if ids.shape[0] != xy.shape[0]:
            raise ValueError(
                f"ids and xy disagree in length: {ids.shape[0]} vs {xy.shape[0]}"
            )
        if ids.size == 0:
            return
        if self._wd_xy is None:
            raise RuntimeError("cannot receive migrants before the first slot")
        self._wd_xy = np.concatenate([self._wd_xy, xy])
        self._wd_ids = np.concatenate([self._wd_ids, ids])
