"""The sharded fleet driver: rounds, border exchange, and worker processes.

:func:`run_fleet` partitions the tile grid into shards
(:func:`~repro.fleet.topology.partition_tiles`), steps every shard's tiles
through synchronized **rounds** of ``exchange_every`` slots, and exchanges
border-WD state between rounds:

1. each shard runs its tiles for one round (:meth:`TileSim.run_slots`);
2. each tile emits the WDs that wandered across its borders
   (:meth:`TileSim.collect_migrants`), already expressed in the destination
   tile's local frame;
3. the driver merges migrants per destination across *all* shards, sorts
   each batch by globally-unique WD id (the canonical order that makes the
   merge independent of shard grouping), and delivers the batches with the
   next round's run command.

Under the direct coverage sampler tiles share no state at all, so the
driver detects independence (``FleetConfig.independent``) and takes the
**fast path**: one round spanning the whole horizon, no migrant collection,
no exchange traffic.

With ``shards >= 2`` each shard runs in its own worker process; run
commands, migrant batches, and final results travel through
:mod:`repro.utils.shm` zero-copy segments (with an automatic inline
fallback when shared memory is unavailable or the payload is empty).
Trajectories are **bit-identical across shard counts and across the
serial/process modes**: every tile's streams derive from ``(seed, tile)``
alone, rounds are synchronized, and migrant delivery order is canonical.

Decision latency: every ``policy.select`` is timed into a per-shard
:class:`~repro.metrics.latency.LatencyRecorder`; the per-shard nearest-rank
p50/p90/p99 land in :class:`FleetResult` and the samples fold into the obs
registry's ``fleet.decide_s`` histogram (workers ship a snapshot delta, so
pool reuse never double-counts).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.fleet.tile import TileSim
from repro.fleet.topology import FleetConfig, partition_tiles
from repro.metrics.latency import LatencyRecorder, LatencySummary, latency_summary
from repro.obs import metrics as obs_metrics
from repro.utils import shm as shm_transport
from repro.utils.parallel import process_pool_supported
from repro.utils.validation import check_positive, require

__all__ = ["FleetResult", "fleet_series_equal", "run_fleet"]

#: Per-tile series every fleet run records (the equivalence-gate payload).
SERIES_KEYS = ("reward", "assigned", "violation_qos", "violation_resource", "wds")


# -- payload transport ---------------------------------------------------------


def _pack_payload(obj) -> tuple:
    """Pack one message payload, through shm when there is array mass."""
    skeletons, name, manifest = shm_transport.pack_to_shm([obj])
    if name is None:
        return ("inline", obj, None, None)
    return ("shm", skeletons[0], name, manifest)


def _unpack_payload(packed: tuple):
    kind, skeleton, name, manifest = packed
    if kind == "inline":
        return skeleton
    return shm_transport.unpack_from_shm([skeleton], name, manifest)[0]


def _payload_block(packed: tuple | None) -> str | None:
    return None if packed is None else packed[2]


# -- round plan and migrant routing ---------------------------------------------


def _round_plan(cfg: FleetConfig) -> list[tuple[int, bool]]:
    """``(slots, collect_migrants)`` per round.

    Independent fleets (coverage sampler) run one horizon-length round with
    no collection — the fast path.  Coupled fleets collect after every round
    except the last (post-horizon migration would never be observed).
    """
    if cfg.independent:
        return [(cfg.horizon, False)]
    plan: list[tuple[int, bool]] = []
    t = 0
    while t < cfg.horizon:
        count = min(cfg.exchange_every, cfg.horizon - t)
        t += count
        plan.append((count, t < cfg.horizon))
    return plan


def _route_migrants(
    outbound: list[tuple[int, np.ndarray, np.ndarray]],
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Merge ``(dst_tile, ids, xy)`` entries into one batch per destination.

    Each batch is sorted by ascending WD id — ids are globally unique, so
    this order is canonical and independent of which shard contributed
    which entry (the bit-identity requirement of the exchange step).
    """
    by_dst: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    for dst, ids, xy in outbound:
        by_dst.setdefault(dst, []).append((ids, xy))
    routed: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for dst, entries in by_dst.items():
        ids = np.concatenate([e[0] for e in entries])
        xy = np.concatenate([e[1] for e in entries])
        order = np.argsort(ids, kind="stable")
        routed[dst] = (ids[order], xy[order])
    return routed


# -- worker protocol -------------------------------------------------------------
#
# Parent → worker:  ("run", slots, collect, packed_inbound | None)
#                   ("finish",)
# Worker → parent:  ("out", packed_outbound)
#                   ("result", packed_result, registry_delta)
#                   ("error", traceback_text)


def _shard_worker(conn, cfg: FleetConfig, tiles: tuple[int, ...]) -> None:
    try:
        registry = obs_metrics.global_registry()
        before = registry.snapshot()
        recorder = LatencyRecorder()
        sims = {tile: TileSim(cfg, tile, latency=recorder) for tile in tiles}
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "run":
                _, count, collect, inbound = msg
                if inbound is not None:
                    for tile, (ids, xy) in sorted(_unpack_payload(inbound).items()):
                        sims[tile].receive_migrants(ids, xy)
                for tile in tiles:
                    sims[tile].run_slots(count)
                outbound: list = []
                if collect:
                    for tile in tiles:
                        outbound.extend(sims[tile].collect_migrants())
                conn.send(("out", _pack_payload(outbound)))
            elif op == "finish":
                recorder.observe_registry("fleet.decide_s", registry)
                result = {
                    "series": {tile: sims[tile].series() for tile in tiles},
                    "samples": np.asarray(recorder.samples, dtype=float),
                }
                delta = obs_metrics.diff_snapshots(registry.snapshot(), before)
                conn.send(("result", _pack_payload(result), delta))
                return
            else:
                raise RuntimeError(f"unknown fleet op {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


def _expect(conn, kind: str, shard: int) -> tuple:
    try:
        msg = conn.recv()
    except EOFError:
        raise RuntimeError(f"fleet shard {shard} died without reporting") from None
    if msg[0] == "error":
        raise RuntimeError(f"fleet shard {shard} failed:\n{msg[1]}")
    if msg[0] != kind:
        raise RuntimeError(f"fleet shard {shard}: expected {kind!r}, got {msg[0]!r}")
    return msg


# -- execution modes --------------------------------------------------------------


def _run_serial(
    cfg: FleetConfig,
    groups: tuple[tuple[int, ...], ...],
    plan: list[tuple[int, bool]],
) -> tuple[list[dict], int]:
    """All shards in-process; the same round/exchange structure as workers."""
    recorders = [LatencyRecorder() for _ in groups]
    sims: dict[int, TileSim] = {}
    for rec, group in zip(recorders, groups):
        for tile in group:
            sims[tile] = TileSim(cfg, tile, latency=rec)
    migrants = 0
    inbound: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for count, collect in plan:
        for tile, (ids, xy) in sorted(inbound.items()):
            sims[tile].receive_migrants(ids, xy)
        for tile in sorted(sims):
            sims[tile].run_slots(count)
        outbound: list = []
        if collect:
            for tile in sorted(sims):
                outbound.extend(sims[tile].collect_migrants())
        inbound = _route_migrants(outbound)
        migrants += sum(ids.size for ids, _ in inbound.values())
    registry = obs_metrics.global_registry()
    results = []
    for rec, group in zip(recorders, groups):
        rec.observe_registry("fleet.decide_s", registry)
        results.append(
            {
                "series": {tile: sims[tile].series() for tile in group},
                "samples": np.asarray(rec.samples, dtype=float),
            }
        )
    return results, migrants


def _run_process(
    cfg: FleetConfig,
    groups: tuple[tuple[int, ...], ...],
    plan: list[tuple[int, bool]],
) -> tuple[list[dict], int]:
    """One worker process per shard, border exchange through shm payloads."""
    ctx = multiprocessing.get_context()
    procs: list = []
    conns: list = []
    # shm blocks the parent packed but no worker consumed yet — discarded on
    # any error path so a dead worker cannot leak its inbound segment.
    pending: set[str] = set()
    try:
        for group in groups:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child_conn, cfg, group), daemon=True
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)

        migrants = 0
        inbound_by_shard: list[tuple | None] = [None] * len(groups)
        for count, collect in plan:
            for conn, inbound in zip(conns, inbound_by_shard):
                conn.send(("run", count, collect, inbound))
            replies = [
                _expect(conn, "out", shard) for shard, conn in enumerate(conns)
            ]
            # A reply proves the worker consumed (and freed) its inbound block.
            for inbound in inbound_by_shard:
                block = _payload_block(inbound)
                if block:
                    pending.discard(block)
            outbound: list = []
            for packed in replies:
                outbound.extend(_unpack_payload(packed[1]))
            routed = _route_migrants(outbound)
            migrants += sum(ids.size for ids, _ in routed.values())
            inbound_by_shard = []
            for group in groups:
                batch = {tile: routed[tile] for tile in group if tile in routed}
                if batch:
                    packed = _pack_payload(batch)
                    block = _payload_block(packed)
                    if block:
                        pending.add(block)
                    inbound_by_shard.append(packed)
                else:
                    inbound_by_shard.append(None)

        for conn in conns:
            conn.send(("finish",))
        registry = obs_metrics.global_registry()
        results = []
        for shard, conn in enumerate(conns):
            msg = _expect(conn, "result", shard)
            results.append(_unpack_payload(msg[1]))
            registry.merge_snapshot(msg[2])
        for proc in procs:
            proc.join(timeout=60)
        return results, migrants
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - already closed
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for block in pending:
            shm_transport.discard_block(block)


# -- results -----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet run produced.

    ``tile_series[k]`` is tile ``k``'s per-slot series dict (keys
    :data:`SERIES_KEYS`, plus ``"mbs_reward"`` when the MBS tier is on);
    ``shard_latency[s]`` the nearest-rank decision-latency summary of shard
    ``s``'s recorder.
    """

    config: FleetConfig
    shards: int
    groups: tuple[tuple[int, ...], ...]
    mode: str
    independent: bool
    rounds: int
    migrants: int
    decisions: int
    wall_s: float
    tile_series: tuple[dict[str, np.ndarray], ...]
    shard_latency: tuple[LatencySummary, ...]

    @property
    def decisions_per_min(self) -> float:
        """Task-decision throughput (the ISSUE's 1M+/min headline metric)."""
        return 60.0 * self.decisions / max(self.wall_s, 1e-12)

    @property
    def total_reward(self) -> float:
        return float(sum(s["reward"].sum() for s in self.tile_series))

    def summary(self) -> dict:
        """Headline scalars (JSON-ready) for benches and EXPERIMENTS.md."""
        return {
            "num_tiles": self.config.num_tiles,
            "num_scns": self.config.num_scns,
            "horizon": self.config.horizon,
            "shards": self.shards,
            "mode": self.mode,
            "independent": self.independent,
            "rounds": self.rounds,
            "migrants": self.migrants,
            "decisions": self.decisions,
            "wall_s": self.wall_s,
            "decisions_per_min": self.decisions_per_min,
            "total_reward": self.total_reward,
        }

    def latency_rows(self) -> list[dict]:
        """Per-shard decision-latency percentiles (ms), one row per shard."""
        rows = []
        for shard, summary in enumerate(self.shard_latency):
            row = {"shard": shard, "tiles": len(self.groups[shard])}
            row.update(summary.as_dict(unit="ms"))
            rows.append(row)
        return rows


def fleet_series_equal(
    a: "FleetResult | tuple", b: "FleetResult | tuple"
) -> bool:
    """Exact (bit-level) equality of two runs' per-tile series.

    The sharded-equivalence gate: a sharded run must reproduce the
    unsharded reference exactly, at every shard count, in both modes.
    """
    sa = a.tile_series if isinstance(a, FleetResult) else tuple(a)
    sb = b.tile_series if isinstance(b, FleetResult) else tuple(b)
    if len(sa) != len(sb):
        return False
    for ta, tb in zip(sa, sb):
        if set(ta) != set(tb):
            return False
        for key in ta:
            if not np.array_equal(np.asarray(ta[key]), np.asarray(tb[key])):
                return False
    return True


def run_fleet(cfg: FleetConfig, *, shards: int = 1, mode: str = "auto") -> FleetResult:
    """Run one fleet to its horizon, sharded ``shards`` ways.

    Parameters
    ----------
    shards:
        Shard count; clamped to the tile count.  Any value yields
        bit-identical per-tile series (``tests/fleet/test_equivalence.py``).
    mode:
        ``"auto"`` — worker processes when ``shards >= 2`` and the platform
        supports them, else in-process; ``"serial"`` / ``"process"`` force
        the choice (``"process"`` raises where unsupported).
    """
    check_positive("shards", shards)
    require(
        mode in ("auto", "serial", "process"),
        f"mode must be 'auto', 'serial' or 'process', got {mode!r}",
    )
    groups = partition_tiles(cfg.num_tiles, shards)
    plan = _round_plan(cfg)
    if mode == "process" and not process_pool_supported():
        raise RuntimeError("mode='process' requires multiprocessing support")
    use_processes = (
        mode == "process"
        or (mode == "auto" and len(groups) >= 2 and process_pool_supported())
    )
    start = time.perf_counter()
    if use_processes:
        shard_results, migrants = _run_process(cfg, groups, plan)
    else:
        shard_results, migrants = _run_serial(cfg, groups, plan)
    wall_s = time.perf_counter() - start

    by_tile: dict[int, dict[str, np.ndarray]] = {}
    summaries: list[LatencySummary] = []
    for result in shard_results:
        by_tile.update(result["series"])
        summaries.append(latency_summary(result["samples"]))
    tile_series = tuple(by_tile[tile] for tile in range(cfg.num_tiles))
    decisions = sum(int(s["assigned"].sum()) for s in tile_series)

    registry = obs_metrics.global_registry()
    registry.counter("fleet.runs").inc()
    registry.counter("fleet.slots").inc(cfg.num_tiles * cfg.horizon)
    registry.counter("fleet.decisions").inc(decisions)

    return FleetResult(
        config=cfg,
        shards=len(groups),
        groups=groups,
        mode="process" if use_processes else "serial",
        independent=cfg.independent,
        rounds=len(plan),
        migrants=migrants,
        decisions=decisions,
        wall_s=wall_s,
        tile_series=tile_series,
        shard_latency=tuple(summaries),
    )
