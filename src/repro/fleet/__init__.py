"""Fleet-scale sharded simulation: metro-scale SCN networks across processes.

The paper evaluates 30 SCNs; the ROADMAP north star asks for thousands.
Coverage is *local* — a WD only ever sees nearby SCNs — so a metro-scale
network decomposes into geographic **tiles** that couple only through WDs
crossing tile borders.  This package exploits that structure (DESIGN.md
§12):

- :mod:`repro.fleet.topology` — :class:`FleetConfig` declares the tile
  grid (``tiles_x × tiles_y``, SCNs/WDs per tile, per-tile MBS fallback
  tier) and :func:`partition_tiles` groups tiles into shards;
- :mod:`repro.fleet.mobility` — :class:`BorderMobility`, the open-border
  random-waypoint coverage model whose WDs may wander across tile borders
  (handed over at the next exchange round);
- :mod:`repro.fleet.tile` — :class:`TileSim`, one tile's resumable slot
  loop (windowed precompute, per-slot decision-latency recording, optional
  MBS tier);
- :mod:`repro.fleet.driver` — :func:`run_fleet`, which runs shards in
  worker processes, exchanges border-WD state per round through
  :mod:`repro.utils.shm` zero-copy segments, and skips the exchange
  entirely when the direct coverage sampler makes tiles provably
  independent.

Sharded runs are **bit-identical** to the unsharded reference at any shard
count: every tile's RNG streams derive from ``(seed, tile_index)`` alone
(:func:`repro.utils.rng.fleet_seed_sequence`), and migration is applied in
a canonical order at synchronized round boundaries.
"""

from repro.fleet.driver import FleetResult, fleet_series_equal, run_fleet
from repro.fleet.mobility import BorderMobility
from repro.fleet.tile import TileSim
from repro.fleet.topology import FleetConfig, partition_tiles

__all__ = [
    "BorderMobility",
    "FleetConfig",
    "FleetResult",
    "TileSim",
    "fleet_series_equal",
    "partition_tiles",
    "run_fleet",
]
