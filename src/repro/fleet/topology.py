"""Fleet topology: the tile grid, per-tile configs, and shard partitioning.

A fleet is a ``tiles_x × tiles_y`` grid of square tiles, each a
self-contained instance of the paper's offloading problem: its own SCNs
(``scns_per_tile`` on a grid inside the tile), its own WD population, its
own hidden ground truth, and its own learner.  Tiles couple only through
WDs crossing tile borders (the ``"mobility"`` coverage), which is exactly
the state the driver exchanges between shards at round boundaries.

:class:`FleetConfig` is the single declarative description; everything a
worker process needs rebuilds deterministically from ``(config, tile)`` —
the per-tile :class:`~repro.experiments.runner.ExperimentConfig` carries
the tile's own truth seed from :func:`repro.utils.rng.fleet_seed`, so a
tile's trajectory never depends on the shard count or which worker ran it.

:func:`partition_tiles` groups tiles into contiguous, balanced shards.
Contiguity matters only for locality of the border exchange; correctness
never depends on the grouping — any partition yields bit-identical series.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.runner import ExperimentConfig
from repro.utils.rng import fleet_seed
from repro.utils.validation import check_positive, require

__all__ = ["FleetConfig", "partition_tiles"]


@dataclass(frozen=True)
class FleetConfig:
    """Declarative description of one metro-scale fleet run.

    Parameters
    ----------
    tiles_x, tiles_y:
        Tile grid dimensions; ``num_tiles = tiles_x · tiles_y``.
    scns_per_tile:
        SCNs per tile, placed on the most-square grid inside the tile.
    capacity, alpha, beta:
        The ILP (1) constraint constants, per SCN (identical across tiles).
    coverage:
        ``"mobility"`` — WDs random-waypoint inside the tile with **open
        interior borders** (:class:`repro.fleet.mobility.BorderMobility`);
        tiles couple and the driver runs the border exchange.
        ``"sampler"`` — the paper's direct
        :class:`~repro.env.geometry.CoverageSampler` per tile; tiles are
        provably independent and the driver takes the no-exchange fast path.
    wds_per_tile:
        Initial WD population per tile (mobility coverage only).
    tile_km, radius_km, speed_km:
        Tile side length, SCN coverage radius, and maximum per-slot WD step
        (mobility coverage only).
    k_min, k_max, overlap:
        Coverage-sampler parameters (sampler coverage only).
    dims, parts, cells_per_dim:
        Learner context-partition / ground-truth grid resolution.
    horizon:
        Slots to simulate.
    seed, truth_seed:
        Fleet-level roots; tile ``k`` derives its own streams from
        ``fleet_seed_sequence(seed, k)`` and its own truth tables from
        ``fleet_seed(truth_seed, k)`` (stream contract v2 extension).
    policy:
        Per-tile policy name (``make_policy`` line-up; default LFSC).
    engine:
        LFSC slot engine — ``"batched"`` (default) or ``"reference"``
        (which also forces the per-slot path, as in the simulator).
    window:
        Slot-streaming window override (``None`` — simulator default).
    exchange_every:
        Border-exchange round length in slots (mobility coverage).  WDs that
        wandered across a border are handed to the neighbouring tile at the
        next round boundary; until then the home tile keeps serving them.
    mbs_capacity:
        Per-tile MBS fallback tier admission limit (0 disables the tier).
    mbs_reward_factor, mbs_completion_prob:
        MBS tier parameters (see :class:`repro.env.mbs.MBSFallback`).
    validate_assignments:
        Check every assignment against (1a)/(1b)/coverage (default True).
    """

    tiles_x: int = 2
    tiles_y: int = 2
    scns_per_tile: int = 8
    capacity: int = 6
    alpha: float = 4.5
    beta: float = 8.1
    coverage: str = "mobility"
    # Mobility coverage.
    wds_per_tile: int = 120
    tile_km: float = 4.0
    radius_km: float = 1.2
    speed_km: float = 0.15
    # Sampler coverage.
    k_min: int = 10
    k_max: int = 30
    overlap: float = 2.0
    # Learner / truth resolution.
    dims: int = 3
    parts: int = 2
    cells_per_dim: int = 2
    # Run control.
    horizon: int = 200
    seed: int = 0
    truth_seed: int = 7
    policy: str = "LFSC"
    engine: str = "batched"
    window: int | None = None
    exchange_every: int = 16
    # MBS tier.
    mbs_capacity: int = 0
    mbs_reward_factor: float = 0.5
    mbs_completion_prob: float = 0.95
    validate_assignments: bool = True

    def __post_init__(self) -> None:
        check_positive("tiles_x", self.tiles_x)
        check_positive("tiles_y", self.tiles_y)
        check_positive("scns_per_tile", self.scns_per_tile)
        check_positive("horizon", self.horizon)
        check_positive("exchange_every", self.exchange_every)
        require(
            self.coverage in ("mobility", "sampler"),
            f"coverage must be 'mobility' or 'sampler', got {self.coverage!r}",
        )
        require(
            self.engine in ("batched", "reference"),
            f"engine must be 'batched' or 'reference', got {self.engine!r}",
        )
        if self.window is not None and self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}")
        if self.coverage == "mobility":
            check_positive("wds_per_tile", self.wds_per_tile)
            check_positive("tile_km", self.tile_km)
            check_positive("radius_km", self.radius_km)
            check_positive("speed_km", self.speed_km, strict=False)
            # A WD must not cross more than one border between exchanges:
            # migrants are routed to the 8-neighbourhood only.
            require(
                self.exchange_every * self.speed_km < self.tile_km,
                "exchange_every·speed_km must stay below tile_km "
                f"({self.exchange_every}·{self.speed_km} >= {self.tile_km}): "
                "a WD could cross two tiles between exchanges",
            )

    def with_overrides(self, **changes) -> "FleetConfig":
        return replace(self, **changes)

    # -- grid geometry --------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def num_scns(self) -> int:
        """Total SCN count across the fleet."""
        return self.num_tiles * self.scns_per_tile

    @property
    def independent(self) -> bool:
        """True when tiles provably never couple (no border exchange needed)."""
        return self.coverage == "sampler"

    def tile_coords(self, tile: int) -> tuple[int, int]:
        """Tile index → ``(tx, ty)`` grid coordinates (row-major)."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} outside grid of {self.num_tiles}")
        return tile % self.tiles_x, tile // self.tiles_x

    def tile_index(self, tx: int, ty: int) -> int:
        """``(tx, ty)`` grid coordinates → tile index (row-major)."""
        require(
            0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y,
            f"tile coords ({tx}, {ty}) outside {self.tiles_x}x{self.tiles_y} grid",
        )
        return ty * self.tiles_x + tx

    def neighbor(self, tile: int, dx: int, dy: int) -> int | None:
        """The tile one step in direction ``(dx, dy)``, or None at a metro edge."""
        tx, ty = self.tile_coords(tile)
        nx, ny = tx + dx, ty + dy
        if 0 <= nx < self.tiles_x and 0 <= ny < self.tiles_y:
            return ny * self.tiles_x + nx
        return None

    def open_edges(self, tile: int) -> tuple[bool, bool, bool, bool]:
        """Which of the tile's borders have a neighbour: (left, right, down, up).

        Open borders let WDs wander out (pending handover); closed ones —
        the metro boundary — reflect, exactly like the single-area models.
        """
        return (
            self.neighbor(tile, -1, 0) is not None,
            self.neighbor(tile, +1, 0) is not None,
            self.neighbor(tile, 0, -1) is not None,
            self.neighbor(tile, 0, +1) is not None,
        )

    # -- per-tile derived configs ----------------------------------------------

    def tile_config(self, tile: int) -> ExperimentConfig:
        """The tile's own :class:`ExperimentConfig` — a pure function of
        ``(fleet config, tile)``.

        The tile's truth seed comes from the fleet namespace, so every tile
        owns independent ground-truth tables; ``k_max`` (which drives the
        Theorem 1 learning-rate schedule) is the sampler bound or, for
        mobility, the tile's WD population — a fixed constant, so the
        schedule never depends on realized migration.
        """
        if self.coverage == "mobility":
            k_min, k_max = 1, self.wds_per_tile
        else:
            k_min, k_max = self.k_min, self.k_max
        cfg = ExperimentConfig(
            num_scns=self.scns_per_tile,
            capacity=self.capacity,
            alpha=self.alpha,
            beta=self.beta,
            k_min=k_min,
            k_max=k_max,
            overlap=self.overlap,
            cells_per_dim=self.cells_per_dim,
            dims=self.dims,
            parts=self.parts,
            horizon=self.horizon,
            seed=self.seed,
            truth_seed=fleet_seed(self.truth_seed, tile),
            window=self.window,
            # Tiles are stepped incrementally by the driver; the cross-run
            # caches assume a whole-run lifecycle, so stand them down.
            oracle_cache=False,
            shared_window=False,
        )
        return cfg.with_lfsc_overrides(engine=self.engine)


def partition_tiles(num_tiles: int, shards: int) -> tuple[tuple[int, ...], ...]:
    """Group ``num_tiles`` tile indices into ``shards`` contiguous groups.

    Sizes are balanced (they differ by at most one); requesting more shards
    than tiles yields one tile per shard.  The grouping only affects which
    worker steps which tile — never the trajectories (bit-identity holds for
    any partition).
    """
    check_positive("num_tiles", num_tiles)
    check_positive("shards", shards)
    shards = min(shards, num_tiles)
    base, rem = divmod(num_tiles, shards)
    groups: list[tuple[int, ...]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < rem else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)
