"""One fleet tile's simulation: a resumable, stepwise slot loop.

:class:`TileSim` mirrors :meth:`repro.env.simulator.Simulation.run`'s slot
body — windowed precompute, select, validate, pair-wise realize, update,
advance — but exposes it as :meth:`run_slots`, so the sharded driver can
interleave simulation rounds with border exchanges while policy and truth
state persist across calls.  Differences from the batch simulator, all
deliberate:

- every component (network, workload, truth, policy, streams) derives from
  ``(fleet config, tile index)`` alone — tile streams root at
  :func:`repro.utils.rng.fleet_seed_sequence`, so trajectories are
  independent of the shard count and worker topology;
- each ``select`` is timed into a :class:`repro.metrics.latency.LatencyRecorder`
  (the fleet's per-shard decision-latency percentiles);
- the recorded series are the realized per-slot scalars (reward, assigned
  pairs, realized V1/V2, population) — fleet runs skip the expected-basis
  bookkeeping, which needs dense truth tables per tile and exists for
  regret plots, not throughput scaling;
- an optional per-tile MBS fallback tier (paper §3.3) serves the
  covered-but-unselected leftovers from its own environment stream.
"""

from __future__ import annotations

import numpy as np

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.mbs import MBSFallback
from repro.env.simulator import DEFAULT_WINDOW, SlotFeedback
from repro.env.window import precompute_window
from repro.env.workload import SyntheticWorkload
from repro.experiments.runner import default_truth, make_policy
from repro.fleet.mobility import BorderMobility
from repro.fleet.topology import FleetConfig
from repro.metrics.latency import LatencyRecorder
from repro.utils.rng import RngFactory, fleet_seed_sequence
from repro.utils.timing import monotonic

__all__ = ["TileSim"]


class TileSim:
    """One tile's offloading simulation, steppable in slot batches.

    Parameters
    ----------
    cfg:
        The fleet description.
    tile:
        This tile's index in the grid.
    latency:
        Decision-latency recorder to share (the driver passes one per
        shard); a private one is created when omitted.
    """

    def __init__(
        self, cfg: FleetConfig, tile: int, *, latency: LatencyRecorder | None = None
    ) -> None:
        self.cfg = cfg
        self.tile = tile
        tile_cfg = cfg.tile_config(tile)
        self.network = tile_cfg.network()
        self.truth = default_truth(tile_cfg)
        if cfg.coverage == "mobility":
            left, right, down, up = cfg.open_edges(tile)
            coverage_model = BorderMobility(
                num_scns=cfg.scns_per_tile,
                num_wds=cfg.wds_per_tile,
                tile_km=cfg.tile_km,
                radius_km=cfg.radius_km,
                speed_km=cfg.speed_km,
                id_base=tile * cfg.wds_per_tile,
                open_left=left,
                open_right=right,
                open_down=down,
                open_up=up,
            )
        else:
            coverage_model = CoverageSampler(
                num_scns=cfg.scns_per_tile,
                k_min=cfg.k_min,
                k_max=cfg.k_max,
                overlap=cfg.overlap,
            )
        self.workload = SyntheticWorkload(
            features=TaskFeatureModel(), coverage_model=coverage_model
        )
        self.policy = make_policy(cfg.policy, tile_cfg, self.truth)

        # Stream contract v2 extension: the tile root depends only on
        # (seed, tile); env/policy streams nest under it.
        rngs = RngFactory(fleet_seed_sequence(cfg.seed, tile))
        self._workload_rng = rngs.env("workload")
        self._realize_rng = rngs.env("realizations")
        self.mbs: MBSFallback | None = None
        self._mbs_rng = None
        if cfg.mbs_capacity > 0:
            self.mbs = MBSFallback(
                capacity=cfg.mbs_capacity,
                reward_factor=cfg.mbs_reward_factor,
                completion_prob=cfg.mbs_completion_prob,
            )
            self._mbs_rng = rngs.env("mbs")

        self.workload.reset()
        self.policy.reset(self.network, cfg.horizon, rngs.policy(self.policy.name))

        self._window = self._effective_window()
        partition = getattr(self.policy, "context_partition", None)
        if partition is not None and not getattr(partition, "windowable", False):
            partition = None
        self._win_partition = partition
        self._cells_fn = getattr(self.truth, "context_cells", None)

        self._latency = latency if latency is not None else LatencyRecorder()
        self._t = 0
        self._decisions = 0
        H, M = cfg.horizon, self.network.num_scns
        self._alpha, self._beta = self.network.alpha, self.network.beta
        self._num_scns = M
        self._reward = np.zeros(H)
        self._assigned = np.zeros(H, dtype=np.int64)
        self._viol_qos = np.zeros(H)
        self._viol_res = np.zeros(H)
        self._wds = np.zeros(H, dtype=np.int64)
        self._mbs_reward = np.zeros(H) if self.mbs is not None else None

    def _effective_window(self) -> int:
        """The slot-streaming window, resolved like the batch simulator."""
        if not getattr(self.workload, "windowable", False):
            return 0
        if getattr(getattr(self.policy, "config", None), "engine", None) == "reference":
            return 0
        return DEFAULT_WINDOW if self.cfg.window is None else int(self.cfg.window)

    @property
    def t(self) -> int:
        """Slots simulated so far."""
        return self._t

    @property
    def decisions(self) -> int:
        """Total SCN-assigned task decisions so far."""
        return self._decisions

    @property
    def latency(self) -> LatencyRecorder:
        return self._latency

    # -- the slot loop --------------------------------------------------------

    def run_slots(self, count: int) -> None:
        """Advance ``count`` slots (one driver round, or a chunk of one)."""
        if count <= 0:
            raise ValueError(f"count must be >= 1, got {count}")
        end = self._t + count
        if end > self.cfg.horizon:
            raise ValueError(
                f"run_slots past the horizon: {end} > {self.cfg.horizon}"
            )
        t = self._t
        while t < end:
            if self._window > 0:
                w = min(self._window, end - t)
                win = precompute_window(
                    self.workload,
                    t,
                    w,
                    self._workload_rng,
                    partition=self._win_partition,
                    context_cells=self._cells_fn,
                )
                for slot in win.slots:
                    self._step(t, slot)
                    t += 1
            else:
                self._step(t, self.workload.slot(t, self._workload_rng))
                t += 1
        self._t = end

    def _step(self, t: int, slot) -> None:
        start = monotonic()
        assignment = self.policy.select(slot)
        self._latency.record(monotonic() - start)
        if self.cfg.validate_assignments:
            assignment.validate(slot, self.network.capacity)

        if len(assignment) > 0:
            pair_contexts = slot.tasks.contexts[assignment.task]
            truth_cells = getattr(slot, "truth_cells", None)
            if truth_cells is None:
                u, v, q = self.truth.realize(
                    t, pair_contexts, assignment.scn, self._realize_rng
                )
            else:
                u, v, q = self.truth.realize(
                    t,
                    pair_contexts,
                    assignment.scn,
                    self._realize_rng,
                    cells=truth_cells[assignment.task],
                )
            g = u * v / q
        else:
            u = v = q = g = np.empty(0)
        feedback = SlotFeedback(assignment=assignment, u=u, v=v, q=q, g=g)

        M = self._num_scns
        comp = feedback.per_scn_completed(M)
        cons = feedback.per_scn_consumption(M)
        self._reward[t] = g.sum()
        self._assigned[t] = len(assignment)
        self._viol_qos[t] = np.maximum(self._alpha - comp, 0.0).sum()
        self._viol_res[t] = np.maximum(cons - self._beta, 0.0).sum()
        self._wds[t] = len(slot.tasks)
        self._decisions += len(assignment)

        self.policy.update(slot, feedback)
        if self.mbs is not None:
            served = self.mbs.serve(slot, assignment, self.truth, self._mbs_rng)
            self._mbs_reward[t] = served.reward
        self.truth.advance(t, self._realize_rng)

    # -- border exchange ------------------------------------------------------

    def collect_migrants(self) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """WDs that left this tile since the last exchange, as
        ``(destination tile, ids, destination-local xy)`` entries."""
        collect = getattr(self.workload.coverage_model, "collect_migrants", None)
        if not callable(collect):
            return []
        out: list[tuple[int, np.ndarray, np.ndarray]] = []
        for dx, dy, ids, xy in collect():
            dst = self.cfg.neighbor(self.tile, dx, dy)
            if dst is None:  # closed borders reflect — this cannot happen
                raise RuntimeError(
                    f"tile {self.tile}: migrants toward missing neighbour ({dx}, {dy})"
                )
            out.append((dst, ids, xy))
        return out

    def receive_migrants(self, ids: np.ndarray, xy: np.ndarray) -> None:
        """Splice one round's incoming WDs (driver pre-sorts by id)."""
        self.workload.coverage_model.receive_migrants(ids, xy)

    # -- results --------------------------------------------------------------

    def series(self) -> dict[str, np.ndarray]:
        """The tile's recorded per-slot series (copies, truncated to ``t``)."""
        out = {
            "reward": self._reward[: self._t].copy(),
            "assigned": self._assigned[: self._t].copy(),
            "violation_qos": self._viol_qos[: self._t].copy(),
            "violation_resource": self._viol_res[: self._t].copy(),
            "wds": self._wds[: self._t].copy(),
        }
        if self._mbs_reward is not None:
            out["mbs_reward"] = self._mbs_reward[: self._t].copy()
        return out
