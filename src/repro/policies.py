"""The policy registry: every controller behind one extensible surface.

Historically the evaluation line-up was instantiated by a closed if/elif
chain in :func:`repro.experiments.runner.make_policy`; adding a policy meant
editing the runner.  This module replaces that chain with a registry keyed
by name, mirroring the scenario registry's lazy-builtin pattern
(:mod:`repro.scenarios.registry`):

- :func:`register_policy` adds an entry — a builder plus a typed parameter
  schema (``params_schema``: every tunable with its default, type-checked on
  override exactly like scenario parameters);
- :func:`resolve_policy` is fail-closed: an unknown name raises
  :class:`UnknownPolicyError` naming the key and listing the registered
  names, an unknown or ill-typed parameter raises :class:`PolicyError`;
- specs are strings — a bare name (``"LFSC"``) or a parameterized call
  (``"linucb(alpha=0.5)"``) parsed by :func:`parse_policy_spec` — or
  :class:`PolicySpec` objects, so the CLI, ``repro.api``, and checkpoint
  headers all share one spelling;
- built-ins register lazily on first lookup, so importing this module never
  circularly imports the experiment runner.

The RNG stream contract is untouched: a policy's ``name`` attribute — not
its spec string — keys its private stream
(:func:`repro.utils.rng.policy_seed_sequence`), so ``linucb(alpha=0.5)`` and
``linucb(alpha=2.0)`` face identical policy randomness (the point of a
hyperparameter comparison), and scenario wrappers keep preserving ``name``.
:data:`DEFAULT_POLICIES` (the paper's Fig. 2 line-up) lives here; the runner
re-exports it for backward compatibility.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the runner cycle
    from repro.env.processes import GroundTruth
    from repro.env.simulator import PolicyProtocol
    from repro.experiments.runner import ExperimentConfig

__all__ = [
    "DEFAULT_POLICIES",
    "LEARNED_POLICIES",
    "PolicyDefinition",
    "PolicyError",
    "PolicySpec",
    "UnknownPolicyError",
    "describe",
    "get",
    "list_policies",
    "make_policy",
    "names",
    "normalize_policy_arg",
    "normalize_specs",
    "parse_policy_spec",
    "register_policy",
    "resolve_params",
    "resolve_policy",
]

#: The paper's Fig. 2 line-up (hoisted from ``experiments/runner.py``).
DEFAULT_POLICIES: tuple[str, ...] = ("Oracle", "LFSC", "vUCB", "FML", "Random")

#: The learned contextual tier (DESIGN.md §13).
LEARNED_POLICIES: tuple[str, ...] = ("linucb", "linthompson", "dqn")


class PolicyError(ValueError):
    """A policy definition, spec, lookup, or parameterization is invalid."""


class UnknownPolicyError(PolicyError, KeyError):
    """The requested policy name is not registered."""


@dataclass(frozen=True)
class PolicyDefinition:
    """One registry entry.

    Parameters
    ----------
    name:
        Registry key — also the ``name`` attribute (and hence the RNG stream
        key) of every instance the builder returns.
    description:
        One-line human description (``repro policies list``).
    builder:
        ``builder(cfg, truth, params) -> policy`` — instantiate the policy
        for an :class:`~repro.experiments.runner.ExperimentConfig`, the run's
        ground truth (Oracle-family policies hold it; learners must not),
        and the resolved parameter dict.
    defaults:
        The parameter *schema*: every tunable with its default value.
        Explicit overrides must name keys from this mapping and match the
        default's JSON type (:func:`resolve_params`).
    tags:
        Free-form labels (``repro policies list`` filters on them).
    """

    name: str
    description: str
    builder: Callable = None
    defaults: Mapping[str, object] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PolicyError(f"policy name must be a non-empty string, got {self.name!r}")
        if not callable(self.builder):
            raise PolicyError(f"policy {self.name!r} needs a callable builder")


@dataclass(frozen=True)
class PolicySpec:
    """A resolved policy coordinate: registry name + explicit parameters.

    The canonical string form (``str(spec)``) round-trips through
    :func:`parse_policy_spec`, so specs travel as plain strings through
    process pools, CLI arguments, and checkpoint headers.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def param_dict(self) -> dict:
        return dict(self.params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({inner})"

    @staticmethod
    def make(name: str, **params) -> "PolicySpec":
        return PolicySpec(name=name, params=tuple(sorted(params.items())))


_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.+-]*$")


def parse_policy_spec(text: str | PolicySpec) -> PolicySpec:
    """Parse ``"name"`` or ``"name(k=v, ...)"`` into a :class:`PolicySpec`.

    Values are Python literals (``ast.literal_eval``): numbers, booleans,
    strings, tuples.  Malformed specs raise :class:`PolicyError` naming the
    offending fragment; names are *not* checked against the registry here —
    :func:`resolve_policy` does that, fail-closed.
    """
    if isinstance(text, PolicySpec):
        return text
    if not isinstance(text, str):
        raise PolicyError(
            f"policy spec must be a string or PolicySpec, got {type(text).__name__}"
        )
    text = text.strip()
    if "(" not in text:
        if not _NAME_RE.match(text):
            raise PolicyError(f"invalid policy name {text!r}")
        return PolicySpec(name=text)
    if not text.endswith(")"):
        raise PolicyError(f"malformed policy spec {text!r}: missing closing ')'")
    name, _, inner = text[:-1].partition("(")
    name = name.strip()
    if not _NAME_RE.match(name):
        raise PolicyError(f"invalid policy name {name!r} in spec {text!r}")
    params: dict[str, object] = {}
    inner = inner.strip()
    if inner:
        # Parse the argument list with the Python grammar itself: keyword
        # arguments with literal values, nothing else.
        try:
            call = ast.parse(f"_({inner})", mode="eval").body
        except SyntaxError:
            raise PolicyError(f"malformed policy spec {text!r}") from None
        if not isinstance(call, ast.Call) or call.args:
            raise PolicyError(
                f"policy spec {text!r} must use keyword arguments only "
                "(e.g. 'linucb(alpha=0.5)')"
            )
        for kw in call.keywords:
            if kw.arg is None:
                raise PolicyError(f"policy spec {text!r} must not use ** expansion")
            try:
                value = ast.literal_eval(kw.value)
            except ValueError:
                raise PolicyError(
                    f"policy spec {text!r}: parameter {kw.arg!r} must be a literal"
                ) from None
            if kw.arg in params:
                raise PolicyError(f"policy spec {text!r} repeats parameter {kw.arg!r}")
            params[kw.arg] = value
    return PolicySpec(name=name, params=tuple(sorted(params.items())))


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, PolicyDefinition] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Idempotently register the built-in policy line-up.

    Deferred to first lookup so importing :mod:`repro.policies` (e.g. for
    :data:`DEFAULT_POLICIES` inside the CLI) never circularly imports the
    experiment runner or the learned tier.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        _register_builtins()


def register_policy(
    name: str,
    builder: Callable,
    *,
    description: str = "",
    params_schema: Mapping[str, object] | None = None,
    tags: Sequence[str] = (),
    replace: bool = False,
) -> PolicyDefinition:
    """Add a policy to the registry; duplicate names fail unless ``replace``."""
    _ensure_builtins()
    definition = PolicyDefinition(
        name=name,
        description=description,
        builder=builder,
        defaults=dict(params_schema or {}),
        tags=tuple(tags),
    )
    if not replace and name in _REGISTRY:
        raise PolicyError(
            f"policy {name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = definition
    return definition


def get(name: str) -> PolicyDefinition:
    """Look a policy up by name (built-ins register on first call)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy name {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def list_policies(*, tag: str | None = None) -> list[PolicyDefinition]:
    """All registered policies (optionally filtered by tag), sorted by name."""
    _ensure_builtins()
    entries = (_REGISTRY[n] for n in sorted(_REGISTRY))
    return [p for p in entries if tag is None or tag in p.tags]


def _type_compatible(default, value) -> bool:
    """Does an override's JSON type match the default's? (int ≤ float)."""
    if isinstance(default, bool):
        return isinstance(value, bool)
    if isinstance(default, (int, float)):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if isinstance(default, str):
        return isinstance(value, str)
    if isinstance(default, (list, tuple)):
        return isinstance(value, (list, tuple))
    return True


def resolve_params(definition: PolicyDefinition, explicit: Mapping | None = None) -> dict:
    """Defaults overlaid with explicit overrides; unknown keys / types fail."""
    explicit = dict(explicit or {})
    unknown = set(explicit) - set(definition.defaults)
    if unknown:
        raise PolicyError(
            f"policy {definition.name!r} has no parameter(s) {sorted(unknown)}; "
            f"known: {sorted(definition.defaults)}"
        )
    resolved = dict(definition.defaults)
    for key, value in explicit.items():
        default = resolved[key]
        if not _type_compatible(default, value):
            raise PolicyError(
                f"policy {definition.name!r} parameter {key!r} expects "
                f"{type(default).__name__}, got {type(value).__name__} ({value!r})"
            )
        resolved[key] = value
    return resolved


def resolve_policy(spec: str | PolicySpec) -> tuple[PolicyDefinition, dict]:
    """Resolve a spec to ``(definition, resolved params)`` — fail-closed.

    Unknown names raise :class:`UnknownPolicyError` (listing the registered
    names); unknown parameters and type mismatches raise
    :class:`PolicyError`.
    """
    parsed = parse_policy_spec(spec)
    definition = get(parsed.name)
    return definition, resolve_params(definition, parsed.param_dict())


def normalize_policy_arg(policy) -> str:
    """One requested policy — a spec string, :class:`PolicySpec`, or a
    pre-built :class:`PolicyDefinition` — as its canonical, validated spec
    string (the key results dictionaries use)."""
    if isinstance(policy, PolicyDefinition):
        _ensure_builtins()
        registered = _REGISTRY.get(policy.name)
        if registered is None:
            _REGISTRY[policy.name] = policy
        elif registered is not policy:
            raise PolicyError(
                f"policy {policy.name!r} conflicts with a different registered "
                "definition of the same name"
            )
        return policy.name
    parsed = parse_policy_spec(policy)
    resolve_policy(parsed)
    return str(parsed)


def normalize_specs(policies: Sequence) -> tuple[str, ...]:
    """Validate a whole line-up up front and canonicalize every entry."""
    return tuple(normalize_policy_arg(p) for p in policies)


def describe(name: str) -> dict:
    """Everything ``repro policies describe`` prints, as a JSON-safe dict."""
    definition = get(name)
    return {
        "name": definition.name,
        "description": definition.description,
        "tags": list(definition.tags),
        "defaults": dict(definition.defaults),
    }


def make_policy(
    spec: "str | PolicySpec", cfg: "ExperimentConfig", truth: "GroundTruth"
) -> "PolicyProtocol":
    """Instantiate a policy from a registry spec.

    When the config carries a scenario, the scenario's policy wrapper (e.g.
    sleep-mode activation, one-bit censoring) is applied around the base
    policy; wrappers preserve the policy ``name``, so RNG stream derivation
    is unchanged.
    """
    definition, params = resolve_policy(spec)
    policy = definition.builder(cfg, truth, params)
    if cfg.scenario is not None:
        from repro import scenarios

        policy = scenarios.wrap_policy(policy, cfg)
    return policy


# ---------------------------------------------------------------------------
# Built-in definitions (lazy imports: the builders pull the heavy modules in
# only when the policy is actually built).
# ---------------------------------------------------------------------------


def _build_oracle(cfg, truth, params):
    from repro.baselines.oracle import OraclePolicy

    return OraclePolicy(truth, mode=cfg.oracle_mode)


def _build_oracle_unconstrained(cfg, truth, params):
    from repro.baselines.oracle import UnconstrainedOraclePolicy

    return UnconstrainedOraclePolicy(truth)


def _build_lfsc(cfg, truth, params):
    from repro.core.lfsc import LFSCPolicy

    return LFSCPolicy(cfg.lfsc_config())


def _build_lfsc_adaptive(cfg, truth, params):
    from repro.core.adaptive import AdaptiveLFSCPolicy, AdaptivePartition

    base = cfg.lfsc_config()
    if isinstance(base.partition, AdaptivePartition):
        return AdaptiveLFSCPolicy(base, partition=base.partition)
    return AdaptiveLFSCPolicy(base)


def _build_vucb(cfg, truth, params):
    from repro.baselines.vucb import VUCBPolicy

    return VUCBPolicy(cfg.partition, exploration=params["exploration"])


def _build_fml(cfg, truth, params):
    from repro.baselines.fml import FMLPolicy

    return FMLPolicy(cfg.partition)


def _build_random(cfg, truth, params):
    from repro.baselines.random_policy import RandomPolicy

    return RandomPolicy()


def _build_eps_greedy(cfg, truth, params):
    from repro.baselines.extras import EpsilonGreedyPolicy

    return EpsilonGreedyPolicy(cfg.partition, epsilon0=params["epsilon0"])


def _build_thompson(cfg, truth, params):
    from repro.baselines.extras import ThompsonSamplingPolicy

    return ThompsonSamplingPolicy(cfg.partition, scale=params["scale"])


def _build_linucb(cfg, truth, params):
    from repro.learned.linucb import LinUCBPolicy

    return LinUCBPolicy(alpha=params["alpha"], l2=params["l2"])


def _build_linthompson(cfg, truth, params):
    from repro.learned.linucb import LinThompsonPolicy

    return LinThompsonPolicy(scale=params["scale"], l2=params["l2"])


def _build_dqn(cfg, truth, params):
    from repro.learned.dqn import DQNPolicy

    return DQNPolicy(
        hidden=params["hidden"],
        lr=params["lr"],
        buffer=params["buffer"],
        batch=params["batch"],
        train_every=params["train_every"],
        target_every=params["target_every"],
        eps0=params["eps0"],
        eps_final=params["eps_final"],
    )


def _register_builtins() -> None:
    entries = (
        PolicyDefinition(
            name="Oracle",
            description="constrained clairvoyant benchmark (stage-1 LP/ILP + Alg. 4)",
            builder=_build_oracle,
            tags=("baseline", "oracle"),
        ),
        PolicyDefinition(
            name="Oracle-unconstrained",
            description="reward-only clairvoyant upper bound (ignores α and β)",
            builder=_build_oracle_unconstrained,
            tags=("baseline", "oracle"),
        ),
        PolicyDefinition(
            name="LFSC",
            description="the paper's learning framework (Algs. 1-4, Theorem 1 schedule)",
            builder=_build_lfsc,
            tags=("paper",),
        ),
        PolicyDefinition(
            name="LFSC-adaptive",
            description="LFSC on an adaptively refined context partition",
            builder=_build_lfsc_adaptive,
            tags=("paper", "adaptive"),
        ),
        PolicyDefinition(
            name="vUCB",
            description="variant-UCB per (SCN, hypercube), constraint-blind (§5)",
            builder=_build_vucb,
            defaults={"exploration": 2.0},
            tags=("baseline",),
        ),
        PolicyDefinition(
            name="FML",
            description="follow-the-maximum-likelihood baseline (§5)",
            builder=_build_fml,
            tags=("baseline",),
        ),
        PolicyDefinition(
            name="Random",
            description="uniformly random feasible assignment (§5)",
            builder=_build_random,
            tags=("baseline",),
        ),
        PolicyDefinition(
            name="eps-greedy",
            description="ε-greedy over per-cube mean rewards (decaying ε)",
            builder=_build_eps_greedy,
            defaults={"epsilon0": 5.0},
            tags=("baseline",),
        ),
        PolicyDefinition(
            name="thompson",
            description="Gaussian Thompson sampling over per-cube means",
            builder=_build_thompson,
            defaults={"scale": 0.5},
            tags=("baseline",),
        ),
        PolicyDefinition(
            name="linucb",
            description="LinUCB: per-SCN ridge regression on task contexts + UCB width",
            builder=_build_linucb,
            defaults={"alpha": 1.0, "l2": 1.0},
            tags=("learned", "linear"),
        ),
        PolicyDefinition(
            name="linthompson",
            description="linear Thompson sampling: posterior draws per SCN on contexts",
            builder=_build_linthompson,
            defaults={"scale": 0.3, "l2": 1.0},
            tags=("learned", "linear"),
        ),
        PolicyDefinition(
            name="dqn",
            description="pure-numpy DQN-style scorer: 2-layer MLP + replay + target net",
            builder=_build_dqn,
            defaults={
                "hidden": 32,
                "lr": 0.05,
                "buffer": 4096,
                "batch": 64,
                "train_every": 1,
                "target_every": 50,
                "eps0": 0.25,
                "eps_final": 0.02,
            },
            tags=("learned", "deep"),
        ),
    )
    for definition in entries:
        _REGISTRY.setdefault(definition.name, definition)
