"""Slot-level structured tracing: one JSONL record per (sampled) slot.

A :class:`TraceRecorder` streams records to disk with bounded memory — the
in-process buffer never exceeds ``flush_every`` records — and an explicit
``sample_every`` knob trades completeness for write volume on long horizons
(record slot ``t`` iff ``t % sample_every == 0``).

Record schema (``TRACE_SCHEMA``): the simulator emits the per-slot fields
an operator needs to explain a trajectory — per-SCN assignment sizes,
estimated vs. realized compound reward, constraint-violation terms,
multiplier values, and the monotonic timing spans recorded during the slot
(``spans`` maps span name → seconds).  :func:`validate_record` enforces the
schema; :func:`read_trace` loads a file back into dicts.  Tracing is purely
observational: it never touches a policy RNG, so trajectories are
bit-identical with tracing on or off (``tests/obs/test_equivalence.py``).

On-disk formats — negotiated by magic bytes, never by suffix, so renamed
files always load:

- plain JSONL (default, any other suffix);
- gzip-compressed JSONL (``.gz`` suffix when writing; magic ``1f 8b``);
- zlib-framed JSONL (``.zl`` suffix when writing; magic ``RZJ1``): after
  the 4-byte magic, each flush becomes one frame of ``>I`` payload length
  followed by the zlib-compressed JSONL payload.  Frames make every flush
  durable on its own — a truncated tail frame (crash mid-write) loses only
  that frame, while a truncated gzip stream can refuse to decode at all.
"""

from __future__ import annotations

import gzip
import json
import struct
import zlib
from pathlib import Path
from typing import IO, Iterator, Mapping

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "ZLIB_FRAME_MAGIC",
    "iter_trace",
    "read_trace",
    "validate_record",
]

#: First 4 bytes of a zlib-framed trace file (sniffed by the readers).
ZLIB_FRAME_MAGIC = b"RZJ1"

#: ``struct`` format of a frame header: big-endian u32 payload length.
_FRAME_HEADER = ">I"

#: Required fields of a slot trace record and their types.  ``None`` is
#: additionally allowed where marked optional (e.g. ``expected_reward`` when
#: the run recorded realized-only feedback).
TRACE_SCHEMA: dict[str, tuple] = {
    "t": (int,),
    "policy": (str,),
    "assigned": (int,),
    "per_scn_assigned": (list,),
    "reward": (float, int),
    "expected_reward": (float, int, type(None)),
    "violation_qos": (float, int),
    "violation_resource": (float, int),
    "multipliers_qos": (list, type(None)),
    "multipliers_resource": (list, type(None)),
    "spans": (dict,),
}


def validate_record(record: Mapping) -> None:
    """Raise ValueError when ``record`` does not satisfy ``TRACE_SCHEMA``."""
    for key, types in TRACE_SCHEMA.items():
        if key not in record:
            raise ValueError(f"trace record missing field {key!r}")
        if not isinstance(record[key], types):
            raise ValueError(
                f"trace field {key!r} has type {type(record[key]).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    spans = record["spans"]
    for name, seconds in spans.items():
        if not isinstance(name, str) or not isinstance(seconds, (int, float)):
            raise ValueError(f"span entry {name!r}: {seconds!r} is not (str, seconds)")
        if seconds < 0:
            raise ValueError(f"span {name!r} has negative duration {seconds}")


class TraceRecorder:
    """Streaming JSONL writer with sampling and a bounded buffer.

    Parameters
    ----------
    path:
        Output ``.jsonl`` file (parent directories are created).  A ``.gz``
        suffix (e.g. ``trace.jsonl.gz``) writes gzip-compressed JSONL —
        same records, roughly an order of magnitude smaller on disk; a
        ``.zl`` suffix writes zlib-framed JSONL (one self-contained frame
        per flush, see the module docstring).  The readers below sniff the
        format from the file's magic bytes, never the suffix.
    sample_every:
        Record slot ``t`` iff ``t % sample_every == 0``; 1 records every
        slot.
    flush_every:
        Buffered records are written out whenever this many accumulate, so
        memory stays bounded on 10k+-slot horizons.

    The recorder keeps :attr:`last_record` — the most recent record *built*
    (whether or not it was sampled to disk) — which the parallel harness
    attaches to :class:`~repro.utils.parallel.ParallelExecutionError` so a
    crashing replication reports the slot state it died in.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sample_every: int = 1,
        flush_every: int = 256,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.sample_every = int(sample_every)
        self.flush_every = int(flush_every)
        self.records_written = 0
        self.last_record: dict | None = None
        self._buffer: list[str] = []
        self._file: IO | None = None
        self._framed = self.path.suffix == ".zl"

    def want(self, t: int) -> bool:
        """Whether slot ``t`` falls on the sampling grid."""
        return t % self.sample_every == 0

    def record(self, record: dict) -> None:
        """Buffer one record; flush to disk when the buffer fills."""
        self.last_record = record
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._framed:
                self._file = self.path.open("wb")
                self._file.write(ZLIB_FRAME_MAGIC)
            elif self.path.suffix == ".gz":
                self._file = gzip.open(self.path, "wt")
            else:
                self._file = self.path.open("w")
        payload = "\n".join(self._buffer) + "\n"
        if self._framed:
            comp = zlib.compress(payload.encode("utf-8"), 6)
            self._file.write(struct.pack(_FRAME_HEADER, len(comp)) + comp)
        else:
            self._file.write(payload)
        self._file.flush()
        self.records_written += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _sniff_format(path: Path) -> str:
    """``"zl"``, ``"gz"``, or ``"plain"`` — from magic bytes, not suffix,
    so renamed files still load."""
    with path.open("rb") as probe:
        magic = probe.read(4)
    if magic == ZLIB_FRAME_MAGIC:
        return "zl"
    if magic[:2] == b"\x1f\x8b":
        return "gz"
    return "plain"


def _iter_framed_lines(path: Path) -> Iterator[str]:
    """Yield JSONL lines from a zlib-framed trace (module docstring).

    A truncated tail frame — a crash mid-write — ends iteration cleanly:
    every complete frame before it is still readable.
    """
    header_size = struct.calcsize(_FRAME_HEADER)
    with path.open("rb") as fh:
        fh.read(len(ZLIB_FRAME_MAGIC))
        while True:
            header = fh.read(header_size)
            if len(header) < header_size:
                return
            (length,) = struct.unpack(_FRAME_HEADER, header)
            comp = fh.read(length)
            if len(comp) < length:
                return
            yield from zlib.decompress(comp).decode("utf-8").splitlines()


def iter_trace(path: str | Path) -> Iterator[dict]:
    """Yield records from a JSONL trace file in any of the three formats."""
    path = Path(path)
    fmt = _sniff_format(path)
    if fmt == "zl":
        lines: Iterator[str] = _iter_framed_lines(path)
        for line in lines:
            line = line.strip()
            if line:
                yield json.loads(line)
        return
    fh = gzip.open(path, "rt") if fmt == "gz" else path.open()
    with fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path: str | Path) -> list[dict]:
    """Load a whole JSONL trace file written by :class:`TraceRecorder`."""
    return list(iter_trace(path))
