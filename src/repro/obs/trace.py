"""Slot-level structured tracing: one JSONL record per (sampled) slot.

A :class:`TraceRecorder` streams records to disk with bounded memory — the
in-process buffer never exceeds ``flush_every`` records — and an explicit
``sample_every`` knob trades completeness for write volume on long horizons
(record slot ``t`` iff ``t % sample_every == 0``).

Record schema (``TRACE_SCHEMA``): the simulator emits the per-slot fields
an operator needs to explain a trajectory — per-SCN assignment sizes,
estimated vs. realized compound reward, constraint-violation terms,
multiplier values, and the monotonic timing spans recorded during the slot
(``spans`` maps span name → seconds).  :func:`validate_record` enforces the
schema; :func:`read_trace` loads a file back into dicts.  Tracing is purely
observational: it never touches a policy RNG, so trajectories are
bit-identical with tracing on or off (``tests/obs/test_equivalence.py``).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Iterator, Mapping

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "iter_trace",
    "read_trace",
    "validate_record",
]

#: Required fields of a slot trace record and their types.  ``None`` is
#: additionally allowed where marked optional (e.g. ``expected_reward`` when
#: the run recorded realized-only feedback).
TRACE_SCHEMA: dict[str, tuple] = {
    "t": (int,),
    "policy": (str,),
    "assigned": (int,),
    "per_scn_assigned": (list,),
    "reward": (float, int),
    "expected_reward": (float, int, type(None)),
    "violation_qos": (float, int),
    "violation_resource": (float, int),
    "multipliers_qos": (list, type(None)),
    "multipliers_resource": (list, type(None)),
    "spans": (dict,),
}


def validate_record(record: Mapping) -> None:
    """Raise ValueError when ``record`` does not satisfy ``TRACE_SCHEMA``."""
    for key, types in TRACE_SCHEMA.items():
        if key not in record:
            raise ValueError(f"trace record missing field {key!r}")
        if not isinstance(record[key], types):
            raise ValueError(
                f"trace field {key!r} has type {type(record[key]).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    spans = record["spans"]
    for name, seconds in spans.items():
        if not isinstance(name, str) or not isinstance(seconds, (int, float)):
            raise ValueError(f"span entry {name!r}: {seconds!r} is not (str, seconds)")
        if seconds < 0:
            raise ValueError(f"span {name!r} has negative duration {seconds}")


class TraceRecorder:
    """Streaming JSONL writer with sampling and a bounded buffer.

    Parameters
    ----------
    path:
        Output ``.jsonl`` file (parent directories are created).  A ``.gz``
        suffix (e.g. ``trace.jsonl.gz``) writes gzip-compressed JSONL —
        same records, roughly an order of magnitude smaller on disk; the
        readers below auto-detect the compression.
    sample_every:
        Record slot ``t`` iff ``t % sample_every == 0``; 1 records every
        slot.
    flush_every:
        Buffered records are written out whenever this many accumulate, so
        memory stays bounded on 10k+-slot horizons.

    The recorder keeps :attr:`last_record` — the most recent record *built*
    (whether or not it was sampled to disk) — which the parallel harness
    attaches to :class:`~repro.utils.parallel.ParallelExecutionError` so a
    crashing replication reports the slot state it died in.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sample_every: int = 1,
        flush_every: int = 256,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.sample_every = int(sample_every)
        self.flush_every = int(flush_every)
        self.records_written = 0
        self.last_record: dict | None = None
        self._buffer: list[str] = []
        self._file: IO[str] | None = None

    def want(self, t: int) -> bool:
        """Whether slot ``t`` falls on the sampling grid."""
        return t % self.sample_every == 0

    def record(self, record: dict) -> None:
        """Buffer one record; flush to disk when the buffer fills."""
        self.last_record = record
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.suffix == ".gz":
                self._file = gzip.open(self.path, "wt")
            else:
                self._file = self.path.open("w")
        self._file.write("\n".join(self._buffer) + "\n")
        self._file.flush()
        self.records_written += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _open_trace(path: Path) -> IO[str]:
    """Open a trace for reading, sniffing gzip by magic bytes (not suffix),
    so renamed files still load."""
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt")
    return path.open()


def iter_trace(path: str | Path) -> Iterator[dict]:
    """Yield records from a (possibly gzip-compressed) JSONL trace file."""
    with _open_trace(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path: str | Path) -> list[dict]:
    """Load a whole JSONL trace file written by :class:`TraceRecorder`."""
    return list(iter_trace(path))
