"""Run manifests: what exactly produced this artifact?

Every replication, figure, and bench run can write a ``manifest.json``
capturing the full provenance needed to reproduce (or distrust) the output:
the experiment config, the seeds, the engine, the repo's git SHA and dirty
flag, the host, and the library versions.  ``BENCH_*.json`` files embed the
same dict under a ``"manifest"`` key instead of ad-hoc host notes.

The manifest is *descriptive*, never load-bearing: nothing in the codebase
reads a manifest to decide behaviour, so a missing git binary or a
dataclass config that is not JSON-serializable degrades to a string
representation instead of failing the run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["MANIFEST_SCHEMA_VERSION", "build_manifest", "load_manifest", "write_manifest"]

MANIFEST_SCHEMA_VERSION = "repro-manifest/v1"


def _jsonable(value: Any) -> Any:
    """Best-effort JSON view: dataclasses become dicts, exotica become repr."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return _jsonable(value.tolist())
    return repr(value)


def _git_info() -> dict:
    """Commit SHA + dirty flag of the working tree, or why they are unknown."""
    try:
        root = Path(__file__).resolve()
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root.parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None, "error": sha.stderr.strip() or "not a git repo"}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root.parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        return {
            "sha": sha.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError) as exc:
        return {"sha": None, "dirty": None, "error": repr(exc)}


def _versions() -> dict:
    versions = {"python": platform.python_version()}
    for mod in ("numpy", "scipy", "networkx"):
        try:
            versions[mod] = __import__(mod).__version__
        except Exception:  # pragma: no cover - missing optional dep
            versions[mod] = None
    return versions


def build_manifest(
    *,
    kind: str = "run",
    config: Any = None,
    seeds: Sequence[int] | None = None,
    policies: Sequence[str] | None = None,
    engine: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble the provenance dict for one run.

    Parameters
    ----------
    kind:
        What produced this manifest — ``"replication"``, ``"figure"``,
        ``"bench"``, ``"cli"`` … (free-form, for humans and summaries).
    config:
        The experiment config (dataclasses serialize field-by-field).
    seeds / policies / engine:
        The run's seed list, policy line-up, and slot engine, when known.
    extra:
        Arbitrary additional JSON-serializable context.
    """
    git = _git_info()
    if kind == "bench" and git.get("dirty"):
        # Bench artifacts get committed (BENCH_*.json); a dirty tree means
        # the recorded SHA does not describe the measured code.  Still only
        # descriptive — warn loudly, never fail the run.
        print(
            "warning: bench manifest built from a dirty git tree — the "
            f"recorded sha {git.get('sha')!r} does not match the working "
            "copy (provenance will carry git.dirty=true)",
            file=sys.stderr,
        )
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": kind,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": list(sys.argv),
        "cwd": os.getcwd(),
        "git": git,
        "host": {
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
        },
        "versions": _versions(),
        "config": _jsonable(config) if config is not None else None,
        "seeds": [int(s) for s in seeds] if seeds is not None else None,
        "policies": list(policies) if policies is not None else None,
        "engine": engine,
        "scenario": _scenario_block(config),
    }
    if extra:
        manifest["extra"] = _jsonable(extra)
    return manifest


def _scenario_block(config: Any) -> dict | None:
    """Scenario name + params + content hash, when the config carries one.

    Manifests are descriptive, never load-bearing, so a spec that fails to
    resolve against the current registry records the error string instead of
    failing the run.
    """
    spec = getattr(config, "scenario", None)
    if spec is None:
        return None
    block = {"name": spec.name, "params": _jsonable(spec.param_dict())}
    try:
        from repro import scenarios

        block["hash"] = scenarios.scenario_hash(spec)
    except Exception as exc:
        block["hash"] = None
        block["error"] = repr(exc)
    return block


def write_manifest(path: str | Path, manifest: Mapping[str, Any] | None = None, **kwargs) -> Path:
    """Write ``manifest`` (or ``build_manifest(**kwargs)``) as JSON.

    ``path`` may be a directory — the file is then ``<path>/manifest.json``.
    Returns the path written.
    """
    if manifest is None:
        manifest = build_manifest(**kwargs)
    target = Path(path)
    if target.is_dir() or target.suffix == "":
        target = target / "manifest.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def load_manifest(path: str | Path) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    target = Path(path)
    if target.is_dir():
        target = target / "manifest.json"
    return json.loads(target.read_text())
