"""Process-local metrics registry: counters, gauges, histograms.

Design constraints (DESIGN.md §7):

- **near-zero overhead** — an instrument is a plain Python object holding a
  float (or a small bucket array); recording is one attribute update with no
  locks, levels, or string formatting on the hot path;
- **process-local** — every process owns exactly one default registry
  (:func:`global_registry`); nothing is shared, so recording never
  synchronizes;
- **mergeable** — :meth:`MetricsRegistry.snapshot` produces a plain-dict,
  JSON-serializable view; snapshots combine associatively and commutatively
  via :func:`merge_snapshots` / :meth:`MetricsRegistry.merge_snapshot`, and
  :func:`diff_snapshots` subtracts a baseline, which is how
  :mod:`repro.utils.parallel` folds per-chunk worker metrics into the parent
  registry without double counting across a pool's reused processes.

Histogram buckets are fixed at construction (default: log-spaced latency
bounds), so merging histograms of the same name is element-wise addition;
mismatched bounds raise rather than silently corrupt.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_S",
    "diff_snapshots",
    "global_registry",
    "merge_snapshots",
    "reset_global_registry",
]

#: Log-spaced span-duration bounds: 1 µs … 100 s (upper catch-all implied).
DEFAULT_LATENCY_BOUNDS_S: tuple[float, ...] = tuple(
    10.0**e for e in range(-6, 3)
)


class Counter:
    """A monotonically increasing float total (e.g. slots simulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (e.g. last run's total reward)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution (counts + sum, Prometheus-style).

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one implicit overflow bucket catches everything above the last
    bound, so ``counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS_S) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"histogram {self.name!r} bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        i = 0
        for bound in self.bounds:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Named instruments, lazily created, snapshot/merge-able.

    ``registry.counter("sim.slots").inc(400)`` — repeated lookups of the
    same name return the same instrument.  A name is bound to one instrument
    kind for the registry's lifetime; re-requesting it as a different kind
    raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unbound(self, name: str, want: str) -> None:
        kinds = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for kind, table in kinds.items():
            if kind != want and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unbound(name, "counter")
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unbound(name, "gauge")
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS_S
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unbound(name, "histogram")
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for n, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a snapshot (e.g. a worker-chunk delta) into this registry.

        Counters and histogram buckets add; gauges take the incoming value
        when present (last write wins — gauges are point-in-time by nature).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).value += float(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            h = self.histogram(name, data["bounds"])
            if list(h.bounds) != list(data["bounds"]):
                raise ValueError(f"histogram {name!r} bound mismatch in merge")
            for i, c in enumerate(data["counts"]):
                h.counts[i] += int(c)
            h.total += int(data["total"])
            h.sum += float(data["sum"])


def merge_snapshots(a: Mapping, b: Mapping) -> dict:
    """Combine two snapshots into a new one (associative and commutative
    on counters/histograms; gauges are last-write-wins, so commutativity
    holds only up to gauge ordering)."""
    reg = MetricsRegistry()
    reg.merge_snapshot(a)
    reg.merge_snapshot(b)
    return reg.snapshot()


def diff_snapshots(after: Mapping, before: Mapping) -> dict:
    """``after - before`` for counters/histograms; gauges keep ``after``.

    Used by parallel workers to report only the metrics recorded *during*
    one chunk: pool processes are reused across chunks, so sending the raw
    registry would double-count earlier chunks at the parent.
    """
    out: dict = {"counters": {}, "gauges": dict(after.get("gauges", {})), "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = float(value) - float(before_counters.get(name, 0.0))
        if not math.isclose(delta, 0.0, abs_tol=0.0):
            out["counters"][name] = delta
    before_hists = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        prev = before_hists.get(name)
        if prev is None:
            out["histograms"][name] = {
                "bounds": list(data["bounds"]),
                "counts": list(data["counts"]),
                "total": data["total"],
                "sum": data["sum"],
            }
            continue
        if list(prev["bounds"]) != list(data["bounds"]):
            raise ValueError(f"histogram {name!r} bound mismatch in diff")
        counts = [int(c) - int(p) for c, p in zip(data["counts"], prev["counts"])]
        total = int(data["total"]) - int(prev["total"])
        if total:
            out["histograms"][name] = {
                "bounds": list(data["bounds"]),
                "counts": counts,
                "total": total,
                "sum": float(data["sum"]) - float(prev["sum"]),
            }
    return out


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """This process's default registry (one per process, never shared)."""
    return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Replace the process-global registry with a fresh one (tests)."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
    return _GLOBAL
