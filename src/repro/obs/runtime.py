"""Observability activation: one optional, process-local context.

The hot paths (simulator loop, LFSC engines) ask :func:`active` for the
current :class:`ObsContext` once per call and take a branch-free fast path
when it is ``None`` — the default.  With no context installed the *only*
cost the subsystem adds to a simulation is that lookup plus a handful of
end-of-run counter bumps, which is how the <5% disabled-overhead budget of
``benchmarks/bench_obs_overhead.py`` is met.

Installation is explicit and scoped::

    from repro import obs

    with obs.observe(trace_path="results/trace.jsonl", sample_every=10):
        sim.run(policy, horizon)

or ambient via the environment (picked up lazily, once per process):
``REPRO_TRACE_DIR=/tmp/traces`` makes every process — including spawned
replication workers, which inherit the environment — trace to
``<dir>/trace-<pid>.jsonl``.  That is the mechanism by which parallel
replication sweeps get per-worker trace files without sharing a writer.

Tracing is observational only: nothing here touches a policy or workload
RNG, so trajectories are bit-identical with a context installed or not.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.trace import TraceRecorder
from repro.utils.timing import monotonic

__all__ = [
    "ObsContext",
    "active",
    "install",
    "last_trace_record",
    "observe",
    "span",
    "uninstall",
]


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _CtxSpan:
    """A live span: feeds the context's slot fields and registry histogram."""

    __slots__ = ("_ctx", "_name", "_start")

    def __init__(self, ctx: "ObsContext", name: str) -> None:
        self._ctx = ctx
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_CtxSpan":
        self._start = monotonic()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._ctx.add_span(self._name, monotonic() - self._start)
        return False


class ObsContext:
    """One process's live observability state: registry + optional tracer.

    Slot protocol (driven by :meth:`repro.env.simulator.Simulation.run`):
    ``begin_slot(t)`` clears the per-slot span accumulator, instrumented
    code contributes via :meth:`span` / :meth:`add_span` /
    :meth:`set_slot_field`, and ``end_slot(fields)`` assembles the trace
    record, hands it to the recorder when the slot is on the sampling grid,
    and always retains it as ``last_record`` for failure context.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.registry = registry if registry is not None else global_registry()
        self.tracer = tracer
        self._slot_spans: dict[str, float] = {}
        self._slot_fields: dict[str, object] = {}
        self.last_record: dict | None = None

    # -- spans --------------------------------------------------------------

    def span(self, name: str) -> _CtxSpan:
        return _CtxSpan(self, name)

    def add_span(self, name: str, seconds: float) -> None:
        self._slot_spans[name] = self._slot_spans.get(name, 0.0) + seconds
        self.registry.histogram(f"span.{name}").observe(seconds)

    def set_slot_field(self, name: str, value: object) -> None:
        """Attach an extra field to the current slot's trace record."""
        self._slot_fields[name] = value

    # -- slot protocol -------------------------------------------------------

    def begin_slot(self, t: int) -> None:
        self._slot_spans.clear()
        self._slot_fields.clear()

    def end_slot(self, fields: dict) -> dict:
        global _LAST_RECORD
        record = dict(fields)
        record.update(self._slot_fields)
        record["spans"] = dict(self._slot_spans)
        # Remembered process-wide (not just on this context) so failure
        # handlers that run after a scoped observe() unwinds — e.g. the
        # parallel chunk runner — can still attach the crash-slot state.
        self.last_record = _LAST_RECORD = record
        if self.tracer is not None and self.tracer.want(record["t"]):
            self.tracer.record(record)
        return record

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


_ACTIVE: ObsContext | None = None
_ENV_CHECKED = False
_LAST_RECORD: dict | None = None


def _maybe_init_from_env() -> None:
    """Install a tracing context from ``REPRO_TRACE_DIR`` (once per process)."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir:
        return
    sample = int(os.environ.get("REPRO_TRACE_SAMPLE", "1"))
    path = Path(trace_dir) / f"trace-{os.getpid()}.jsonl"
    _ACTIVE = ObsContext(tracer=TraceRecorder(path, sample_every=sample))


def active() -> ObsContext | None:
    """The installed context, or ``None`` (the disabled fast path)."""
    if _ACTIVE is None and not _ENV_CHECKED:
        _maybe_init_from_env()
    return _ACTIVE


def install(ctx: ObsContext) -> None:
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    _ACTIVE = ctx


def uninstall() -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


def span(name: str):
    """A span against the active context, or a shared no-op when disabled."""
    ctx = active()
    return ctx.span(name) if ctx is not None else _NULL_SPAN


def last_trace_record() -> dict | None:
    """The most recent slot record built in this process (failure context).

    Survives the uninstall of a scoped :func:`observe` so error handlers
    that run after the context unwound still see the crash-slot state.
    """
    return _LAST_RECORD


@contextmanager
def observe(
    *,
    trace_path: str | Path | None = None,
    sample_every: int = 1,
    flush_every: int = 256,
    registry: MetricsRegistry | None = None,
) -> Iterator[ObsContext]:
    """Scoped installation: metrics always, tracing when ``trace_path`` given.

    Restores the previously installed context (usually ``None``) on exit and
    closes the trace recorder, flushing any buffered records.
    """
    tracer = (
        TraceRecorder(trace_path, sample_every=sample_every, flush_every=flush_every)
        if trace_path is not None
        else None
    )
    ctx = ObsContext(registry=registry, tracer=tracer)
    global _ACTIVE, _ENV_CHECKED
    prev, prev_checked = _ACTIVE, _ENV_CHECKED
    _ACTIVE, _ENV_CHECKED = ctx, True
    try:
        yield ctx
    finally:
        ctx.close()
        _ACTIVE, _ENV_CHECKED = prev, prev_checked
