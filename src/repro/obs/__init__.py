"""Observability: metrics registry, slot tracing, run manifests, spans.

The subsystem any long-horizon online-learning stack needs before scaling:

- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms whose
  snapshots merge associatively across worker processes;
- :mod:`repro.obs.trace` — one structured JSONL record per (sampled) slot,
  streamed with bounded memory;
- :mod:`repro.obs.manifest` — ``manifest.json`` provenance (config, seeds,
  git SHA, host, versions) for every replication/figure/bench artifact;
- :mod:`repro.obs.runtime` — the activation switch; everything is a no-op
  until :func:`observe` installs a context (or ``REPRO_TRACE_DIR`` is set),
  preserving the batched engine's hot-path speed when tracing is off.

Span timing builds on the monotonic primitives of
:mod:`repro.utils.timing` (re-exported here), never on wall-clock deltas.
"""

from repro.obs.manifest import build_manifest, load_manifest, write_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    global_registry,
    merge_snapshots,
    reset_global_registry,
)
from repro.obs.runtime import (
    ObsContext,
    active,
    install,
    last_trace_record,
    observe,
    span,
    uninstall,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    iter_trace,
    read_trace,
    validate_record,
)
from repro.utils.timing import Span, Stopwatch, monotonic

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsContext",
    "Span",
    "Stopwatch",
    "TRACE_SCHEMA",
    "TraceRecorder",
    "active",
    "build_manifest",
    "diff_snapshots",
    "global_registry",
    "install",
    "iter_trace",
    "last_trace_record",
    "load_manifest",
    "merge_snapshots",
    "monotonic",
    "observe",
    "read_trace",
    "reset_global_registry",
    "span",
    "uninstall",
    "validate_record",
    "write_manifest",
]
