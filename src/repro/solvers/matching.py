"""Maximum-weight b-matching references (validation of Alg. 4).

The greedy assignment of Alg. 4 solves a maximum-weight bipartite b-matching
(SCNs have degree bound c, tasks degree bound 1) approximately.  For tests
and the approximation-factor benchmark we compute the exact optimum by
reducing to a standard assignment problem: replicate each SCN node c times
and run ``scipy.optimize.linear_sum_assignment`` on the (padded) rectangular
weight matrix.  Suitable for small instances (the reduction is O((Mc)·n)).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.utils.validation import check_positive

__all__ = ["max_weight_b_matching", "total_weight"]


def max_weight_b_matching(
    coverage: list[np.ndarray],
    weights_per_scn: list[np.ndarray],
    capacity: int,
    num_tasks: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact maximum-weight assignment under (1a)/(1b).

    Same inputs as :func:`repro.core.greedy.greedy_select`.

    Returns
    -------
    (scn, task):
        Parallel int arrays of the optimal pairs (only pairs with strictly
        positive weight are kept — adding a zero-weight edge never helps).
    """
    check_positive("capacity", capacity)
    M = len(coverage)
    # Dense (M·c, n) weight matrix of replicated SCN slots; -inf means no edge.
    big = np.full((M * capacity, num_tasks), -np.inf)
    for m, (tasks, w) in enumerate(zip(coverage, weights_per_scn)):
        tasks = np.asarray(tasks, dtype=np.int64)
        w = np.asarray(w, dtype=float)
        big[m * capacity : (m + 1) * capacity, tasks] = w
    # linear_sum_assignment needs finite entries; shift -inf to a large
    # negative so those pairs are never chosen over real edges, and allow
    # leaving slots unmatched by padding virtual zero-weight tasks.
    n_rows = big.shape[0]
    pad = np.zeros((n_rows, n_rows))  # one virtual "idle" task per slot
    full = np.concatenate([np.where(np.isfinite(big), big, -1e18), pad], axis=1)
    rows, cols = linear_sum_assignment(full, maximize=True)
    sel_scn, sel_task = [], []
    for r, c in zip(rows, cols):
        if c < num_tasks and np.isfinite(big[r, c]) and big[r, c] > 0.0:
            sel_scn.append(r // capacity)
            sel_task.append(int(c))
    return np.asarray(sel_scn, dtype=np.int64), np.asarray(sel_task, dtype=np.int64)


def total_weight(
    scn: np.ndarray,
    task: np.ndarray,
    coverage: list[np.ndarray],
    weights_per_scn: list[np.ndarray],
) -> float:
    """Sum of edge weights of an assignment, looked up from the graph."""
    total = 0.0
    for m, i in zip(np.asarray(scn), np.asarray(task)):
        tasks = np.asarray(coverage[m])
        w = np.asarray(weights_per_scn[m])
        pos = np.flatnonzero(tasks == i)
        if pos.size == 0:
            raise ValueError(f"assignment pair ({m}, {i}) is not a coverage edge")
        total += float(w[pos[0]])
    return total
