"""Content-addressed caching for the Oracle's per-slot solves.

The Oracle re-solves an optimization problem every slot, and large parts of
that work are *pure functions of the slot problem's content*: the pre-pass
achievable-QoS vector (α-independent), the ILP's stage-1 completion total
(α-independent), and the final assignment itself (α-dependent).  A
:class:`SlotProblemCache` memoizes all three under a blake2b signature of
the problem arrays, so:

- an α sweep (``fig3``) re-running the Oracle over the same workload skips
  every pre-pass LP after the first sweep point — the dominant saving
  behind ``benchmarks/bench_oracle.py``'s ≥2× headline;
- repeated runs of the same configuration (tests, ``report``, notebook
  re-evaluation) skip the solves entirely and replay the assignments.

Signature = content address
---------------------------

The key hashes the problem's **content** — edge arrays, ḡ/v̄/q̄ values, and
the (M, n, c, β) frame — never its provenance (slot index, seed, truth
object).  Two consequences:

- *no invalidation rules*: a non-stationary truth (drift, regime switch)
  produces different ḡ/v̄/q̄ bytes and therefore different keys; stale hits
  are impossible by construction, and the only eviction policy is an LRU
  size bound;
- *cross-run sharing is always sound*: the process-wide
  :func:`shared_cache` can serve unrelated configs concurrently — a hit
  means the full problem bytes matched, so the memoized result is exact.

α is deliberately excluded from the base signature (the pre-pass and ILP
stage 1 don't depend on it) and added back only on the assignment memo.

On-disk persistence
-------------------

A :class:`DiskCacheBackend` extends the memory memos across processes and
sessions: memory misses fall through to content-addressed files under a
cache directory (``ExperimentConfig.cache_dir`` / ``--cache-dir`` / the
``REPRO_CACHE_DIR`` environment variable), and every store also lands on
disk.  The format is versioned (``cache-format.json`` marker; a mismatched
directory is left untouched and the backend stands down) and pickle-free —
``.npy``/``.npz`` payloads written with ``allow_pickle=False`` equivalents
and loaded the same way, so a cache directory is data, not code.  Writers
are concurrency-safe by construction: every write goes to a unique temp
file and lands via ``os.replace`` (atomic on POSIX), and content addressing
makes write-write races benign — both writers carry identical bytes.

Interaction with the frozen RNG contract: the cache lives entirely inside
``OraclePolicy.select`` — it never touches a workload, realization, or
policy stream, so cached and cold runs draw identical randomness and the
trajectories are bit-identical (gated by
``tests/baselines/test_oracle_cache.py`` and the bench's equivalence gate).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from hashlib import blake2b
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs.metrics import global_registry
from repro.solvers.lp import SlotProblem
from repro.utils.validation import check_positive

__all__ = [
    "CACHE_DIR_ENV",
    "DiskCacheBackend",
    "SlotProblemCache",
    "problem_signature",
    "reset_shared_cache",
    "shared_cache",
]

#: Environment variable naming the default on-disk cache directory; explicit
#: ``cache_dir`` arguments win over it.  Inherited by spawned workers, so a
#: parallel sweep's processes all share one directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def problem_signature(problem: SlotProblem) -> bytes:
    """16-byte blake2b content address of a slot problem (α excluded)."""
    h = blake2b(digest_size=16)
    h.update(
        np.asarray(
            [problem.num_scns, problem.num_tasks, problem.capacity], dtype=np.int64
        ).tobytes()
    )
    h.update(np.float64(problem.beta).tobytes())
    h.update(problem.edge_scn.tobytes())
    h.update(problem.edge_task.tobytes())
    h.update(problem.g.tobytes())
    h.update(problem.v.tobytes())
    h.update(problem.q.tobytes())
    return h.digest()


class _LruMemo:
    """A bounded mapping with LRU eviction and hit/miss counters."""

    __slots__ = ("name", "capacity", "hits", "misses", "_data")

    def __init__(self, name: str, capacity: int) -> None:
        check_positive(f"{name} capacity", capacity)
        self.name = name
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Any | None:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            global_registry().counter(f"oracle.cache.{self.name}.miss").inc()
            return None
        self._data.move_to_end(key)
        self.hits += 1
        global_registry().counter(f"oracle.cache.{self.name}.hit").inc()
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


class DiskCacheBackend:
    """Content-addressed on-disk tier behind :class:`SlotProblemCache`.

    Layout (all content-addressed — file names *are* the keys)::

        <root>/cache-format.json                   version marker
        <root>/ach/<hh>/<sig>.npy                  achievable vectors
        <root>/s1/<hh>/<sig>.npy                   stage-1 totals (scalar)
        <root>/asn/<hh>/<sig>-<alpha>-<mode>.npz   assignments (scn, task)

    ``<sig>`` is the hex problem signature, ``<hh>`` its first two chars
    (fan-out), ``<alpha>`` the exact float64 bytes in hex.  Failure policy:
    any I/O or decode error behaves as a miss (and a store no-op) — the
    cache is an accelerator, never a correctness dependency.  A directory
    whose marker names an unknown format is left untouched and the backend
    disables itself.
    """

    FORMAT = "repro-slot-cache/v1"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.enabled = self._init_root()

    def _init_root(self) -> bool:
        marker = self.root / "cache-format.json"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            if marker.exists():
                with marker.open() as fh:
                    return json.load(fh).get("format") == self.FORMAT
            self._replace_into(
                marker, json.dumps({"format": self.FORMAT}).encode("ascii")
            )
            return True
        except (OSError, ValueError):
            return False

    # -- low-level helpers ---------------------------------------------------

    def _replace_into(self, path: Path, payload: bytes) -> None:
        """Atomic create: unique temp file + ``os.replace`` (POSIX-atomic)."""
        tmp = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        with tmp.open("wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    def _path(self, kind: str, name: str) -> Path:
        return self.root / kind / name[:2] / name

    def _store_array(self, kind: str, name: str, **arrays: np.ndarray) -> None:
        if not self.enabled:
            return
        path = self._path(kind, name)
        try:
            if path.exists():  # content-addressed: identical bytes already there
                return
            path.parent.mkdir(parents=True, exist_ok=True)
            import io

            buf = io.BytesIO()
            if len(arrays) == 1 and "value" in arrays:
                np.save(buf, arrays["value"], allow_pickle=False)
            else:
                np.savez(buf, **arrays)
            self._replace_into(path, buf.getvalue())
            global_registry().counter("oracle.cache.disk.store").inc()
        except OSError:
            pass

    def _load(self, kind: str, name: str):
        if not self.enabled:
            return None
        path = self._path(kind, name)
        try:
            with path.open("rb") as fh:
                data = np.load(fh, allow_pickle=False)
                if isinstance(data, np.lib.npyio.NpzFile):
                    with data:
                        out = {k: data[k] for k in data.files}
                else:
                    out = data
        except (OSError, ValueError):
            global_registry().counter("oracle.cache.disk.miss").inc()
            return None
        global_registry().counter("oracle.cache.disk.hit").inc()
        return out

    # -- typed entries -------------------------------------------------------

    @staticmethod
    def _alpha_hex(alpha: float) -> str:
        return np.float64(alpha).tobytes().hex()

    def load_achievable(self, sig: bytes) -> np.ndarray | None:
        return self._load("ach", f"{sig.hex()}.npy")

    def store_achievable(self, sig: bytes, vector: np.ndarray) -> None:
        self._store_array("ach", f"{sig.hex()}.npy", value=np.asarray(vector))

    def load_stage1(self, sig: bytes) -> float | None:
        value = self._load("s1", f"{sig.hex()}.npy")
        return None if value is None else float(value)

    def store_stage1(self, sig: bytes, total: float) -> None:
        self._store_array("s1", f"{sig.hex()}.npy", value=np.float64(total))

    def load_assignment(self, sig: bytes, alpha: float, mode: str):
        name = f"{sig.hex()}-{self._alpha_hex(alpha)}-{mode}.npz"
        data = self._load("asn", name)
        if data is None or "scn" not in data or "task" not in data:
            return None
        from repro.env.simulator import Assignment

        return Assignment(scn=data["scn"], task=data["task"])

    def store_assignment(self, sig: bytes, alpha: float, mode: str, assignment) -> None:
        name = f"{sig.hex()}-{self._alpha_hex(alpha)}-{mode}.npz"
        self._store_array("asn", name, scn=assignment.scn, task=assignment.task)


class SlotProblemCache:
    """Memoizes the Oracle's solver work by problem-content signature.

    Three memos, all keyed on :func:`problem_signature`:

    ``achievable``
        The soft-QoS pre-pass output (per-SCN achievable completion,
        α-independent) — lets the main LP run without the pre-pass solve.
    ``stage1``
        The two-stage ILP's stage-1 completion total (α-independent).
    ``assignment``
        The final :class:`~repro.env.simulator.Assignment` per
        ``(signature, α, mode)`` — exact replay on full repeats.

    Default bounds hold a full paper horizon (T=10,000) of achievable
    vectors (~300 bytes each) while keeping the larger assignment payloads
    on a tighter leash; both are constructor knobs.  Hit/miss counts are
    kept per memo and mirrored into the metrics registry as
    ``oracle.cache.<memo>.{hit,miss}`` counters.
    """

    def __init__(
        self,
        *,
        achievable_entries: int = 16384,
        assignment_entries: int = 4096,
        disk: DiskCacheBackend | None = None,
    ) -> None:
        self._achievable = _LruMemo("achievable", achievable_entries)
        self._stage1 = _LruMemo("stage1", achievable_entries)
        self._assignment = _LruMemo("assignment", assignment_entries)
        self._disk = disk

    # -- signatures ----------------------------------------------------------

    signature = staticmethod(problem_signature)

    @property
    def disk(self) -> DiskCacheBackend | None:
        return self._disk

    def set_disk(self, disk: DiskCacheBackend | None) -> None:
        """(Re)bind the on-disk tier; sound at any time — keys are content."""
        self._disk = disk

    # -- achievable pre-pass (α-independent) ---------------------------------

    def achievable(self, sig: bytes) -> np.ndarray | None:
        value = self._achievable.get(sig)
        if value is None and self._disk is not None:
            value = self._disk.load_achievable(sig)
            if value is not None:
                self._achievable.put(sig, value)
        return value

    def store_achievable(self, sig: bytes, vector: np.ndarray) -> None:
        self._achievable.put(sig, vector)
        if self._disk is not None:
            self._disk.store_achievable(sig, vector)

    # -- ILP stage 1 (α-independent) -----------------------------------------

    def stage1_completion(self, sig: bytes) -> float | None:
        value = self._stage1.get(sig)
        if value is None and self._disk is not None:
            value = self._disk.load_stage1(sig)
            if value is not None:
                self._stage1.put(sig, value)
        return value

    def store_stage1_completion(self, sig: bytes, total: float) -> None:
        self._stage1.put(sig, float(total))
        if self._disk is not None:
            self._disk.store_stage1(sig, float(total))

    # -- final assignments (α- and mode-dependent) ---------------------------

    def assignment(self, sig: bytes, alpha: float, mode: str):
        value = self._assignment.get((sig, float(alpha), mode))
        if value is None and self._disk is not None:
            value = self._disk.load_assignment(sig, alpha, mode)
            if value is not None:
                self._assignment.put((sig, float(alpha), mode), value)
        return value

    def store_assignment(self, sig: bytes, alpha: float, mode: str, assignment) -> None:
        self._assignment.put((sig, float(alpha), mode), assignment)
        if self._disk is not None:
            self._disk.store_assignment(sig, alpha, mode, assignment)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-memo hit/miss/size counts (for benches and tests)."""
        return {
            memo.name: {"hits": memo.hits, "misses": memo.misses, "size": len(memo)}
            for memo in (self._achievable, self._stage1, self._assignment)
        }

    def clear(self) -> None:
        for memo in (self._achievable, self._stage1, self._assignment):
            memo.clear()


_SHARED: SlotProblemCache | None = None


def _resolve_cache_dir(cache_dir: str | Path | None) -> str | None:
    if cache_dir is not None:
        return str(cache_dir)
    return os.environ.get(CACHE_DIR_ENV) or None


def shared_cache(cache_dir: str | Path | None = None) -> SlotProblemCache:
    """The process-wide cache instance (what ``oracle_cache=True`` wires up).

    Content addressing makes sharing across configs/truths/seeds sound (see
    module docstring), and sharing is precisely what lets one sweep point
    warm the next.  Worker processes each get their own memory instance —
    the on-disk tier is what they share.

    ``cache_dir`` (or, when omitted, the ``REPRO_CACHE_DIR`` environment
    variable) attaches the persistent :class:`DiskCacheBackend`; a later
    call naming a *different* directory rebinds the tier.  Calls without a
    directory never detach one that is already bound.
    """
    global _SHARED
    resolved = _resolve_cache_dir(cache_dir)
    if _SHARED is None:
        _SHARED = SlotProblemCache(
            disk=DiskCacheBackend(resolved) if resolved else None
        )
    elif resolved is not None and (
        _SHARED.disk is None or str(_SHARED.disk.root) != str(Path(resolved))
    ):
        _SHARED.set_disk(DiskCacheBackend(resolved))
    return _SHARED


def reset_shared_cache() -> None:
    """Drop the process-wide cache (tests and cold benchmark arms)."""
    global _SHARED
    _SHARED = None
