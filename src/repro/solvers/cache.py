"""Content-addressed caching for the Oracle's per-slot solves.

The Oracle re-solves an optimization problem every slot, and large parts of
that work are *pure functions of the slot problem's content*: the pre-pass
achievable-QoS vector (α-independent), the ILP's stage-1 completion total
(α-independent), and the final assignment itself (α-dependent).  A
:class:`SlotProblemCache` memoizes all three under a blake2b signature of
the problem arrays, so:

- an α sweep (``fig3``) re-running the Oracle over the same workload skips
  every pre-pass LP after the first sweep point — the dominant saving
  behind ``benchmarks/bench_oracle.py``'s ≥2× headline;
- repeated runs of the same configuration (tests, ``report``, notebook
  re-evaluation) skip the solves entirely and replay the assignments.

Signature = content address
---------------------------

The key hashes the problem's **content** — edge arrays, ḡ/v̄/q̄ values, and
the (M, n, c, β) frame — never its provenance (slot index, seed, truth
object).  Two consequences:

- *no invalidation rules*: a non-stationary truth (drift, regime switch)
  produces different ḡ/v̄/q̄ bytes and therefore different keys; stale hits
  are impossible by construction, and the only eviction policy is an LRU
  size bound;
- *cross-run sharing is always sound*: the process-wide
  :func:`shared_cache` can serve unrelated configs concurrently — a hit
  means the full problem bytes matched, so the memoized result is exact.

α is deliberately excluded from the base signature (the pre-pass and ILP
stage 1 don't depend on it) and added back only on the assignment memo.

Interaction with the frozen RNG contract: the cache lives entirely inside
``OraclePolicy.select`` — it never touches a workload, realization, or
policy stream, so cached and cold runs draw identical randomness and the
trajectories are bit-identical (gated by
``tests/baselines/test_oracle_cache.py`` and the bench's equivalence gate).
"""

from __future__ import annotations

from collections import OrderedDict
from hashlib import blake2b
from typing import Any

import numpy as np

from repro.obs.metrics import global_registry
from repro.solvers.lp import SlotProblem
from repro.utils.validation import check_positive

__all__ = ["SlotProblemCache", "problem_signature", "reset_shared_cache", "shared_cache"]


def problem_signature(problem: SlotProblem) -> bytes:
    """16-byte blake2b content address of a slot problem (α excluded)."""
    h = blake2b(digest_size=16)
    h.update(
        np.asarray(
            [problem.num_scns, problem.num_tasks, problem.capacity], dtype=np.int64
        ).tobytes()
    )
    h.update(np.float64(problem.beta).tobytes())
    h.update(problem.edge_scn.tobytes())
    h.update(problem.edge_task.tobytes())
    h.update(problem.g.tobytes())
    h.update(problem.v.tobytes())
    h.update(problem.q.tobytes())
    return h.digest()


class _LruMemo:
    """A bounded mapping with LRU eviction and hit/miss counters."""

    __slots__ = ("name", "capacity", "hits", "misses", "_data")

    def __init__(self, name: str, capacity: int) -> None:
        check_positive(f"{name} capacity", capacity)
        self.name = name
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Any | None:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            global_registry().counter(f"oracle.cache.{self.name}.miss").inc()
            return None
        self._data.move_to_end(key)
        self.hits += 1
        global_registry().counter(f"oracle.cache.{self.name}.hit").inc()
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


class SlotProblemCache:
    """Memoizes the Oracle's solver work by problem-content signature.

    Three memos, all keyed on :func:`problem_signature`:

    ``achievable``
        The soft-QoS pre-pass output (per-SCN achievable completion,
        α-independent) — lets the main LP run without the pre-pass solve.
    ``stage1``
        The two-stage ILP's stage-1 completion total (α-independent).
    ``assignment``
        The final :class:`~repro.env.simulator.Assignment` per
        ``(signature, α, mode)`` — exact replay on full repeats.

    Default bounds hold a full paper horizon (T=10,000) of achievable
    vectors (~300 bytes each) while keeping the larger assignment payloads
    on a tighter leash; both are constructor knobs.  Hit/miss counts are
    kept per memo and mirrored into the metrics registry as
    ``oracle.cache.<memo>.{hit,miss}`` counters.
    """

    def __init__(
        self,
        *,
        achievable_entries: int = 16384,
        assignment_entries: int = 4096,
    ) -> None:
        self._achievable = _LruMemo("achievable", achievable_entries)
        self._stage1 = _LruMemo("stage1", achievable_entries)
        self._assignment = _LruMemo("assignment", assignment_entries)

    # -- signatures ----------------------------------------------------------

    signature = staticmethod(problem_signature)

    # -- achievable pre-pass (α-independent) ---------------------------------

    def achievable(self, sig: bytes) -> np.ndarray | None:
        return self._achievable.get(sig)

    def store_achievable(self, sig: bytes, vector: np.ndarray) -> None:
        self._achievable.put(sig, vector)

    # -- ILP stage 1 (α-independent) -----------------------------------------

    def stage1_completion(self, sig: bytes) -> float | None:
        return self._stage1.get(sig)

    def store_stage1_completion(self, sig: bytes, total: float) -> None:
        self._stage1.put(sig, float(total))

    # -- final assignments (α- and mode-dependent) ---------------------------

    def assignment(self, sig: bytes, alpha: float, mode: str):
        return self._assignment.get((sig, float(alpha), mode))

    def store_assignment(self, sig: bytes, alpha: float, mode: str, assignment) -> None:
        self._assignment.put((sig, float(alpha), mode), assignment)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-memo hit/miss/size counts (for benches and tests)."""
        return {
            memo.name: {"hits": memo.hits, "misses": memo.misses, "size": len(memo)}
            for memo in (self._achievable, self._stage1, self._assignment)
        }

    def clear(self) -> None:
        for memo in (self._achievable, self._stage1, self._assignment):
            memo.clear()


_SHARED: SlotProblemCache | None = None


def shared_cache() -> SlotProblemCache:
    """The process-wide cache instance (what ``oracle_cache=True`` wires up).

    Content addressing makes sharing across configs/truths/seeds sound (see
    module docstring), and sharing is precisely what lets one sweep point
    warm the next.  Worker processes each get their own instance.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = SlotProblemCache()
    return _SHARED


def reset_shared_cache() -> None:
    """Drop the process-wide cache (tests and cold benchmark arms)."""
    global _SHARED
    _SHARED = None
