"""The LP relaxation of the per-slot offloading ILP (paper §3.2, problem (1)).

Decision variables are the edges (m, i) of the coverage bipartite graph;
x_{m,i} ∈ [0, 1] is the (relaxed) probability that SCN m executes task i:

    maximize    Σ_{(m,i)} ḡ_{m,i} · x_{m,i}
    subject to  Σ_{i ∈ D_m} x_{m,i} ≤ c                 ∀m   (1a) capacity
                Σ_{m: i ∈ D_m} x_{m,i} ≤ 1              ∀i   (1b) uniqueness
                Σ_{i ∈ D_m} v̄_{m,i} · x_{m,i} ≥ α       ∀m   (1c) QoS
                Σ_{i ∈ D_m} q̄_{m,i} · x_{m,i} ≤ β       ∀m   (1d) resources
                0 ≤ x ≤ 1                                    (1e)

The QoS constraint may be infeasible for some slots (not enough reliable
tasks in coverage); ``qos_mode`` controls the handling:

- ``"soft"`` (default): replace α by the per-SCN best achievable expected
  completion level (found by a pre-pass maximizing Σ v̄ x), matching an
  oracle that violates (1c) as little as possible and maximizes reward among
  minimum-violation policies;
- ``"hard"``: keep α and report infeasibility to the caller;
- ``"ignore"``: drop (1c) (used by the unconstrained reference).

Constraint matrices are assembled sparsely (CSR); at paper scale each slot
has ≈2,000 edges and ≈1,100 rows, which HiGHS solves in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.utils.validation import check_positive, require

__all__ = ["SlotProblem", "LPSolution", "max_achievable_qos", "solve_lp_relaxation"]


@dataclass(frozen=True)
class SlotProblem:
    """One slot's offloading problem in edge form.

    Attributes
    ----------
    edge_scn, edge_task:
        ``(E,)`` int arrays — the coverage edges (m, i).
    g, v, q:
        ``(E,)`` float arrays — expected compound reward ḡ, expected
        completion likelihood v̄, expected consumption q̄ per edge.
    num_scns, num_tasks:
        Graph dimensions M and n_t.
    capacity, alpha, beta:
        The constraint levels c, α, β.
    """

    edge_scn: np.ndarray
    edge_task: np.ndarray
    g: np.ndarray
    v: np.ndarray
    q: np.ndarray
    num_scns: int
    num_tasks: int
    capacity: int
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        for name in ("edge_scn", "edge_task"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        for name in ("g", "v", "q"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=float))
        E = self.edge_scn.shape[0]
        for name in ("edge_task", "g", "v", "q"):
            if getattr(self, name).shape != (E,):
                raise ValueError(f"{name} must have shape ({E},)")
        check_positive("num_scns", self.num_scns)
        require(self.num_tasks >= 0, "num_tasks must be >= 0")
        check_positive("capacity", self.capacity)
        if E:
            require(self.edge_scn.min() >= 0 and self.edge_scn.max() < self.num_scns, "edge_scn out of range")
            require(self.edge_task.min() >= 0 and self.edge_task.max() < self.num_tasks, "edge_task out of range")

    @property
    def num_edges(self) -> int:
        return int(self.edge_scn.shape[0])

    def constraint_matrices(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix]:
        """Sparse rows for (1a), (1b), (1c as Σ v̄x), (1d) over edge variables."""
        E = self.num_edges
        ones = np.ones(E)
        arange = np.arange(E)
        A_cap = sparse.csr_matrix((ones, (self.edge_scn, arange)), shape=(self.num_scns, E))
        A_uni = sparse.csr_matrix((ones, (self.edge_task, arange)), shape=(self.num_tasks, E))
        A_qos = sparse.csr_matrix((self.v, (self.edge_scn, arange)), shape=(self.num_scns, E))
        A_res = sparse.csr_matrix((self.q, (self.edge_scn, arange)), shape=(self.num_scns, E))
        return A_cap, A_uni, A_qos, A_res


@dataclass(frozen=True)
class LPSolution:
    """Result of the per-slot LP relaxation."""

    x: np.ndarray
    objective: float
    status: str
    qos_levels: np.ndarray
    feasible: bool


def max_achievable_qos(problem: SlotProblem) -> np.ndarray:
    """Per-SCN best achievable expected completion under (1a), (1b), (1d).

    Solves max Σ v̄ x over the same polytope without (1c); the per-SCN
    completion totals of the optimum are the levels an oracle could commit
    to.  A single LP gives a *joint* achievable vector (maximizing the sum),
    which is the natural minimum-total-violation reference.

    The vector is a pure function of the problem *content* and independent
    of α — which is what makes it cacheable across an α sweep (see
    :mod:`repro.solvers.cache`); :func:`solve_lp_relaxation` accepts it back
    through ``achievable=`` to skip this pre-pass.
    """
    A_cap, A_uni, _, A_res = problem.constraint_matrices()
    E = problem.num_edges
    A_ub = sparse.vstack([A_cap, A_uni, A_res], format="csr")
    b_ub = np.concatenate(
        [
            np.full(problem.num_scns, float(problem.capacity)),
            np.ones(problem.num_tasks),
            np.full(problem.num_scns, problem.beta),
        ]
    )
    res = linprog(
        c=-problem.v,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:
        return np.zeros(problem.num_scns)
    completed = np.bincount(
        problem.edge_scn, weights=problem.v * res.x, minlength=problem.num_scns
    )
    return completed


#: Backwards-compatible alias (pre-cache name).
_max_achievable_qos = max_achievable_qos


def solve_lp_relaxation(
    problem: SlotProblem,
    *,
    qos_mode: str = "soft",
    achievable: np.ndarray | None = None,
) -> LPSolution:
    """Solve the relaxed problem (1); see module docstring for ``qos_mode``.

    ``achievable`` (soft mode only) injects a pre-computed
    :func:`max_achievable_qos` vector, skipping the pre-pass LP — the
    solution is bit-identical since the pre-pass is deterministic.
    """
    require(qos_mode in ("soft", "hard", "ignore"), f"unknown qos_mode {qos_mode!r}")
    E = problem.num_edges
    if E == 0:
        return LPSolution(
            x=np.empty(0),
            objective=0.0,
            status="empty",
            qos_levels=np.zeros(problem.num_scns),
            feasible=True,
        )
    A_cap, A_uni, A_qos, A_res = problem.constraint_matrices()

    if qos_mode == "ignore":
        qos_levels = np.zeros(problem.num_scns)
    elif qos_mode == "hard":
        qos_levels = np.full(problem.num_scns, problem.alpha)
    else:  # soft
        if achievable is None:
            achievable = max_achievable_qos(problem)
        # Tiny slack guards against requiring the unique v-optimal vertex.
        qos_levels = np.minimum(problem.alpha, achievable * (1.0 - 1e-9))

    blocks = [A_cap, A_uni, A_res, -A_qos]
    b_ub = np.concatenate(
        [
            np.full(problem.num_scns, float(problem.capacity)),
            np.ones(problem.num_tasks),
            np.full(problem.num_scns, problem.beta),
            -qos_levels,
        ]
    )
    A_ub = sparse.vstack(blocks, format="csr")
    res = linprog(
        c=-problem.g,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:
        return LPSolution(
            x=np.zeros(E),
            objective=0.0,
            status=res.message,
            qos_levels=qos_levels,
            feasible=False,
        )
    return LPSolution(
        x=np.clip(res.x, 0.0, 1.0),
        objective=float(-res.fun),
        status="optimal",
        qos_levels=qos_levels,
        feasible=True,
    )
